//! Network monitoring: place monitors on routers so that every link has a
//! monitored endpoint — a minimum vertex cover workload.
//!
//! The router graph is a power-law topology (router-level internet maps
//! are famously heavy-tailed). We place monitors with the paper's
//! `(2+ε)`-approximate vertex cover (Theorem 1.2) and report the measured
//! approximation factor against the maximum-matching lower bound, plus
//! the classical maximal-matching 2-approximation as the baseline.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use mmvc::graph::vertex_cover;
use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3_000;
    let seed = 13;
    let g = generators::power_law(n, 2.2, 6.0, seed)?;
    println!(
        "router graph: {n} routers, {} links, Δ = {}",
        g.num_edges(),
        g.max_degree()
    );
    println!();

    let eps = Epsilon::new(0.1)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))?;
    assert!(out.cover.covers(&g), "every link must be monitored");

    // Lower bound on any monitor placement: maximum matching size.
    let lb = vertex_cover::vertex_cover_lower_bound(&g);
    // Classical baseline: endpoints of a greedy maximal matching.
    let baseline = vertex_cover::two_approx_vertex_cover(&g);

    println!("monitors (paper, 2+ε)   : {:>6}", out.cover.len());
    println!("monitors (baseline, 2×) : {:>6}", baseline.len());
    println!("lower bound |M*|        : {:>6}", lb);
    println!();
    println!(
        "measured factor vs LB   : {:.3} (claimed ≤ {:.1}; LB itself is ≤ OPT)",
        out.cover.len() as f64 / lb.max(1) as f64,
        2.0 + eps.get()
    );
    println!(
        "baseline factor vs LB   : {:.3}",
        baseline.len() as f64 / lb.max(1) as f64
    );
    println!("MPC rounds              : {}", out.total_rounds);

    Ok(())
}
