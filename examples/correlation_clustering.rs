//! Correlation clustering via randomized greedy MIS (CC-Pivot).
//!
//! The paper's MIS analysis (Lemma 3.1) is adapted from Ahn et al.
//! \[ACG+15\], who studied *correlation clustering*: given a graph whose
//! edges mark "similar" pairs (non-edges mark "dissimilar"), partition
//! the vertices to minimize disagreements (similar pairs split + dissimilar
//! pairs merged). The classical CC-Pivot algorithm — pick a random pivot,
//! cluster it with its neighbors, recurse — is exactly the randomized
//! greedy MIS: the MIS members are the pivots, and every other vertex
//! joins its smallest-rank MIS neighbor. CC-Pivot is a 3-approximation in
//! expectation.
//!
//! This example clusters a noisy planted-partition graph with the MIS
//! returned by the paper's `O(log log Δ)` MPC algorithm and reports
//! disagreements against the planted truth and the singleton baseline.
//!
//! ```text
//! cargo run --release --example correlation_clustering
//! ```

use mmvc::prelude::*;
use mmvc_graph::rng::{hash3, invert_permutation, random_permutation};
use mmvc_graph::GraphBuilder;

/// Builds a planted-partition "similarity" graph: `k` groups of size `s`;
/// intra-group pairs are edges with probability `1 − noise`, inter-group
/// pairs with probability `noise`.
fn planted(k: usize, s: usize, noise: f64, seed: u64) -> Graph {
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let same = (u as usize / s) == (v as usize / s);
            let r = (hash3(seed, u as u64, v as u64) >> 11) as f64 / (1u64 << 53) as f64;
            let p = if same { 1.0 - noise } else { noise };
            if r < p {
                b.add_edge(u, v).expect("in range");
            }
        }
    }
    b.build()
}

/// Disagreements of a clustering: similar pairs split + dissimilar merged.
fn disagreements(g: &Graph, cluster: &[u32]) -> usize {
    let n = g.num_vertices();
    let mut cut_similar = 0usize;
    for e in g.edges() {
        if cluster[e.u() as usize] != cluster[e.v() as usize] {
            cut_similar += 1;
        }
    }
    // Merged dissimilar pairs: per cluster size c, C(c,2) minus its
    // internal edges.
    let mut sizes = std::collections::HashMap::new();
    for &c in cluster.iter().take(n) {
        *sizes.entry(c).or_insert(0usize) += 1;
    }
    let internal_pairs: usize = sizes.values().map(|&c| c * (c - 1) / 2).sum();
    let internal_edges = g.num_edges() - cut_similar;
    cut_similar + (internal_pairs - internal_edges)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Noise low enough that similarity carries signal: expected
    // inter-group degree (~4) well below intra-group degree (~37).
    let (k, s, noise, seed) = (20, 40, 0.005, 9);
    let g = planted(k, s, noise, seed);
    let n = g.num_vertices();
    println!(
        "planted partition: {k} groups × {s}, noise {noise}, |E| = {}, Δ = {}",
        g.num_edges(),
        g.max_degree()
    );

    // Round accounting from the paper's MPC MIS; cluster assignment from
    // the CC-Pivot view of the rank-greedy process (same permutation).
    // Below the sparsify threshold the MPC algorithm finishes with the
    // desire-level local process instead of rank order, so its (equally
    // valid) MIS may differ slightly from the exact greedy pivots — both
    // are maximal independent sets over the same ranking.
    let mpc = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed))?;
    let perm = random_permutation(n, seed);
    let ranks = invert_permutation(&perm);
    let (pivots, cluster) = mis::greedy_mis_with_pivots(&g, &ranks);
    assert!(pivots.is_independent(&g) && pivots.is_maximal(&g));
    assert!(mpc.mis.is_independent(&g) && mpc.mis.is_maximal(&g));

    let ours = disagreements(&g, &cluster);
    let truth: Vec<u32> = (0..n as u32).map(|v| v / s as u32).collect();
    let planted_cost = disagreements(&g, &truth);
    let singleton: Vec<u32> = (0..n as u32).collect();
    let singleton_cost = disagreements(&g, &singleton);

    println!();
    println!("clusters found        : {}", pivots.len());
    println!("disagreements (pivot) : {ours}");
    println!("disagreements (truth) : {planted_cost}  (noise floor)");
    println!("disagreements (singl.): {singleton_cost}  (baseline: every edge cut)");
    println!("MPC rounds            : {}", mpc.trace.rounds());
    assert!(
        ours < singleton_cost,
        "pivoting must beat the trivial clustering"
    );
    Ok(())
}
