//! The sublinear-memory regime (paper, end of §1.3): matching and vertex
//! cover with `O(n / polylog n)` words per machine.
//!
//! The paper presents its algorithms at `Õ(n)` memory but notes they
//! adjust to `O(n/polylog n)`. The adjustment is mechanical: use
//! `√reduction`-times more machines per phase so every induced subgraph
//! shrinks with the budget; the price is `reduction^(1/4)` more estimate
//! noise. This example sweeps the reduction factor and prints the
//! memory/rounds/quality trade-off.
//!
//! ```text
//! cargo run --release --example sublinear_memory
//! ```

use mmvc::core::matching::MpcMatchingConfig;
use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    let g = generators::gnp(n, 0.1, 21)?;
    let eps = Epsilon::new(0.1)?;
    let opt = matching::greedy_maximal_matching(&g).len(); // cheap LB reference

    println!(
        "graph: G({n}, 0.1)  |E| = {}  maximal-matching LB = {opt}",
        g.num_edges()
    );
    println!();
    println!(
        "{:>10} {:>13} {:>10} {:>8} {:>12}",
        "reduction", "budget(words)", "max-load", "rounds", "frac-weight"
    );
    for reduction in [1.0, 4.0, 16.0] {
        let cfg = MpcMatchingConfig::sublinear(eps, 21, reduction);
        let out = mpc_simulation(&g, &cfg)?;
        assert!(out.cover.covers(&g));
        println!(
            "{:>10} {:>13} {:>10} {:>8} {:>12.1}",
            reduction,
            (8.0 / reduction * n as f64).ceil() as usize,
            out.trace.max_load_words(),
            out.trace.rounds(),
            out.fractional.weight(),
        );
    }
    println!();
    println!("memory shrinks 16x; rounds stay O(log log n); quality dips only slightly.");
    Ok(())
}
