//! Influencer seeding on a power-law social network.
//!
//! A classic use of a *maximal independent set*: pick a set of seed users
//! such that no two seeds know each other (avoiding redundant reach), and
//! every non-seed user is adjacent to a seed (full coverage). The paper's
//! introduction motivates MPC graph algorithms with exactly this kind of
//! massive-graph analytics workload.
//!
//! The example builds a Chung–Lu power-law graph (degree exponent 2.5,
//! typical of social networks), runs the paper's `O(log log Δ)`-round MIS,
//! and compares the simulated round count against the Luby `O(log n)`
//! baseline at increasing network sizes.
//!
//! ```text
//! cargo run --release --example social_influencers
//! ```

use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("power-law social graphs (β = 2.5, avg degree 20)");
    println!();
    println!(
        "{:>8} {:>8} {:>7} | {:>7} {:>7} {:>9} | {:>6} | {:>9}",
        "users", "edges", "Δ", "phases", "rounds", "max-load", "luby", "seeds"
    );

    for k in [10, 11, 12, 13] {
        let n = 1usize << k;
        let seed = k as u64;
        let g = generators::power_law(n, 2.5, 20.0, seed)?;

        let ours = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed))?;
        let baseline = luby_mis(&g, seed);

        // Coverage sanity: every user is a seed or knows a seed.
        assert!(ours.mis.is_maximal(&g));
        // No two seeds know each other.
        assert!(ours.mis.is_independent(&g));

        println!(
            "{:>8} {:>8} {:>7} | {:>7} {:>7} {:>9} | {:>6} | {:>9}",
            n,
            g.num_edges(),
            g.max_degree(),
            ours.prefix_phases,
            ours.trace.rounds(),
            ours.trace.max_load_words(),
            baseline.rounds,
            ours.mis.len(),
        );
    }

    println!();
    println!("rounds grow ~ log log Δ for the simulation vs ~ log n for Luby;");
    println!("max-load stays O(n) words per machine (Theorem 1.1).");
    Ok(())
}
