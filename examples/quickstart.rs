//! Quickstart: run every headline algorithm of the paper on one random
//! graph and print what the theorems promise next to what was measured.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000;
    let p = 0.01;
    let seed = 42;
    let g = generators::gnp(n, p, seed)?;
    println!(
        "graph: G({n}, {p})  |E| = {}  Δ = {}",
        g.num_edges(),
        g.max_degree()
    );
    println!();

    // ── Theorem 1.1: MIS in O(log log Δ) MPC rounds ─────────────────────
    let mis = greedy_mpc_mis(&g, &GreedyMisConfig::new(seed))?;
    println!("MIS (Theorem 1.1, MPC):");
    println!("  |MIS|            = {}", mis.mis.len());
    println!("  prefix phases    = {}  (Θ(log log Δ))", mis.prefix_phases);
    println!("  local rounds     = {}", mis.local_rounds);
    println!("  total MPC rounds = {}", mis.trace.rounds());
    println!(
        "  max machine load = {} words (budget 8n = {})",
        mis.trace.max_load_words(),
        8 * n
    );
    let luby = luby_mis(&g, seed);
    println!("  Luby baseline    = {} rounds (Θ(log n))", luby.rounds);
    println!();

    // ── Theorem 1.2: (2+ε) matching + vertex cover ──────────────────────
    let eps = Epsilon::new(0.1)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))?;
    let optimum = matching::blossom(&g).len();
    println!("Matching & vertex cover (Theorem 1.2, ε = {eps}):");
    println!(
        "  |M|       = {}   (optimum {})",
        out.matching.len(),
        optimum
    );
    println!(
        "  ratio     = {:.3}  (claimed ≤ 2+ε = {:.1})",
        optimum as f64 / out.matching.len().max(1) as f64,
        2.0 + eps.get()
    );
    println!(
        "  |C|       = {}   (lower bound |M*| = {optimum})",
        out.cover.len()
    );
    println!(
        "  VC ratio  ≤ {:.3}  (vs matching LB; claimed ≤ 2+ε)",
        out.cover.len() as f64 / optimum.max(1) as f64
    );
    println!(
        "  MPC rounds = {}  extractions = {}",
        out.total_rounds, out.extractions
    );
    println!();

    // ── Corollary 1.3: (1+ε) matching ───────────────────────────────────
    let aug = one_plus_eps_matching(&g, &AugmentConfig::new(eps, seed))?;
    println!("(1+ε) matching (Corollary 1.3):");
    println!("  |M|    = {}   (optimum {optimum})", aug.matching.len());
    println!(
        "  ratio  = {:.4} (claimed ≤ 1+ε = {:.1})",
        optimum as f64 / aug.matching.len().max(1) as f64,
        1.0 + eps.get()
    );
    println!("  augmentation passes = {}", aug.passes);

    Ok(())
}
