//! MIS in the CONGESTED-CLIQUE model with full bandwidth accounting.
//!
//! Each of the `n` players owns one vertex and initially knows only its
//! incident edges (paper, Section 1.1.2). The example runs the
//! Theorem 1.1 clique algorithm and prints the communication profile:
//! rounds consumed by ranking agreement, prefix collection (Lenzen
//! routing), the sparsified local stage, and the final gather — together
//! with the per-player inbound word maximum, which certifies the Lenzen
//! precondition (≤ n words per player per routing call).
//!
//! ```text
//! cargo run --release --example congested_clique
//! ```

use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>7} {:>8} {:>6} | {:>7} {:>7} {:>7} | {:>10}",
        "players", "edges", "Δ", "phases", "local", "rounds", "max-inflow"
    );
    for k in [8, 9, 10, 11] {
        let n = 1usize << k;
        let seed = k as u64;
        let g = generators::gnp(n, 24.0 / n as f64 * (k as f64), seed)?;
        let out = clique_mis(&g, &CliqueMisConfig::new(seed))?;
        assert!(out.mis.is_maximal(&g));
        println!(
            "{:>7} {:>8} {:>6} | {:>7} {:>7} {:>7} | {:>10}",
            n,
            g.num_edges(),
            g.max_degree(),
            out.prefix_phases,
            out.local_rounds,
            out.trace.rounds(),
            out.trace.max_load_words(),
        );
        assert!(
            out.trace.max_load_words() <= n,
            "Lenzen precondition respected"
        );
    }
    println!();
    println!("round count stays O(log log Δ); inbound words stay ≤ n per player.");
    Ok(())
}
