//! Ad allocation: match advertisers to ad slots.
//!
//! A bipartite maximum-matching workload: advertisers on one side, ad
//! slots on the other, an edge when an advertiser targets a slot. We run
//! the paper's pipeline — fractional matching via `MPC-Simulation`,
//! Lemma 5.1 rounding, Theorem 1.2 extraction, Corollary 1.3 augmentation
//! — and compare against the exact Hopcroft–Karp optimum. A revenue
//! -weighted variant exercises Corollary 1.4.
//!
//! ```text
//! cargo run --release --example ad_allocation
//! ```

use mmvc::graph::weighted::WeightedGraph;
use mmvc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let advertisers = 1_500;
    let slots = 1_000;
    let seed = 7;
    let g = generators::bipartite_gnp(advertisers, slots, 0.01, seed)?;
    let optimum = matching::hopcroft_karp(&g)?.len();
    println!(
        "ad graph: {advertisers} advertisers × {slots} slots, |E| = {}, optimum = {optimum}",
        g.num_edges()
    );
    println!();

    let eps = Epsilon::new(0.1)?;

    // (2+ε): Theorem 1.2.
    let two = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))?;
    println!(
        "(2+ε) allocation:  {} slots filled  (ratio {:.3}, claimed ≥ 1/{:.1})",
        two.matching.len(),
        two.matching.len() as f64 / optimum.max(1) as f64,
        2.0 + eps.get()
    );

    // (1+ε): Corollary 1.3.
    let one = one_plus_eps_matching(&g, &AugmentConfig::new(eps, seed))?;
    println!(
        "(1+ε) allocation:  {} slots filled  (ratio {:.3}, claimed ≥ 1/{:.1})",
        one.matching.len(),
        one.matching.len() as f64 / optimum.max(1) as f64,
        1.0 + eps.get()
    );
    assert!(one.matching.len() as f64 * (1.0 + eps.get()) >= optimum as f64);

    // Revenue-weighted variant: Corollary 1.4 with bid values in [1, 50].
    let wg = WeightedGraph::with_random_weights(g.clone(), 1.0, 50.0, seed ^ 0xBEEF)?;
    let weighted = weighted_matching(&wg, &WeightedMatchingConfig::new(eps, seed))?;
    // The best possible revenue is at most max_bid · optimum; a crude
    // certificate that the weighted matcher is in a sane range.
    let greedy_revenue: f64 = {
        // Heaviest-edge-first greedy as a comparison point.
        let mut order: Vec<usize> = (0..wg.graph().num_edges()).collect();
        order.sort_by(|&a, &b| wg.weight(b).total_cmp(&wg.weight(a)));
        let m = matching::greedy_maximal_matching_ordered(wg.graph(), &order);
        wg.matching_weight(&m)
    };
    println!();
    println!(
        "revenue-weighted (Corollary 1.4): {:.1} revenue over {} classes \
         ({} MPC rounds); heaviest-first greedy reference: {:.1}",
        weighted.total_weight, weighted.classes, weighted.total_rounds, greedy_revenue
    );
    assert!(weighted.total_weight * 2.0 * (1.0 + eps.get()) >= greedy_revenue);

    Ok(())
}
