//! `mmvc` — command-line front end for the workspace.
//!
//! Drives any registered algorithm × scenario pair through the unified
//! run driver, and runs the paper's algorithms on edge-list files (one
//! `u v` pair per line; `#` comments; optional `# vertices: n` header):
//!
//! ```text
//! mmvc list                                    # algorithms and scenarios
//! mmvc run <algorithm> <scenario|--graph-file PATH> [--n N] [--seed S] [--eps E]
//!          [--threads K] [--max-rounds R] [--max-load W] [--max-n N] [--json] [--canonical]
//!          [--trace-out PATH] [--trace-jsonl PATH]
//! mmvc bench [--smoke] [--out PATH]            # algorithm×scenario sweep
//! mmvc net-run <algorithm> <scenario> [--parties N] [--processes] [--n N] [--seed S] [--eps E]
//!              [--threads K] [--timeout-ms T] [--json] [--canonical] [--out PATH]
//! mmvc party --addr HOST:PORT --party I --parties N [--timeout-ms T] [--fault die|corrupt|truncate:R]
//! mmvc serve [--addr A] [--workers W] [--cache-cap K] [--max-n N]   # run-serving daemon
//!            [--store-dir DIR] [--idle-timeout-ms T] [--max-reqs-per-conn R] [--trace-dir DIR]
//! mmvc stats    <graph.txt>
//! mmvc mis      <graph.txt> [--seed S] [--model mpc|clique|luby|seq] [--threads N]
//! mmvc matching <graph.txt> [--seed S] [--eps E] [--exact]
//! mmvc cover    <graph.txt> [--seed S] [--eps E]
//! mmvc gen      gnp|powerlaw <n> <param> [--seed S]   # writes to stdout
//! ```

use mmvc::core::run::{AlgorithmKind, RunSpec};
use mmvc::graph::{io, scenarios, stats};
use mmvc::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mmvc list
  mmvc run <algorithm> <scenario|--graph-file PATH> [--n N] [--seed S] [--eps E]
           [--threads K] [--max-rounds R] [--max-load W] [--max-n N] [--json] [--canonical]
           [--trace-out PATH] [--trace-jsonl PATH]
  mmvc bench [--smoke] [--out PATH]
  mmvc net-run <algorithm> <scenario> [--parties N] [--processes] [--n N] [--seed S] [--eps E]
               [--threads K] [--timeout-ms T] [--json] [--canonical] [--out PATH]
  mmvc party --addr HOST:PORT --party I --parties N [--timeout-ms T] [--fault die|corrupt|truncate:R]
  mmvc serve [--addr HOST:PORT] [--workers W] [--cache-cap K] [--max-n N]
             [--store-dir DIR] [--idle-timeout-ms T] [--max-reqs-per-conn R] [--trace-dir DIR]
  mmvc stats    <graph.txt>
  mmvc mis      <graph.txt> [--seed S] [--model mpc|clique|luby|seq] [--threads N]
  mmvc matching <graph.txt> [--seed S] [--eps E] [--exact]
  mmvc cover    <graph.txt> [--seed S] [--eps E]
  mmvc gen gnp      <n> <p>          [--seed S]
  mmvc gen powerlaw <n> <avg_degree> [--seed S]";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(args),
        "bench" => cmd_bench(args),
        "net-run" => cmd_net_run(args),
        "party" => cmd_party(args),
        "serve" => cmd_serve(args),
        "stats" => cmd_stats(args),
        "mis" => cmd_mis(args),
        "matching" => cmd_matching(args),
        "cover" => cmd_cover(args),
        "gen" => cmd_gen(args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_list() -> Result<(), String> {
    println!("algorithms:");
    for kind in AlgorithmKind::ALL {
        println!("  {:<18} {}", kind.name(), kind.description());
    }
    println!();
    println!("scenarios:");
    for sc in scenarios::all() {
        println!("  {:<18} n={:<6} {}", sc.name, sc.default_n, sc.description);
    }
    println!();
    println!("run any pair: mmvc run <algorithm> <scenario>");
    Ok(())
}

fn parse_optional<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid {flag} `{raw}`")),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let algorithm = args
        .get(1)
        .and_then(|a| AlgorithmKind::parse(a))
        .ok_or_else(|| {
            format!(
                "missing or unknown algorithm (one of: {})",
                AlgorithmKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    // The workload: a positional scenario name, or `--graph-file PATH`
    // for a user-supplied edge list (exactly one of the two).
    let scenario = args.get(2).filter(|a| !a.starts_with("--"));
    let flags_from = if scenario.is_some() { 3 } else { 2 };

    // Strict flag validation: a mistyped `--max-round` silently dropping
    // a budget would defeat the CI-enforcement use of this command.
    const VALUE_FLAGS: [&str; 10] = [
        "--n",
        "--seed",
        "--eps",
        "--threads",
        "--max-rounds",
        "--max-load",
        "--max-n",
        "--graph-file",
        "--trace-out",
        "--trace-jsonl",
    ];
    let mut i = flags_from;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a} requires a value"));
            }
            i += 2;
        } else if a == "--json" || a == "--canonical" {
            i += 1;
        } else {
            return Err(format!("unknown argument `{a}` for `mmvc run`"));
        }
    }

    let mut spec = match (scenario, flag_value(args, "--graph-file")) {
        (Some(scenario), None) => RunSpec::new(algorithm, scenario),
        (None, Some(path)) => RunSpec::from_file(algorithm, &path),
        (Some(_), Some(_)) => {
            return Err("give either a scenario or --graph-file, not both".to_string())
        }
        (None, None) => {
            return Err(format!(
                "missing workload: a scenario (one of: {}) or --graph-file PATH",
                scenarios::names().join(", ")
            ))
        }
    };
    spec.n = parse_optional(args, "--n")?;
    spec.seed = parse_seed(args)?;
    spec.eps = parse_eps(args)?;
    spec.executor = parse_executor(args)?;
    spec.budget.max_rounds = parse_optional(args, "--max-rounds")?;
    spec.budget.max_load_words = parse_optional(args, "--max-load")?;
    spec.budget.max_n = parse_optional(args, "--max-n")?;

    // Telemetry is out-of-band: attaching a recording sink changes no
    // reported number (the engine's determinism contract), it only
    // collects spans for the exporters below.
    let trace_out = flag_value(args, "--trace-out");
    let trace_jsonl = flag_value(args, "--trace-jsonl");
    let telemetry = if trace_out.is_some() || trace_jsonl.is_some() {
        mmvc::substrate::Telemetry::recording()
    } else {
        mmvc::substrate::Telemetry::disabled()
    };
    spec.executor = spec.executor.with_telemetry(&telemetry);

    let report = mmvc::core::run::run(&spec).map_err(|e| e.to_string())?;

    if telemetry.is_enabled() {
        let events = telemetry.drain();
        if let Some(path) = &trace_out {
            let doc = mmvc_bench::tracefmt::chrome_trace(&events);
            std::fs::write(path, doc.render())
                .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
            eprintln!("trace: {} events -> {path}", events.len());
        }
        if let Some(path) = &trace_jsonl {
            std::fs::write(path, mmvc_bench::tracefmt::jsonl(&events))
                .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
            eprintln!("trace: {} events -> {path}", events.len());
        }
    }

    if args.iter().any(|a| a == "--canonical") {
        // The exact bytes `mmvc serve` returns and caches for this spec
        // (wall time — the one nondeterministic field — zeroed).
        print!(
            "{}",
            String::from_utf8_lossy(&mmvc::serve::canonical_report_body(report.clone()))
        );
    } else if args.iter().any(|a| a == "--json") {
        print!("{}", mmvc_bench::report_json(&report).render());
    } else {
        println!("algorithm   : {}", report.algorithm.name());
        println!(
            "scenario    : {} (n = {}, edges = {}, maxdeg = {})",
            report.scenario, report.n, report.num_edges, report.max_degree
        );
        for w in &report.witnesses {
            println!(
                "{:<12}: {} ({})",
                w.kind,
                w.size,
                if w.valid { "validated" } else { "INVALID" }
            );
        }
        println!(
            "rounds      : {} on {} (claimed {:.2}, ratio {:.2})",
            report.substrate.rounds,
            report.substrate.substrate,
            report.substrate.claimed_rounds,
            report.substrate.round_ratio()
        );
        if report.substrate.max_load_words > 0 {
            println!("max_load    : {} words", report.substrate.max_load_words);
            println!("total_words : {}", report.substrate.total_words);
        }
        for (name, value) in &report.metrics {
            println!("{name:<12}: {value}");
        }
        println!("wall        : {:.1} ms", report.wall_ms);
        for v in &report.budget_violations {
            println!("BUDGET      : {v}");
        }
    }

    if report.ok() {
        Ok(())
    } else if report.witnesses_valid() {
        Err("budget violated".to_string())
    } else {
        Err("witness validation failed".to_string())
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    // Same strict validation as `mmvc run`: a mistyped `--smok` silently
    // running the lenient full sweep would defeat the smoke gate.
    let mut i = 1;
    let mut smoke = false;
    let mut out = "BENCH_run.json".to_string();
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out = v.clone();
                    i += 2;
                }
                _ => return Err("--out requires a path value".to_string()),
            },
            other => return Err(format!("unknown argument `{other}` for `mmvc bench`")),
        }
    }
    // One code path (and one failure policy) with the bench_report
    // binary: smoke must be clean; a full-size substrate rejection is a
    // recorded finding, not an error.
    let summary = mmvc_bench::execute_sweep(smoke, &out)?;
    if smoke && summary.failures > 0 {
        Err(format!(
            "smoke sweep must be clean, got {} failures",
            summary.failures
        ))
    } else {
        Ok(())
    }
}

/// `mmvc net-run`: run a metered MPC algorithm distributed over N local
/// parties (threads by default, `--processes` for real `mmvc party`
/// children) and print the wire-metered report. Exits nonzero if the
/// distributed report's canonical bytes diverge from the in-process
/// run, or if the ledger's words disagree with the payload bytes that
/// actually crossed the wire — the CLI enforces the parity contract on
/// every invocation, not just under test.
fn cmd_net_run(args: &[String]) -> Result<(), String> {
    use mmvc::core::distributed::{run_distributed, DistOptions, PartyLaunch};

    let algorithm = args
        .get(1)
        .and_then(|a| AlgorithmKind::parse(a))
        .ok_or_else(|| {
            "missing or unknown algorithm (metered MPC kinds: greedy-mis, mpc-matching, filtering)"
                .to_string()
        })?;
    let scenario = args
        .get(2)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| {
            format!(
                "missing scenario (one of: {})",
                scenarios::names().join(", ")
            )
        })?;

    // Strict flag validation, same rationale as `mmvc run`.
    const VALUE_FLAGS: [&str; 7] = [
        "--parties",
        "--n",
        "--seed",
        "--eps",
        "--threads",
        "--timeout-ms",
        "--out",
    ];
    let mut i = 3;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a} requires a value"));
            }
            i += 2;
        } else if a == "--processes" || a == "--json" || a == "--canonical" {
            i += 1;
        } else {
            return Err(format!("unknown argument `{a}` for `mmvc net-run`"));
        }
    }

    let mut spec = RunSpec::new(algorithm, scenario);
    spec.n = parse_optional(args, "--n")?;
    spec.seed = parse_seed(args)?;
    spec.eps = parse_eps(args)?;
    spec.executor = parse_executor(args)?;

    let parties = parse_optional(args, "--parties")?.unwrap_or(4);
    let mut opts = DistOptions::threads(parties);
    if args.iter().any(|a| a == "--processes") {
        let exe =
            std::env::current_exe().map_err(|e| format!("cannot locate the mmvc binary: {e}"))?;
        opts.launch = PartyLaunch::Processes { exe };
    }
    if let Some(t) = parse_optional::<u64>(args, "--timeout-ms")? {
        opts.accept_timeout_ms = t;
        opts.io_timeout_ms = t;
    }

    let out = run_distributed(&spec, &opts).map_err(|e| e.to_string())?;

    let dist_bytes = mmvc::serve::canonical_report_body(out.report.clone());
    let sim_bytes = mmvc::serve::canonical_report_body(out.sim_report.clone());
    if dist_bytes != sim_bytes {
        return Err(
            "parity violation: distributed report diverged from the in-process run".to_string(),
        );
    }
    if out.wire.data_payload_bytes != out.report.substrate.total_words {
        return Err(format!(
            "wire accounting mismatch: ledger charged {} words but {} payload bytes crossed the wire",
            out.report.substrate.total_words, out.wire.data_payload_bytes
        ));
    }
    eprintln!(
        "parity      : report byte-identical to in-process run ({parties} parties, {} wire payload bytes)",
        out.wire.data_payload_bytes
    );

    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(&path, &dist_bytes)
            .map_err(|e| format!("cannot write report to {path}: {e}"))?;
        eprintln!("report      : -> {path}");
    }

    let report = &out.report;
    if args.iter().any(|a| a == "--canonical") {
        print!("{}", String::from_utf8_lossy(&dist_bytes));
    } else if args.iter().any(|a| a == "--json") {
        print!("{}", mmvc_bench::report_json(report).render());
    } else {
        println!("algorithm   : {}", report.algorithm.name());
        println!(
            "scenario    : {} (n = {}, edges = {})",
            report.scenario, report.n, report.num_edges
        );
        println!("parties     : {parties}");
        println!("rounds      : {}", report.substrate.rounds);
        println!("max_load    : {} words", report.substrate.max_load_words);
        println!("total_words : {}", report.substrate.total_words);
        println!(
            "wire        : {} data frames, {} payload bytes, {} sent / {} received total",
            out.wire.data_frames,
            out.wire.data_payload_bytes,
            out.wire.bytes_sent,
            out.wire.bytes_received
        );
        println!("wall        : {:.1} ms", report.wall_ms);
    }

    if report.ok() {
        Ok(())
    } else {
        Err("witness validation failed".to_string())
    }
}

/// `mmvc party`: one networked party's role — connect to the
/// coordinator, receive machine loads, acknowledge every round barrier.
/// Launched by `mmvc net-run --processes` (and directly by tests); a
/// misbehaving run exits nonzero with the transport error on stderr.
fn cmd_party(args: &[String]) -> Result<(), String> {
    use mmvc::substrate::net::{PartyFault, PartyRunner};

    let addr: std::net::SocketAddr = flag_value(args, "--addr")
        .ok_or("--addr is required")?
        .parse()
        .map_err(|_| "invalid --addr (need HOST:PORT)".to_string())?;
    let party = parse_optional::<usize>(args, "--party")?.ok_or("--party is required")?;
    let parties = parse_optional::<usize>(args, "--parties")?.ok_or("--parties is required")?;

    let mut runner = PartyRunner::new(party, parties, addr);
    if let Some(t) = parse_optional::<u64>(args, "--timeout-ms")? {
        runner.io_timeout_ms = t;
    }
    if let Some(raw) = flag_value(args, "--fault") {
        runner.fault = Some(PartyFault::parse(&raw).ok_or_else(|| {
            format!("invalid --fault `{raw}` (expected die:R, corrupt:R or truncate:R)")
        })?);
    }

    let stats = runner.run().map_err(|e| e.to_string())?;
    println!("party       : {party}/{parties}");
    println!("rounds      : {}", stats.rounds);
    println!("data_frames : {}", stats.data_frames);
    println!("words_recv  : {}", stats.words_received);
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use mmvc::serve::{ServeConfig, Server};
    let mut config = ServeConfig::default();
    let mut i = 1;
    while i < args.len() {
        let value = |flag: &str| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match args[i].as_str() {
            "--addr" => {
                config.addr = value("--addr")?;
                i += 2;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "invalid --workers".to_string())?;
                i += 2;
            }
            "--cache-cap" => {
                config.cache_capacity = value("--cache-cap")?
                    .parse()
                    .map_err(|_| "invalid --cache-cap".to_string())?;
                i += 2;
            }
            "--max-n" => {
                config.max_n = value("--max-n")?
                    .parse()
                    .map_err(|_| "invalid --max-n".to_string())?;
                i += 2;
            }
            "--store-dir" => {
                config.store_dir = Some(value("--store-dir")?);
                i += 2;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|_| "invalid --idle-timeout-ms".to_string())?;
                i += 2;
            }
            "--max-reqs-per-conn" => {
                config.max_requests_per_conn = value("--max-reqs-per-conn")?
                    .parse()
                    .map_err(|_| "invalid --max-reqs-per-conn".to_string())?;
                i += 2;
            }
            "--trace-dir" => {
                config.trace_dir = Some(value("--trace-dir")?);
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}` for `mmvc serve`")),
        }
    }
    let server =
        Server::bind(&config).map_err(|e| format!("cannot start on {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "mmvc-serve listening on http://{addr} ({} workers, cache capacity {}, max n {}, store {})",
        config.workers.max(1),
        config.cache_capacity,
        config.max_n,
        config.store_dir.as_deref().unwrap_or("disabled")
    );
    eprintln!("endpoints: POST /run, GET /scenarios, GET /algorithms, GET /healthz, GET /metrics");
    server.run().map_err(|e| e.to_string())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--threads N` picks the round engine's executor (`0`/absent = auto
/// threaded, `1` = sequential). Results are identical either way — the
/// engine's determinism contract — only wall-time changes.
fn parse_executor(args: &[String]) -> Result<mmvc::substrate::ExecutorConfig, String> {
    use mmvc::substrate::ExecutorConfig;
    match flag_value(args, "--threads") {
        None => Ok(ExecutorConfig::threaded()),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => Ok(ExecutorConfig::threaded()),
            Ok(k) => Ok(ExecutorConfig::with_threads(k)),
            Err(_) => Err(format!("invalid --threads `{raw}`")),
        },
    }
}

fn parse_seed(args: &[String]) -> Result<u64, String> {
    match flag_value(args, "--seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`")),
    }
}

fn parse_eps(args: &[String]) -> Result<Epsilon, String> {
    let raw = match flag_value(args, "--eps") {
        None => 0.1,
        Some(s) => s.parse().map_err(|_| format!("invalid --eps `{s}`"))?,
    };
    Epsilon::new(raw).map_err(|e| e.to_string())
}

fn load_graph(args: &[String]) -> Result<Graph, String> {
    let path = args.get(1).ok_or("missing graph file")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_edge_list(file).map_err(|e| e.to_string())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    println!("vertices    : {}", g.num_vertices());
    println!("edges       : {}", g.num_edges());
    if let Some(s) = stats::degree_stats(&g) {
        println!(
            "degree      : min {} / median {} / mean {:.2} / p99 {} / max {}",
            s.min, s.median, s.mean, s.p99, s.max
        );
    }
    let (_, components) = g.connected_components();
    println!("components  : {components}");
    println!("degeneracy  : {}", stats::degeneracy(&g));
    Ok(())
}

fn cmd_mis(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let executor = parse_executor(args)?;
    let model = flag_value(args, "--model").unwrap_or_else(|| "mpc".into());
    match model.as_str() {
        "mpc" => {
            let mut cfg = GreedyMisConfig::new(seed);
            cfg.executor = executor.clone();
            let out = greedy_mpc_mis(&g, &cfg).map_err(|e| e.to_string())?;
            println!("mis_size    : {}", out.mis.len());
            println!("mpc_rounds  : {}", out.trace.rounds());
            println!("phases      : {}", out.prefix_phases);
            println!("max_load    : {} words", out.trace.max_load_words());
        }
        "clique" => {
            let mut cfg = CliqueMisConfig::new(seed);
            cfg.executor = executor.clone();
            let out = clique_mis(&g, &cfg).map_err(|e| e.to_string())?;
            println!("mis_size      : {}", out.mis.len());
            println!("clique_rounds : {}", out.trace.rounds());
            println!("max_inflow    : {} words", out.trace.max_load_words());
        }
        "luby" => {
            let out = luby_mis(&g, seed);
            println!("mis_size : {}", out.mis.len());
            println!("rounds   : {}", out.rounds);
        }
        "seq" => {
            let s = mis::randomized_greedy_mis(&g, seed);
            println!("mis_size : {}", s.len());
        }
        other => return Err(format!("unknown --model `{other}`")),
    }
    Ok(())
}

fn cmd_matching(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let eps = parse_eps(args)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))
        .map_err(|e| e.to_string())?;
    println!("matching_size : {}", out.matching.len());
    println!("mpc_rounds    : {}", out.total_rounds);
    if args.iter().any(|a| a == "--exact") {
        let opt = matching::blossom(&g).len();
        println!("optimum       : {opt}");
        println!(
            "ratio         : {:.4}",
            opt as f64 / out.matching.len().max(1) as f64
        );
    }
    Ok(())
}

fn cmd_cover(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let eps = parse_eps(args)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))
        .map_err(|e| e.to_string())?;
    println!("cover_size : {}", out.cover.len());
    println!("lower_bound: {}", out.matching.len());
    println!("mpc_rounds : {}", out.total_rounds);
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = args.get(1).ok_or("missing generator kind")?;
    let n: usize = args
        .get(2)
        .ok_or("missing n")?
        .parse()
        .map_err(|_| "invalid n".to_string())?;
    let param: f64 = args
        .get(3)
        .ok_or("missing generator parameter")?
        .parse()
        .map_err(|_| "invalid parameter".to_string())?;
    let seed = parse_seed(args)?;
    let g = match kind.as_str() {
        "gnp" => generators::gnp(n, param, seed).map_err(|e| e.to_string())?,
        "powerlaw" => generators::power_law(n, 2.5, param, seed).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown generator `{other}`")),
    };
    io::write_edge_list(&g, std::io::stdout().lock()).map_err(|e| e.to_string())
}
