//! `mmvc` — command-line front end for the workspace.
//!
//! Runs the paper's algorithms on edge-list files (one `u v` pair per
//! line; `#` comments; optional `# vertices: n` header):
//!
//! ```text
//! mmvc stats    <graph.txt>
//! mmvc mis      <graph.txt> [--seed S] [--model mpc|clique|luby|seq] [--threads N]
//! mmvc matching <graph.txt> [--seed S] [--eps E] [--exact]
//! mmvc cover    <graph.txt> [--seed S] [--eps E]
//! mmvc gen      gnp|powerlaw <n> <param> [--seed S]   # writes to stdout
//! ```

use mmvc::graph::{io, stats};
use mmvc::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mmvc stats    <graph.txt>
  mmvc mis      <graph.txt> [--seed S] [--model mpc|clique|luby|seq] [--threads N]
  mmvc matching <graph.txt> [--seed S] [--eps E] [--exact]
  mmvc cover    <graph.txt> [--seed S] [--eps E]
  mmvc gen gnp      <n> <p>          [--seed S]
  mmvc gen powerlaw <n> <avg_degree> [--seed S]";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "stats" => cmd_stats(args),
        "mis" => cmd_mis(args),
        "matching" => cmd_matching(args),
        "cover" => cmd_cover(args),
        "gen" => cmd_gen(args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--threads N` picks the round engine's executor (`0`/absent = auto
/// threaded, `1` = sequential). Results are identical either way — the
/// engine's determinism contract — only wall-time changes.
fn parse_executor(args: &[String]) -> Result<mmvc::substrate::ExecutorConfig, String> {
    use mmvc::substrate::ExecutorConfig;
    match flag_value(args, "--threads") {
        None => Ok(ExecutorConfig::threaded()),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => Ok(ExecutorConfig::threaded()),
            Ok(k) => Ok(ExecutorConfig::with_threads(k)),
            Err(_) => Err(format!("invalid --threads `{raw}`")),
        },
    }
}

fn parse_seed(args: &[String]) -> Result<u64, String> {
    match flag_value(args, "--seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`")),
    }
}

fn parse_eps(args: &[String]) -> Result<Epsilon, String> {
    let raw = match flag_value(args, "--eps") {
        None => 0.1,
        Some(s) => s.parse().map_err(|_| format!("invalid --eps `{s}`"))?,
    };
    Epsilon::new(raw).map_err(|e| e.to_string())
}

fn load_graph(args: &[String]) -> Result<Graph, String> {
    let path = args.get(1).ok_or("missing graph file")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_edge_list(file).map_err(|e| e.to_string())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    println!("vertices    : {}", g.num_vertices());
    println!("edges       : {}", g.num_edges());
    if let Some(s) = stats::degree_stats(&g) {
        println!(
            "degree      : min {} / median {} / mean {:.2} / p99 {} / max {}",
            s.min, s.median, s.mean, s.p99, s.max
        );
    }
    let (_, components) = g.connected_components();
    println!("components  : {components}");
    println!("degeneracy  : {}", stats::degeneracy(&g));
    Ok(())
}

fn cmd_mis(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let executor = parse_executor(args)?;
    let model = flag_value(args, "--model").unwrap_or_else(|| "mpc".into());
    match model.as_str() {
        "mpc" => {
            let mut cfg = GreedyMisConfig::new(seed);
            cfg.executor = executor;
            let out = greedy_mpc_mis(&g, &cfg).map_err(|e| e.to_string())?;
            println!("mis_size    : {}", out.mis.len());
            println!("mpc_rounds  : {}", out.trace.rounds());
            println!("phases      : {}", out.prefix_phases);
            println!("max_load    : {} words", out.trace.max_load_words());
        }
        "clique" => {
            let mut cfg = CliqueMisConfig::new(seed);
            cfg.executor = executor;
            let out = clique_mis(&g, &cfg).map_err(|e| e.to_string())?;
            println!("mis_size      : {}", out.mis.len());
            println!("clique_rounds : {}", out.trace.rounds());
            println!("max_inflow    : {} words", out.trace.max_load_words());
        }
        "luby" => {
            let out = luby_mis(&g, seed);
            println!("mis_size : {}", out.mis.len());
            println!("rounds   : {}", out.rounds);
        }
        "seq" => {
            let s = mis::randomized_greedy_mis(&g, seed);
            println!("mis_size : {}", s.len());
        }
        other => return Err(format!("unknown --model `{other}`")),
    }
    Ok(())
}

fn cmd_matching(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let eps = parse_eps(args)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))
        .map_err(|e| e.to_string())?;
    println!("matching_size : {}", out.matching.len());
    println!("mpc_rounds    : {}", out.total_rounds);
    if args.iter().any(|a| a == "--exact") {
        let opt = matching::blossom(&g).len();
        println!("optimum       : {opt}");
        println!(
            "ratio         : {:.4}",
            opt as f64 / out.matching.len().max(1) as f64
        );
    }
    Ok(())
}

fn cmd_cover(args: &[String]) -> Result<(), String> {
    let g = load_graph(args)?;
    let seed = parse_seed(args)?;
    let eps = parse_eps(args)?;
    let out = integral_matching(&g, &IntegralMatchingConfig::new(eps, seed))
        .map_err(|e| e.to_string())?;
    println!("cover_size : {}", out.cover.len());
    println!("lower_bound: {}", out.matching.len());
    println!("mpc_rounds : {}", out.total_rounds);
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = args.get(1).ok_or("missing generator kind")?;
    let n: usize = args
        .get(2)
        .ok_or("missing n")?
        .parse()
        .map_err(|_| "invalid n".to_string())?;
    let param: f64 = args
        .get(3)
        .ok_or("missing generator parameter")?
        .parse()
        .map_err(|_| "invalid parameter".to_string())?;
    let seed = parse_seed(args)?;
    let g = match kind.as_str() {
        "gnp" => generators::gnp(n, param, seed).map_err(|e| e.to_string())?,
        "powerlaw" => generators::power_law(n, 2.5, param, seed).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown generator `{other}`")),
    };
    io::write_edge_list(&g, std::io::stdout().lock()).map_err(|e| e.to_string())
}
