//! # mmvc — MIS, Matching, and Vertex Cover in Massively Parallel Computation
//!
//! A from-scratch Rust reproduction of **"Improved Massively Parallel
//! Computation Algorithms for MIS, Matching, and Vertex Cover"**
//! (Ghaffari, Gouleakis, Konrad, Mitrović, Rubinfeld — PODC 2018,
//! arXiv:1802.08237), including the substrates the paper assumes:
//!
//! * [`graph`] ([`mmvc_graph`]) — CSR graphs, generators, exact matching
//!   solvers (blossom, Hopcroft–Karp), validators;
//! * [`mpc`] ([`mmvc_mpc`]) — a metered simulator of the MPC model
//!   (machines × words, rounds, budget enforcement);
//! * [`clique`] ([`mmvc_clique`]) — a metered CONGESTED-CLIQUE simulator
//!   (per-pair bandwidth, Lenzen routing);
//! * [`substrate`] ([`mmvc_substrate`]) — the shared metering layer: the
//!   [`Substrate`](mmvc_substrate::Substrate) trait both simulators
//!   implement, the unified `ExecutionTrace`, and the substrate-agnostic
//!   `SubstrateError`;
//! * [`core`] ([`mmvc_core`]) — the paper's algorithms: `O(log log Δ)`-round
//!   MIS (Theorem 1.1), `Central`/`Central-Rand`/`MPC-Simulation`
//!   (Section 4), Lemma 5.1 rounding, Theorem 1.2's `(2+ε)` integral
//!   matching and vertex cover, Corollary 1.3's `(1+ε)` matching,
//!   Corollary 1.4's weighted matching, plus baselines — and the unified
//!   run driver (`mmvc_core::run`): every algorithm × every named
//!   scenario (`mmvc_graph::scenarios`) through one `run(spec)` entry
//!   point with validated witnesses and machine-readable reports;
//! * [`serve`] ([`mmvc_serve`]) — the run-serving daemon (`mmvc serve`):
//!   the driver over HTTP/1.1 with a content-addressed LRU report cache
//!   (sound because reports are deterministic), plus the `mmvc_loadgen`
//!   load-generation harness behind `BENCH_serve.json`.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! claimed-vs-measured results. The `examples/` directory contains
//! runnable scenarios; start with `cargo run --example quickstart`.
//!
//! ```
//! use mmvc::prelude::*;
//!
//! let g = generators::gnp(400, 0.05, 42)?;
//!
//! let mis = greedy_mpc_mis(&g, &GreedyMisConfig::new(1))?;
//! let matching = integral_matching(&g, &IntegralMatchingConfig::new(Epsilon::new(0.1)?, 2))?;
//!
//! assert!(mis.mis.is_maximal(&g));
//! assert!(matching.cover.covers(&g));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mmvc_clique as clique;
pub use mmvc_core as core;
pub use mmvc_graph as graph;
pub use mmvc_mpc as mpc;
pub use mmvc_serve as serve;
pub use mmvc_substrate as substrate;

/// Convenient single-import surface for the common workflow.
pub mod prelude {
    pub use mmvc_clique::CliqueNetwork;
    pub use mmvc_core::baselines::luby_mis;
    pub use mmvc_core::filtering::{filtering_maximal_matching, FilteringConfig};
    pub use mmvc_core::matching::{
        central, central_rand, integral_matching, mpc_simulation, one_plus_eps_matching,
        round_fractional, weighted_matching, AugmentConfig, FractionalMatching,
        IntegralMatchingConfig, MpcMatchingConfig, WeightedMatchingConfig,
    };
    pub use mmvc_core::mis::{clique_mis, greedy_mpc_mis, CliqueMisConfig, GreedyMisConfig};
    pub use mmvc_core::run::{
        run, run_detailed, run_on, AlgorithmKind, RunArtifacts, RunReport, RunSpec,
    };
    pub use mmvc_core::vertex_cover::{approx_min_vertex_cover, VertexCoverConfig};
    pub use mmvc_core::{CoreError, Epsilon};
    pub use mmvc_graph::{
        generators, matching, mis, scenarios, vertex_cover, weighted, Graph, GraphBuilder,
    };
    pub use mmvc_mpc::{Cluster, MpcConfig};
    pub use mmvc_substrate::{
        ExecutionTrace, ExecutorConfig, RoundLedger, RoundSummary, Substrate, SubstrateError,
    };
}
