//! Named, seeded workload scenarios — the registry behind `mmvc run`.
//!
//! Every algorithm in the workspace can be pointed at every scenario by
//! name: the run driver (`mmvc_core::run`), the CLI (`mmvc run`, `mmvc
//! list`), the experiment binaries, and the `bench_report` sweep all
//! resolve workloads through this table. Each entry names one graph
//! family at a scenario-chosen default size; `build_with` overrides the
//! size for smoke tests and sweeps.
//!
//! All scenarios are deterministic in `(n, seed)`. Structured families
//! (grid, stars, cliques) ignore the seed; that is part of the contract,
//! not an accident — the same name and size always mean the same graph.
//!
//! # Tiers
//!
//! The registry has two tiers. The **base** tier (14 families, `n` up to
//! 4096 by default) is what the full `bench_report` sweep and the
//! experiment binaries exercise. The **scale** tier (`scale-*` names,
//! default `n` up to 2²¹) drives the million-vertex workloads of
//! `bench_scale`: the same generator families, parallel construction
//! through [`Scenario::build_with_exec`], thread-count-invariant output by
//! the generators' determinism contract. Scale scenarios are full
//! registry citizens — `mmvc run greedy-mis --scenario scale-gnp-1m`
//! works — but the serving daemon admits them only when its `--max-n` cap
//! says so.

use crate::error::GraphError;
use crate::generators;
use crate::graph::Graph;
use mmvc_substrate::ExecutorConfig;

/// One named workload family.
///
/// # Examples
///
/// ```
/// use mmvc_graph::scenarios;
///
/// let sc = scenarios::get("gnp-sparse").expect("registered");
/// let g = sc.build_with(256, 7)?;
/// assert_eq!(g.num_vertices(), 256);
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Registry key, kebab-case (`"gnp-sparse"`, `"scale-gnp-1m"`, …).
    pub name: &'static str,
    /// One-line description shown by `mmvc list`.
    pub description: &'static str,
    /// Default vertex count used when no size override is given.
    pub default_n: usize,
    /// Whether this entry belongs to the million-vertex scale tier
    /// (excluded from the full `bench_report` sweep; driven by
    /// `bench_scale` instead).
    pub scale: bool,
    build: fn(usize, u64, &ExecutorConfig) -> Result<Graph, GraphError>,
}

impl Scenario {
    /// Builds the scenario at its default size.
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator's [`GraphError`] (cannot occur
    /// for registered entries at their default size).
    pub fn build(&self, seed: u64) -> Result<Graph, GraphError> {
        self.build_with(self.default_n, seed)
    }

    /// Builds the scenario at an explicit target size.
    ///
    /// Families with structural size constraints land on the nearest
    /// feasible size (e.g. `grid` uses `⌊√n⌋²` vertices), so
    /// `num_vertices()` can differ slightly from `n`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator's [`GraphError`] (degenerate
    /// sizes are clamped before the generator is called).
    pub fn build_with(&self, n: usize, seed: u64) -> Result<Graph, GraphError> {
        self.build_with_exec(n, seed, &ExecutorConfig::default())
    }

    /// Builds the scenario at an explicit size on an explicit executor.
    ///
    /// The executor changes construction wall time only, never the graph:
    /// generators and the CSR builder are thread-count-invariant by
    /// construction (`bench_scale` verifies the byte identity on every
    /// scale scenario).
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator's [`GraphError`].
    pub fn build_with_exec(
        &self,
        n: usize,
        seed: u64,
        exec: &ExecutorConfig,
    ) -> Result<Graph, GraphError> {
        let _span = exec
            .telemetry()
            .span_tagged("scenario.generate", self.name)
            .with_arg("n", n as u64)
            .with_arg("seed", seed);
        (self.build)(n, seed, exec)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("default_n", &self.default_n)
            .field("scale", &self.scale)
            .finish()
    }
}

fn gnp_avg_degree(
    n: usize,
    deg: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    let p = if n >= 2 {
        (deg / (n - 1) as f64).min(1.0)
    } else {
        0.0
    };
    generators::gnp_with(n, p, seed, exec)
}

fn gnp_sparse(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    gnp_avg_degree(n, 8.0, seed, exec)
}

fn gnp_mid(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    gnp_avg_degree(n, 64.0, seed, exec)
}

fn gnp_dense(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    generators::gnp_with(n, 0.125, seed, exec)
}

fn gnm(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    generators::gnm_with(n, (4 * n).min(max_m), seed, exec)
}

fn bipartite(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let left = n / 2;
    let right = n - left;
    let p = if n >= 2 {
        (16.0 / n as f64).min(1.0)
    } else {
        0.0
    };
    generators::bipartite_gnp_with(left, right, p, seed, exec)
}

fn power_law(n: usize, seed: u64, _exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    generators::power_law(n, 2.5, 8.0, seed)
}

fn geometric(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    // Radius giving expected average degree ~12: π r² n ≈ 12.
    let r = (12.0 / (std::f64::consts::PI * n.max(1) as f64)).sqrt();
    generators::random_geometric_with(n, r.min(1.5), seed, exec)
}

fn grid(n: usize, _seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let side = (n as f64).sqrt() as usize;
    Ok(generators::grid_with(side, side, exec))
}

fn ring_lattice(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    // Watts–Strogatz needs even k < n; degrade to the plain ring (and
    // below that, a path) at tiny sizes.
    if n <= 3 {
        return Ok(generators::cycle(n));
    }
    let k = if n > 6 { 6 } else { 2 };
    generators::watts_strogatz_with(n, k, 0.1, seed, exec)
}

fn planted_matching(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    generators::planted_matching_with(n, 4.0, seed, exec)
}

fn star_stress(n: usize, _seed: u64, _exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let star = 64.min(n.max(1));
    let copies = (n / star).max(1);
    Ok(generators::disjoint_union(&generators::star(star), copies))
}

fn clique_stress(n: usize, _seed: u64, _exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let clique = 32.min(n.max(1));
    let copies = (n / clique).max(1);
    Ok(generators::disjoint_union(
        &generators::complete(clique),
        copies,
    ))
}

fn barabasi_albert(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    if n < 2 {
        return Ok(Graph::empty(n));
    }
    generators::barabasi_albert_with(n, 4.min(n - 1), seed, exec)
}

fn barabasi_albert_8(n: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    if n < 2 {
        return Ok(Graph::empty(n));
    }
    generators::barabasi_albert_with(n, 8.min(n - 1), seed, exec)
}

fn sbm(n: usize, seed: u64, _exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let quarter = n / 4;
    let sizes = [quarter, quarter, quarter, n - 3 * quarter];
    let p_in = if n >= 2 {
        (16.0 / n as f64).min(1.0)
    } else {
        0.0
    };
    let p_out = if n >= 2 {
        (1.0 / n as f64).min(1.0)
    } else {
        0.0
    };
    generators::stochastic_block_model(&sizes, p_in, p_out, seed)
}

/// The scenario registry, in stable display order: the base tier first,
/// then the scale tier.
const REGISTRY: &[Scenario] = &[
    Scenario {
        name: "gnp-sparse",
        description: "Erdős–Rényi G(n, p) at average degree 8",
        default_n: 4096,
        scale: false,
        build: gnp_sparse,
    },
    Scenario {
        name: "gnp-mid",
        description: "Erdős–Rényi G(n, p) at average degree 64 (the E1 sweep family)",
        default_n: 4096,
        scale: false,
        build: gnp_mid,
    },
    Scenario {
        name: "gnp-dense",
        description: "Erdős–Rényi G(n, 0.125) — degree grows with n (the E4 stress family)",
        default_n: 2048,
        scale: false,
        build: gnp_dense,
    },
    Scenario {
        name: "gnm",
        description: "Erdős–Rényi G(n, m) with exactly m = 4n edges",
        default_n: 4096,
        scale: false,
        build: gnm,
    },
    Scenario {
        name: "bipartite",
        description: "random bipartite G(n/2, n/2, p), average degree ~8 (ad allocation)",
        default_n: 4096,
        scale: false,
        build: bipartite,
    },
    Scenario {
        name: "power-law",
        description: "Chung–Lu power law, β = 2.5, average degree 8 (social networks)",
        default_n: 4096,
        scale: false,
        build: power_law,
    },
    Scenario {
        name: "geometric",
        description: "random geometric graph in the unit square, average degree ~12 (sensor nets)",
        default_n: 4096,
        scale: false,
        build: geometric,
    },
    Scenario {
        name: "grid",
        description: "⌊√n⌋ × ⌊√n⌋ grid lattice (seed ignored)",
        default_n: 4096,
        scale: false,
        build: grid,
    },
    Scenario {
        name: "ring-lattice",
        description: "Watts–Strogatz ring lattice, k = 6, 10% rewiring (small world)",
        default_n: 4096,
        scale: false,
        build: ring_lattice,
    },
    Scenario {
        name: "planted-matching",
        description: "perfect matching on n/2 pairs hidden under degree-4 G(n,p) noise",
        default_n: 4096,
        scale: false,
        build: planted_matching,
    },
    Scenario {
        name: "star-stress",
        description: "disjoint union of 64-vertex stars (hub stress; seed ignored)",
        default_n: 4096,
        scale: false,
        build: star_stress,
    },
    Scenario {
        name: "clique-stress",
        description: "disjoint union of 32-vertex cliques (dense-block stress; seed ignored)",
        default_n: 2048,
        scale: false,
        build: clique_stress,
    },
    Scenario {
        name: "barabasi-albert",
        description: "Barabási–Albert preferential attachment, 4 edges per arrival",
        default_n: 4096,
        scale: false,
        build: barabasi_albert,
    },
    Scenario {
        name: "sbm",
        description: "stochastic block model, 4 equal communities, ~16:1 intra/inter degree",
        default_n: 2048,
        scale: false,
        build: sbm,
    },
    // ---- scale tier ----
    Scenario {
        name: "scale-gnp-1m",
        description: "G(n, p) at average degree 8, n = 2^20 (the bench_scale headline)",
        default_n: 1 << 20,
        scale: true,
        build: gnp_sparse,
    },
    Scenario {
        name: "scale-gnp-2m",
        description: "G(n, p) at average degree 8, n = 2^21",
        default_n: 1 << 21,
        scale: true,
        build: gnp_sparse,
    },
    Scenario {
        name: "scale-gnm-1m",
        description: "G(n, m) with m = 4n, n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: gnm,
    },
    Scenario {
        name: "scale-grid-1m",
        description: "1024 × 1024 grid lattice (seed ignored), n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: grid,
    },
    Scenario {
        name: "scale-ba-1m",
        description: "Barabási–Albert, 8 edges per arrival (batched windows), n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: barabasi_albert_8,
    },
    Scenario {
        name: "scale-bipartite-1m",
        description: "random bipartite G(n/2, n/2, p), average degree ~8, n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: bipartite,
    },
    Scenario {
        name: "scale-geometric-1m",
        description: "random geometric graph, average degree ~12, n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: geometric,
    },
    Scenario {
        name: "scale-planted-1m",
        description: "planted perfect matching under degree-4 noise, n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: planted_matching,
    },
    Scenario {
        name: "scale-ring-1m",
        description: "Watts–Strogatz ring lattice, k = 6, 10% rewiring, n = 2^20",
        default_n: 1 << 20,
        scale: true,
        build: ring_lattice,
    },
    Scenario {
        name: "scale-gnp-16m",
        description: "G(n, p) at average degree 8, n = 2^24 (u32-packed CSR headline)",
        default_n: 1 << 24,
        scale: true,
        build: gnp_sparse,
    },
    Scenario {
        name: "scale-gnm-16m",
        description: "G(n, m) with m = 4n, n = 2^24",
        default_n: 1 << 24,
        scale: true,
        build: gnm,
    },
];

/// All registered scenarios, in stable display order (base tier, then
/// scale tier).
pub fn all() -> &'static [Scenario] {
    REGISTRY
}

/// The base tier: every non-`scale-` scenario. This is what the full
/// `bench_report` sweep iterates.
pub fn base() -> impl Iterator<Item = &'static Scenario> {
    REGISTRY.iter().filter(|s| !s.scale)
}

/// The million-vertex scale tier (`scale-*` names) — the `bench_scale`
/// workloads.
pub fn scale_tier() -> impl Iterator<Item = &'static Scenario> {
    REGISTRY.iter().filter(|s| s.scale)
}

/// Looks up a scenario by registry name.
pub fn get(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// The registered scenario names, in display order (for usage strings).
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_lookup_works() {
        let names = names();
        assert!(names.len() >= 10, "issue demands >=10 families");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate scenario name");
        for s in all() {
            assert_eq!(get(s.name).unwrap().name, s.name);
            assert!(!s.description.is_empty());
            assert!(s.default_n >= 256, "{} default too small", s.name);
        }
        assert!(get("no-such-scenario").is_none());
    }

    #[test]
    fn tiers_partition_the_registry() {
        assert_eq!(base().count() + scale_tier().count(), all().len());
        assert_eq!(base().count(), 14, "the base tier is frozen at 14");
        assert!(scale_tier().count() >= 8, "scale tier families");
        for s in scale_tier() {
            assert!(s.name.starts_with("scale-"), "{} must be prefixed", s.name);
            assert!(s.default_n >= 1 << 20, "{} below the million tier", s.name);
        }
        for s in base() {
            assert!(!s.name.starts_with("scale-"), "{} wrongly prefixed", s.name);
        }
    }

    #[test]
    fn every_scenario_builds_small_and_default_deterministically() {
        for s in all() {
            let a = s.build_with(96, 7).unwrap_or_else(|e| {
                panic!("{} failed at n=96: {e}", s.name);
            });
            let b = s.build_with(96, 7).unwrap();
            assert_eq!(a, b, "{} not deterministic", s.name);
            assert!(a.num_vertices() > 0, "{} empty at n=96", s.name);
            assert!(a.num_vertices() <= 96, "{} exceeded requested size", s.name);
        }
    }

    #[test]
    fn scale_scenarios_executor_invariant_small() {
        // The cheap version of the bench_scale byte-identity check: every
        // scale family at a size that still exercises the chunked
        // builder paths.
        for s in scale_tier() {
            let a = s
                .build_with_exec(20_000, 3, &ExecutorConfig::sequential())
                .unwrap();
            let b = s
                .build_with_exec(20_000, 3, &ExecutorConfig::with_threads(4))
                .unwrap();
            assert_eq!(a, b, "{} diverged across executors", s.name);
        }
    }

    #[test]
    fn seeded_families_vary_with_seed() {
        for name in [
            "gnp-sparse",
            "gnp-mid",
            "gnp-dense",
            "gnm",
            "bipartite",
            "power-law",
            "geometric",
            "ring-lattice",
            "planted-matching",
            "barabasi-albert",
            "sbm",
        ] {
            let s = get(name).unwrap();
            assert_ne!(
                s.build_with(128, 1).unwrap(),
                s.build_with(128, 2).unwrap(),
                "{name} ignored its seed"
            );
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        for s in all() {
            for n in [0usize, 1, 2, 5] {
                let g = s
                    .build_with(n, 3)
                    .unwrap_or_else(|e| panic!("{} failed at n={n}: {e}", s.name));
                assert!(g.num_vertices() <= n.max(1), "{} at n={n}", s.name);
            }
        }
    }
}
