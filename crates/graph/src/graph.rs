//! The core immutable graph type and its builder.
//!
//! [`Graph`] is a simple (no self-loops, no parallel edges), undirected graph
//! stored in compressed sparse row (CSR) form: a flat neighbor array plus
//! per-vertex offsets. Neighbor lists are sorted, which gives `O(log d)`
//! adjacency tests and cache-friendly iteration — the access pattern every
//! algorithm in this workspace is built around.
//!
//! Construction goes through [`GraphBuilder`], which validates endpoints,
//! rejects self-loops, and deduplicates parallel edges.

use crate::error::GraphError;

/// Identifier of a vertex: a dense index in `0..n`.
pub type VertexId = u32;

/// An undirected edge, canonically stored with `u() <= v()`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::Edge;
/// let e = Edge::new(5, 2);
/// assert_eq!((e.u(), e.v()), (2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates an edge; endpoints are normalized so that `u() <= v()`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loop {{{a},{a}}} is not a valid edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert!(x == self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Returns `true` if `x` is an endpoint.
    pub fn contains(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// An immutable simple undirected graph in CSR representation.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g: Graph = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets: neighbors of `v` live at `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Flat, per-vertex-sorted neighbor array (each undirected edge appears
    /// twice).
    adj: Vec<VertexId>,
    /// Canonical edge list (`u < v`), sorted.
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Builds a graph from an iterator of endpoint pairs.
    ///
    /// Duplicate edges are merged; order of endpoints is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`]
    /// for invalid pairs.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// The canonical (sorted, `u < v`) edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        assert!(v < self.n, "vertex {v} out of range (n = {})", self.n);
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree Δ of the graph (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.n as f64
        }
    }

    /// Adjacency test in `O(log d)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.n || v as usize >= self.n || u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Returns the subgraph induced on `keep` (`keep[v]` true ⇔ vertex kept),
    /// **preserving vertex ids** (kept vertices keep their id; dropped
    /// vertices become isolated).
    ///
    /// This is the operation the paper's simulations perform when "removing"
    /// vertices: the vertex set stays `0..n` but all edges incident to
    /// removed vertices disappear.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != n`.
    pub fn induced_subgraph_mask(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.n, "mask length must equal n");
        let edges: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .filter(|e| keep[e.u() as usize] && keep[e.v() as usize])
            .map(|e| (e.u(), e.v()))
            .collect();
        Graph::from_edges(self.n, edges).expect("edges of a valid graph remain valid")
    }

    /// Returns the subgraph induced on the given vertex set, **relabelled**
    /// to dense ids `0..keep.len()`, together with the mapping
    /// `local -> original`.
    ///
    /// Used by the MPC simulations when shipping an induced subgraph to a
    /// single machine.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` contains an out-of-range or duplicate id.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut local_of = vec![u32::MAX; self.n];
        for (i, &v) in vertices.iter().enumerate() {
            assert!((v as usize) < self.n, "vertex {v} out of range");
            assert!(local_of[v as usize] == u32::MAX, "duplicate vertex {v}");
            local_of[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &v in vertices {
            let lv = local_of[v as usize];
            for &w in self.neighbors(v) {
                let lw = local_of[w as usize];
                if lw != u32::MAX && lv < lw {
                    edges.push((lv, lw));
                }
            }
        }
        let g = Graph::from_edges(vertices.len(), edges).expect("relabelled edges are valid");
        (g, vertices.to_vec())
    }

    /// The line graph `L(G)`: one vertex per edge of `G`, with two vertices
    /// adjacent iff the corresponding edges share an endpoint.
    ///
    /// An MIS of `L(G)` is a *maximal matching* of `G` (Luby's classical
    /// reduction, referenced in the paper's introduction).
    pub fn line_graph(&self) -> Graph {
        let m = self.edges.len();
        // Index edges incident to each vertex.
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for (i, e) in self.edges.iter().enumerate() {
            incident[e.u() as usize].push(i as u32);
            incident[e.v() as usize].push(i as u32);
        }
        let mut b = GraphBuilder::new(m);
        for inc in &incident {
            for i in 0..inc.len() {
                for j in (i + 1)..inc.len() {
                    b.add_edge(inc[i], inc[j]).expect("line-graph edges valid");
                }
            }
        }
        b.build()
    }

    /// Total number of words needed to represent the edge list (2 per edge);
    /// the unit of the MPC memory accounting.
    pub fn edge_words(&self) -> usize {
        2 * self.num_edges()
    }

    /// The complement graph `Ḡ`: same vertices, pair adjacent iff not
    /// adjacent in `G`. Independent sets of `G` are cliques of `Ḡ`.
    ///
    /// `O(n²)`; intended for small verification graphs.
    pub fn complement(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for u in 0..self.n as VertexId {
            for v in (u + 1)..self.n as VertexId {
                if !self.has_edge(u, v) {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
        b.build()
    }

    /// Connected components as a vector `comp[v] = component id`, plus the
    /// number of components. Isolated vertices form singleton components.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and validates endpoints. See [`Graph`] for an example.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicates are tolerated (merged at [`build`](Self::build) time).
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut Self, GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(Edge::new(u, v));
        Ok(self)
    }

    /// Finalizes into an immutable [`Graph`], deduplicating edges and
    /// building the CSR arrays.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.u() as usize] += 1;
            degree[e.v() as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut adj = vec![0 as VertexId; 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        for e in &self.edges {
            adj[cursor[e.u() as usize]] = e.v();
            cursor[e.u() as usize] += 1;
            adj[cursor[e.v() as usize]] = e.u();
            cursor[e.v() as usize] += 1;
        }
        // Neighbor lists are sorted because edges were processed in sorted
        // order for `u`, but for `v` sides we must sort explicitly.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            n,
            offsets,
            adj,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn petersen() -> Graph {
        // Outer 5-cycle, inner 5-star polygon, spokes.
        let mut b = GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5).unwrap(); // outer
            b.add_edge(5 + i, 5 + (i + 2) % 5).unwrap(); // inner
            b.add_edge(i, 5 + i).unwrap(); // spokes
        }
        b.build()
    }

    #[test]
    fn edge_normalization_and_other() {
        let e = Edge::new(9, 4);
        assert_eq!(e.u(), 4);
        assert_eq!(e.v(), 9);
        assert_eq!(e.other(4), 9);
        assert_eq!(e.other(9), 4);
        assert!(e.contains(4) && e.contains(9) && !e.contains(5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_self_loop_panics() {
        Edge::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_wrong_vertex_panics() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 3, "Petersen is 3-regular");
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 3, n: 3 }
        );
        assert_eq!(
            b.add_edge(4, 0).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 4, n: 3 }
        );
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(6, vec![(5, 0), (3, 0), (0, 1), (4, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 3, 4, 5]);
    }

    #[test]
    fn induced_subgraph_mask_preserves_ids() {
        let g = petersen();
        let mut keep = vec![true; 10];
        keep[0] = false;
        let h = g.induced_subgraph_mask(&keep);
        assert_eq!(h.num_vertices(), 10);
        assert_eq!(h.degree(0), 0);
        assert_eq!(h.num_edges(), 15 - 3);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = petersen();
        let verts = vec![0u32, 1, 5];
        let (h, map) = g.induced_subgraph(&verts);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(map, verts);
        // Edges {0,1} and {0,5} survive as {0,1} and {0,2} locally.
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(0, 2));
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        petersen().induced_subgraph(&[1, 1]);
    }

    #[test]
    fn line_graph_of_path() {
        // Path 0-1-2-3 has line graph = path on 3 vertices.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let l = g.line_graph();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.num_edges(), 2);
    }

    #[test]
    fn line_graph_of_star() {
        // Star K_{1,4}: line graph is K_4.
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let l = g.line_graph();
        assert_eq!(l.num_vertices(), 4);
        assert_eq!(l.num_edges(), 6);
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, k) = g.connected_components();
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert_ne!(comp[5], comp[3]);
    }

    #[test]
    fn edge_words_counts() {
        let g = petersen();
        assert_eq!(g.edge_words(), 30);
    }

    #[test]
    fn complement_involution_and_counts() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = g.complement();
        assert_eq!(c.num_edges(), 10 - 3);
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert_eq!(c.complement(), g, "complement is an involution");
        // Extremes.
        assert_eq!(Graph::empty(4).complement().num_edges(), 6);
        let complete5 = Graph::empty(5).complement();
        assert_eq!(complete5.complement().num_edges(), 0);
    }
}
