//! The core immutable graph type and its builder.
//!
//! [`Graph`] is a simple (no self-loops, no parallel edges), undirected graph
//! stored in compressed sparse row (CSR) form: a flat neighbor array plus
//! per-vertex offsets. Neighbor lists are sorted, which gives `O(log d)`
//! adjacency tests and cache-friendly iteration — the access pattern every
//! algorithm in this workspace is built around.
//!
//! # Memory model
//!
//! The CSR arrays are the *only* owned representation (see DESIGN.md §2b):
//!
//! * `offsets` — `n + 1` entries; neighbors of `v` live at
//!   `adj[offsets[v]..offsets[v+1]]`;
//! * `adj` — `2m` vertex ids, each undirected edge stored twice, per-vertex
//!   sorted;
//! * `fwd_offsets` — `n + 1` entries of *forward-edge* prefix sums:
//!   `fwd_offsets[v]` counts canonical edges `{a, b}`, `a < b`, with `a < v`.
//!
//! Both offset arrays are **u32-packed** ([`OffsetArray`]): their values
//! are bounded by `2m` directed edges, so until a graph exceeds 2³²
//! directed edges they fit in half the memory (and half the cache lines)
//! of the historical `Vec<usize>` layout. The checked u64 fallback above
//! that bound is behaviourally identical — [`PartialEq`] on [`Graph`] and
//! [`OffsetArray`] compares logical values, never representation width.
//!
//! The canonical sorted edge list (`u < v`, lexicographic) is **not** stored.
//! [`Graph::edges`] returns an [`EdgesView`] that derives it on demand from
//! the CSR arrays: the forward neighbors of `v` (those `> v`) are a suffix of
//! `v`'s sorted neighbor slice, and `fwd_offsets` ranks them globally, giving
//! `O(1)` sequential iteration, `O(log n)` random access
//! ([`EdgesView::get`]), and `O(log d)` rank queries
//! ([`EdgesView::index_of`]) — without the `8m`-byte owned copy the seed
//! representation carried next to the `16m`-byte CSR.
//!
//! Construction goes through [`GraphBuilder`], which validates endpoints,
//! rejects self-loops, and deduplicates parallel edges. Large builds run a
//! two-pass counting-sort CSR construction (degree count → prefix offsets →
//! scatter, then per-vertex sort + dedup in place) chunked over an
//! [`ExecutorConfig`]; because every vertex's neighbor list is normalized by
//! the final sort + dedup, the result is byte-identical for `Sequential` and
//! `Threaded{k}` executors, every `k` — the substrate layer's determinism
//! contract extended to graph construction.

use crate::error::GraphError;
use mmvc_substrate::{ExecutorConfig, ScratchPool};

/// Identifier of a vertex: a dense index in `0..n`.
pub type VertexId = u32;

/// A CSR offset (prefix-sum) array, u32-packed with a checked u64
/// fallback.
///
/// Offset values are bounded by the number of *directed* edges (`2m`),
/// so almost every graph this workspace can hold fits the `U32` variant —
/// half the bytes and cache traffic of the historical `Vec<usize>`. The
/// `U64` variant exists for graphs beyond 2³² directed edges (and for the
/// fallback tests that force it). Equality is *logical*: a `U32` and a
/// `U64` array holding the same values compare equal, as do comparisons
/// against `&[usize]` references — representation width is an
/// implementation detail, never part of graph identity.
#[derive(Debug, Clone)]
pub enum OffsetArray {
    /// Packed offsets: every value `< 2³²`.
    U32(Vec<u32>),
    /// Wide offsets for graphs beyond 2³² directed edges.
    U64(Vec<u64>),
}

impl OffsetArray {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            OffsetArray::U32(v) => v.len(),
            OffsetArray::U64(v) => v.len(),
        }
    }

    /// Whether the array has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th offset as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            OffsetArray::U32(v) => v[i] as usize,
            OffsetArray::U64(v) => v[i] as usize,
        }
    }

    /// The adjacent pair `(get(i), get(i + 1))` — one representation
    /// branch instead of two for the ubiquitous slice-bounds lookup.
    #[inline]
    pub fn pair(&self, i: usize) -> (usize, usize) {
        match self {
            OffsetArray::U32(v) => (v[i] as usize, v[i + 1] as usize),
            OffsetArray::U64(v) => (v[i] as usize, v[i + 1] as usize),
        }
    }

    /// The last offset (the total the prefix sums run to).
    ///
    /// # Panics
    ///
    /// Panics if the array is empty.
    pub fn last(&self) -> usize {
        match self {
            OffsetArray::U32(v) => *v.last().expect("offsets never empty") as usize,
            OffsetArray::U64(v) => *v.last().expect("offsets never empty") as usize,
        }
    }

    /// `true` for the u64 fallback representation.
    pub fn is_wide(&self) -> bool {
        matches!(self, OffsetArray::U64(_))
    }

    /// Resident bytes of the backing array.
    pub fn byte_len(&self) -> usize {
        match self {
            OffsetArray::U32(v) => v.len() * 4,
            OffsetArray::U64(v) => v.len() * 8,
        }
    }

    /// Iterator over the offsets as `usize` values.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Number of leading entries `<= x` (the array is non-decreasing);
    /// the `partition_point` the edge view's owner lookup runs on.
    pub(crate) fn partition_point_le(&self, x: usize) -> usize {
        match self {
            OffsetArray::U32(v) => v.partition_point(|&o| o as usize <= x),
            OffsetArray::U64(v) => v.partition_point(|&o| o as usize <= x),
        }
    }

    /// Packs a `usize` prefix-sum vector, narrow unless `wide` is forced.
    fn pack(values: &[usize], wide: bool) -> Self {
        let fits = values.last().is_none_or(|&t| t <= u32::MAX as usize);
        if fits && !wide {
            OffsetArray::U32(values.iter().map(|&x| x as u32).collect())
        } else {
            OffsetArray::U64(values.iter().map(|&x| x as u64).collect())
        }
    }
}

impl PartialEq for OffsetArray {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for OffsetArray {}

impl PartialEq<[usize]> for OffsetArray {
    fn eq(&self, other: &[usize]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, &b)| a == b)
    }
}

impl PartialEq<&[usize]> for OffsetArray {
    fn eq(&self, other: &&[usize]) -> bool {
        self == *other
    }
}

/// An undirected edge, canonically stored with `u() <= v()`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::Edge;
/// let e = Edge::new(5, 2);
/// assert_eq!((e.u(), e.v()), (2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates an edge; endpoints are normalized so that `u() <= v()`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loop {{{a},{a}}} is not a valid edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert!(x == self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Returns `true` if `x` is an endpoint.
    pub fn contains(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// An immutable simple undirected graph in CSR representation.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g: Graph = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    pub(crate) n: usize,
    /// CSR offsets (u32-packed): neighbors of `v` live at
    /// `adj[offsets.get(v)..offsets.get(v+1)]`.
    pub(crate) offsets: OffsetArray,
    /// Flat, per-vertex-sorted neighbor array (each undirected edge appears
    /// twice).
    pub(crate) adj: Vec<VertexId>,
    /// Forward-edge prefix sums (u32-packed): `fwd_offsets[v]` counts
    /// canonical edges `{a, b}` with `a < b` and `a < v`; `fwd_offsets[n]`
    /// is `|E|`. This is what lets [`EdgesView`] derive the canonical edge
    /// list from the CSR arrays instead of owning a second copy.
    pub(crate) fwd_offsets: OffsetArray,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Builds a graph from an iterator of endpoint pairs.
    ///
    /// Duplicate edges are merged; order of endpoints is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`]
    /// for invalid pairs.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.fwd_offsets.last()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.num_edges() == 0
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// The canonical (sorted, `u < v`) edge list, as an on-demand view over
    /// the CSR arrays — nothing is materialized.
    ///
    /// The view iterates in the same lexicographic order the owned edge
    /// list used to have, supports `O(log n)` random access and `O(log d)`
    /// rank queries, and costs zero bytes.
    pub fn edges(&self) -> EdgesView<'_> {
        EdgesView { g: self }
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        assert!(v < self.n, "vertex {v} out of range (n = {})", self.n);
        let (s, e) = self.offsets.pair(v);
        &self.adj[s..e]
    }

    /// The *forward* neighbors of `v`: those with id greater than `v`, a
    /// suffix of the sorted neighbor slice. These are exactly the larger
    /// endpoints of the canonical edges `{v, w}`, `w > v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn forward_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        assert!(v < self.n, "vertex {v} out of range (n = {})", self.n);
        let (fs, fe) = self.fwd_offsets.pair(v);
        let end = self.offsets.get(v + 1);
        &self.adj[end - (fe - fs)..end]
    }

    /// The raw CSR offset array (`n + 1` entries, u32-packed — see
    /// [`OffsetArray`]). Together with
    /// [`csr_adjacency`](Self::csr_adjacency) this is the whole graph;
    /// exposed for zero-copy consumers and the builder-equivalence tests.
    pub fn csr_offsets(&self) -> &OffsetArray {
        &self.offsets
    }

    /// The raw CSR adjacency array (`2m` entries, per-vertex sorted).
    pub fn csr_adjacency(&self) -> &[VertexId] {
        &self.adj
    }

    /// Resident bytes of the CSR representation (the arrays; excludes the
    /// struct header). The figure `bench_scale` reports as graph memory.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.byte_len()
            + self.fwd_offsets.byte_len()
            + self.adj.len() * std::mem::size_of::<VertexId>()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree Δ of the graph (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|v| {
                let (s, e) = self.offsets.pair(v);
                e - s
            })
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.n as f64
        }
    }

    /// Adjacency test in `O(log d)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.n || v as usize >= self.n || u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Returns the subgraph induced on `keep` (`keep[v]` true ⇔ vertex kept),
    /// **preserving vertex ids** (kept vertices keep their id; dropped
    /// vertices become isolated).
    ///
    /// This is the operation the paper's simulations perform when "removing"
    /// vertices: the vertex set stays `0..n` but all edges incident to
    /// removed vertices disappear.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != n`.
    pub fn induced_subgraph_mask(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.n, "mask length must equal n");
        let edges: Vec<(VertexId, VertexId)> = self
            .edges()
            .iter()
            .filter(|e| keep[e.u() as usize] && keep[e.v() as usize])
            .map(|e| (e.u(), e.v()))
            .collect();
        Graph::from_edges(self.n, edges).expect("edges of a valid graph remain valid")
    }

    /// Returns the subgraph induced on the given vertex set, **relabelled**
    /// to dense ids `0..keep.len()`, together with the mapping
    /// `local -> original`.
    ///
    /// Used by the MPC simulations when shipping an induced subgraph to a
    /// single machine.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` contains an out-of-range or duplicate id.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut local_of = vec![u32::MAX; self.n];
        for (i, &v) in vertices.iter().enumerate() {
            assert!((v as usize) < self.n, "vertex {v} out of range");
            assert!(local_of[v as usize] == u32::MAX, "duplicate vertex {v}");
            local_of[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &v in vertices {
            let lv = local_of[v as usize];
            for &w in self.neighbors(v) {
                let lw = local_of[w as usize];
                if lw != u32::MAX && lv < lw {
                    edges.push((lv, lw));
                }
            }
        }
        let g = Graph::from_edges(vertices.len(), edges).expect("relabelled edges are valid");
        (g, vertices.to_vec())
    }

    /// The line graph `L(G)`: one vertex per edge of `G`, with two vertices
    /// adjacent iff the corresponding edges share an endpoint.
    ///
    /// An MIS of `L(G)` is a *maximal matching* of `G` (Luby's classical
    /// reduction, referenced in the paper's introduction).
    pub fn line_graph(&self) -> Graph {
        let m = self.num_edges();
        // Index edges incident to each vertex.
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for (i, e) in self.edges().iter().enumerate() {
            incident[e.u() as usize].push(i as u32);
            incident[e.v() as usize].push(i as u32);
        }
        let mut b = GraphBuilder::new(m);
        for inc in &incident {
            for i in 0..inc.len() {
                for j in (i + 1)..inc.len() {
                    b.add_edge(inc[i], inc[j]).expect("line-graph edges valid");
                }
            }
        }
        b.build()
    }

    /// Total number of words needed to represent the edge list (2 per edge);
    /// the unit of the MPC memory accounting.
    pub fn edge_words(&self) -> usize {
        2 * self.num_edges()
    }

    /// The complement graph `Ḡ`: same vertices, pair adjacent iff not
    /// adjacent in `G`. Independent sets of `G` are cliques of `Ḡ`.
    ///
    /// `O(n²)`; intended for small verification graphs.
    pub fn complement(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for u in 0..self.n as VertexId {
            for v in (u + 1)..self.n as VertexId {
                if !self.has_edge(u, v) {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
        b.build()
    }

    /// Connected components as a vector `comp[v] = component id`, plus the
    /// number of components. Isolated vertices form singleton components.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }
}

/// Zero-copy view of a graph's canonical (sorted, `u < v`) edge list,
/// derived on demand from the CSR arrays — see the module docs for the
/// memory model.
///
/// Iteration is `O(1)` amortized per edge and yields edges in the same
/// lexicographic order the owned list used to have; [`get`](Self::get) is
/// `O(log n)`; [`index_of`](Self::index_of) is `O(log d)`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{Edge, Graph};
///
/// let g = Graph::from_edges(4, vec![(2, 1), (0, 3), (1, 0)])?;
/// let edges = g.edges();
/// assert_eq!(edges.len(), 3);
/// assert_eq!(edges.get(0), Edge::new(0, 1));
/// assert_eq!(edges.index_of(&Edge::new(1, 2)), Some(2));
/// let all: Vec<Edge> = edges.iter().collect();
/// assert_eq!(all, vec![Edge::new(0, 1), Edge::new(0, 3), Edge::new(1, 2)]);
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Clone, Copy)]
pub struct EdgesView<'g> {
    g: &'g Graph,
}

impl std::fmt::Debug for EdgesView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgesView")
            .field("len", &self.len())
            .finish()
    }
}

impl<'g> EdgesView<'g> {
    /// Number of canonical edges (`|E|`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.g.num_edges()
    }

    /// Whether the edge list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th canonical edge, in `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Edge {
        assert!(
            i < self.len(),
            "edge index {i} out of range ({})",
            self.len()
        );
        let u = self.owner_of(i);
        let fwd = self.g.forward_neighbors(u as VertexId);
        let v = fwd[i - self.g.fwd_offsets.get(u)];
        Edge {
            u: u as VertexId,
            v,
        }
    }

    /// The canonical index of `e`, or `None` if `e` is not an edge of the
    /// graph. `O(log d)`. The inverse of [`get`](Self::get) — this is what
    /// replaced `binary_search` on the owned edge slice.
    pub fn index_of(&self, e: &Edge) -> Option<usize> {
        let u = e.u() as usize;
        if u >= self.g.n || e.v() as usize >= self.g.n {
            return None;
        }
        let fwd = self.g.forward_neighbors(e.u());
        fwd.binary_search(&e.v())
            .ok()
            .map(|k| self.g.fwd_offsets.get(u) + k)
    }

    /// Iterator over all canonical edges, in lexicographic order.
    pub fn iter(&self) -> EdgeIter<'g> {
        self.range(0..self.len())
    }

    /// Iterator over the canonical edges with indices in `r` — the
    /// replacement for slicing the owned edge list (`edges[a..b]`).
    ///
    /// # Panics
    ///
    /// Panics if `r.end > len()` or `r.start > r.end`.
    pub fn range(&self, r: std::ops::Range<usize>) -> EdgeIter<'g> {
        assert!(
            r.start <= r.end && r.end <= self.len(),
            "edge range {r:?} out of bounds ({})",
            self.len()
        );
        let u = if r.start < r.end {
            self.owner_of(r.start)
        } else {
            0
        };
        EdgeIter {
            g: self.g,
            next: r.start,
            end: r.end,
            u,
        }
    }

    /// Materializes the edge list (for the few consumers that genuinely
    /// need an owned, indexable copy, e.g. the brute-force solvers).
    pub fn to_vec(&self) -> Vec<Edge> {
        self.iter().collect()
    }

    /// The smaller endpoint of the `i`-th canonical edge (`i < len()`).
    fn owner_of(&self, i: usize) -> usize {
        self.g.fwd_offsets.partition_point_le(i) - 1
    }
}

impl<'g> IntoIterator for EdgesView<'g> {
    type Item = Edge;
    type IntoIter = EdgeIter<'g>;

    fn into_iter(self) -> EdgeIter<'g> {
        self.iter()
    }
}

impl<'g> IntoIterator for &EdgesView<'g> {
    type Item = Edge;
    type IntoIter = EdgeIter<'g>;

    fn into_iter(self) -> EdgeIter<'g> {
        self.iter()
    }
}

/// Iterator over a range of canonical edges (see [`EdgesView`]).
#[derive(Debug, Clone)]
pub struct EdgeIter<'g> {
    g: &'g Graph,
    /// Next canonical edge index to yield.
    next: usize,
    /// One past the last index to yield.
    end: usize,
    /// Current smaller endpoint (maintained so iteration is `O(1)`
    /// amortized; only meaningful while `next < end`).
    u: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.next >= self.end {
            return None;
        }
        // Advance past vertices whose forward edges are exhausted.
        while self.g.fwd_offsets.get(self.u + 1) <= self.next {
            self.u += 1;
        }
        let u = self.u;
        let (fs, fe) = self.g.fwd_offsets.pair(u);
        let pos = self.g.offsets.get(u + 1) - (fe - fs) + (self.next - fs);
        self.next += 1;
        Some(Edge {
            u: u as VertexId,
            v: self.g.adj[pos],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}
impl std::iter::FusedIterator for EdgeIter<'_> {}

/// Staged edge counts below this build on the single-threaded path — the
/// chunked machinery costs more than a tiny build saves.
const PAR_BUILD_THRESHOLD: usize = 1 << 15;

/// Staged edges per bucketing task in the chunked build (pass 1). Fixed —
/// never a function of the thread count — per the determinism contract.
/// Raised from 2¹⁶ in PR 6: fewer, larger tasks cut per-task overhead,
/// which is what made threaded builds slower than sequential on the
/// 1-core CI host.
const BUILD_EDGE_CHUNK: usize = 1 << 17;

/// Vertices per scatter task in the chunked build (pass 2). Fixed, as
/// above. The delta-merge rebuild ([`Graph::apply_delta_with`]) reuses
/// the same granularity so its range boundaries match the builder's.
pub(crate) const BUILD_VERTEX_CHUNK: usize = 1 << 15;

/// Packs a canonical edge as `(u << 32) | v`. Lexicographic edge order
/// and packed integer order coincide, so sort + dedup on packed words is
/// byte-equivalent to sort + dedup on [`Edge`] values.
#[inline]
pub(crate) fn pack_edge(e: Edge) -> u64 {
    ((e.u as u64) << 32) | e.v as u64
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and validates endpoints. See [`Graph`] for an example.
///
/// [`build`](Self::build) finalizes on a default (threaded) executor;
/// [`build_with`](Self::build_with) takes an explicit [`ExecutorConfig`].
/// Either way the resulting graph is byte-identical — construction is
/// normalized by a per-vertex sort + dedup, so thread count can never leak
/// into the CSR arrays.
///
/// Edges are staged as packed `(u << 32) | v` words, which lets the
/// staging buffer itself come from (and return to) a
/// [`ScratchPool`] — see
/// [`with_capacity_in`](Self::with_capacity_in). A warm pool makes
/// repeated builds allocate essentially nothing beyond the final CSR
/// arrays.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    /// Staged edges, packed `(u << 32) | v` with `u < v` (canonical).
    edges: Vec<u64>,
    /// Arena the staging buffer came from (and returns to after the
    /// build), when the builder was created via `with_capacity_in`.
    pool: Option<ScratchPool>,
    /// Test knob: force the u64 offset fallback regardless of size.
    force_wide: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            pool: None,
            force_wide: false,
        }
    }

    /// Creates a builder with capacity for `m` edges. Generators pass their
    /// exact (or expected) edge counts here so large builds never reallocate
    /// the staging buffer.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            pool: None,
            force_wide: false,
        }
    }

    /// Like [`with_capacity`](Self::with_capacity), but the staging buffer
    /// is drawn from `exec`'s scratch arena (when one is attached) and
    /// recycled into it when the build completes — so repeated builds of
    /// similarly-sized graphs reuse one staging allocation.
    pub fn with_capacity_in(n: usize, m: usize, exec: &ExecutorConfig) -> Self {
        GraphBuilder {
            n,
            edges: exec.take_u64(m),
            pool: exec.scratch().cloned(),
            force_wide: false,
        }
    }

    /// Forces the u64 offset fallback the builder would normally reserve
    /// for graphs beyond 2³² directed edges. The resulting graph is
    /// logically identical to the packed build — this knob exists so the
    /// fallback path is testable without staging 2³² edges.
    #[doc(hidden)]
    pub fn force_wide_offsets(&mut self) -> &mut Self {
        self.force_wide = true;
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of staged (raw, not yet deduplicated) edges.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicates are tolerated (merged at [`build`](Self::build) time).
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut Self, GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(pack_edge(Edge::new(u, v)));
        Ok(self)
    }

    /// Bulk-stages already-constructed edges (the generators' parallel
    /// chunks land here). Every [`Edge`] is self-loop-free by construction,
    /// so only the larger endpoint needs a range check.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] on the first out-of-range endpoint
    /// (edges before it stay staged).
    pub fn extend_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        for e in edges {
            if e.v() as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: e.v(),
                    n: self.n,
                });
            }
            self.edges.push(pack_edge(e));
        }
        Ok(self)
    }

    /// Bulk-stages pre-packed canonical edges (`(u << 32) | v`, `u < v`,
    /// `v < n`) — the generators' pooled fast path. Invariants are the
    /// caller's responsibility; debug builds audit them.
    pub(crate) fn extend_packed(&mut self, packed: &[u64]) {
        debug_assert!(packed.iter().all(|&p| {
            let (u, v) = ((p >> 32) as u32, p as u32);
            u < v && (v as usize) < self.n
        }));
        self.edges.extend_from_slice(packed);
    }

    /// Finalizes into an immutable [`Graph`] on a default executor,
    /// deduplicating edges and building the CSR arrays.
    ///
    /// Small builds (< 2¹⁵ staged edges) take a single-threaded path with
    /// zero executor involvement; larger builds delegate to
    /// [`build_with`](Self::build_with) on [`ExecutorConfig::default`].
    pub fn build(self) -> Graph {
        if self.edges.len() < PAR_BUILD_THRESHOLD {
            return self.build_small();
        }
        let exec = ExecutorConfig::default();
        self.build_chunked(&exec)
    }

    /// Finalizes on an explicit executor. `Sequential` and `Threaded{k}`
    /// produce byte-identical graphs for every `k`: chunk boundaries are
    /// fixed (never thread-count-dependent) and every vertex's neighbor
    /// list is normalized by a final sort + dedup, so scatter order washes
    /// out entirely.
    pub fn build_with(self, exec: &ExecutorConfig) -> Graph {
        let _span = exec
            .telemetry()
            .span("csr.build")
            .with_arg("n", self.n as u64)
            .with_arg("staged_edges", self.edges.len() as u64);
        if self.edges.len() < PAR_BUILD_THRESHOLD {
            return self.build_small();
        }
        self.build_chunked(exec)
    }

    /// Single-threaded build: global sort + dedup of the staged edges, then
    /// counting-sort scatter. The historical code path, kept for tiny
    /// graphs where it beats the chunked machinery.
    fn build_small(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degree = vec![0usize; n];
        let mut fwd_offsets = vec![0usize; n + 1];
        for &p in &self.edges {
            let (u, v) = ((p >> 32) as usize, (p as u32) as usize);
            degree[u] += 1;
            degree[v] += 1;
            fwd_offsets[u + 1] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
            fwd_offsets[v + 1] += fwd_offsets[v];
        }
        let mut adj = vec![0 as VertexId; 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        for &p in &self.edges {
            let (u, v) = ((p >> 32) as usize, (p as u32) as usize);
            adj[cursor[u]] = v as VertexId;
            cursor[u] += 1;
            adj[cursor[v]] = u as VertexId;
            cursor[v] += 1;
        }
        // Neighbor lists are sorted because edges were processed in sorted
        // order for `u`, but for `v` sides we must sort explicitly.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        if let Some(pool) = &self.pool {
            pool.recycle_u64(std::mem::take(&mut self.edges));
        }
        let wide = self.force_wide;
        Graph {
            n,
            offsets: OffsetArray::pack(&offsets, wide),
            adj,
            fwd_offsets: OffsetArray::pack(&fwd_offsets, wide),
        }
    }

    /// Two-pass chunked counting-sort build, u32-packed and arena-backed.
    ///
    /// Pass 1 counting-sorts both directions of every staged edge by the
    /// owning vertex range, each fixed-size edge chunk writing its own
    /// disjoint slab of **one** flat (pooled) directed-pair buffer — a
    /// per-range cursor array makes every store sequential within its
    /// range segment instead of a random per-edge scatter. Pass 2, one
    /// task per fixed-size vertex range, walks the per-chunk segments of
    /// its range and runs the counting sort proper: degree count → prefix
    /// offsets → scatter, then per-vertex sort + dedup *in place* and
    /// forward-degree counting — all counters, offsets and cursors `u32`.
    /// The main thread concatenates the per-range outputs in range order
    /// and recycles every working buffer into the arena.
    ///
    /// Builds that could overflow the u32 counters (beyond 2³² directed
    /// edges) — or that request it via the test knob — take the checked
    /// u64 fallback, which produces a logically identical graph.
    ///
    /// Determinism: chunk and range boundaries depend only on the input
    /// (never the thread count), slab and result slots are task-indexed,
    /// and the per-vertex sort + dedup normalizes any scatter-order
    /// variation — so the output is byte-identical across executors.
    fn build_chunked(self, exec: &ExecutorConfig) -> Graph {
        if self.force_wide || 2 * self.edges.len() > u32::MAX as usize {
            return self.build_chunked_wide(exec);
        }
        let n = self.n;
        let pool = self.pool;
        let staged = self.edges;
        let ranges = n.div_ceil(BUILD_VERTEX_CHUNK).max(1);
        let chunks = staged.len().div_ceil(BUILD_EDGE_CHUNK);

        // Pass 1: chunk `c` owns the slab `directed[2*lo(c)..2*hi(c)]` and
        // counting-sorts its directed pairs `(owner << 32) | neighbor` by
        // the owner's vertex range. Returns the per-chunk range offsets
        // (within the slab) that pass 2 uses to locate each segment.
        let mut directed = exec.take_u64(2 * staged.len());
        directed.resize(2 * staged.len(), 0);
        let slab_bounds: Vec<usize> = (0..=chunks)
            .map(|c| 2 * (c * BUILD_EDGE_CHUNK).min(staged.len()))
            .collect();
        let chunk_offs: Vec<Vec<u32>> = {
            let staged = &staged;
            exec.run_slabs(&mut directed, &slab_bounds, |c, slab| {
                let lo = c * BUILD_EDGE_CHUNK;
                let hi = (lo + BUILD_EDGE_CHUNK).min(staged.len());
                let mut counts = exec.take_u32(ranges + 1);
                counts.resize(ranges + 1, 0);
                for &p in &staged[lo..hi] {
                    counts[(p >> 32) as usize / BUILD_VERTEX_CHUNK + 1] += 1;
                    counts[(p as u32) as usize / BUILD_VERTEX_CHUNK + 1] += 1;
                }
                for i in 0..ranges {
                    counts[i + 1] += counts[i];
                }
                let mut cursor = exec.take_u32(ranges);
                cursor.extend_from_slice(&counts[..ranges]);
                for &p in &staged[lo..hi] {
                    let (u, v) = (p >> 32, (p as u32) as u64);
                    let ru = u as usize / BUILD_VERTEX_CHUNK;
                    slab[cursor[ru] as usize] = p;
                    cursor[ru] += 1;
                    let rv = v as usize / BUILD_VERTEX_CHUNK;
                    slab[cursor[rv] as usize] = (v << 32) | u;
                    cursor[rv] += 1;
                }
                exec.recycle_u32(cursor);
                counts
            })
        };
        // The flat buffer carries everything; recycle staging now to
        // halve the transient peak.
        if let Some(p) = exec.scratch().or(pool.as_ref()) {
            p.recycle_u64(staged);
        } else {
            drop(staged);
        }

        // Pass 2: per vertex range, the counting sort proper over the
        // range's segments of every chunk slab.
        type RangePart = (Vec<u32>, Vec<u32>, Vec<u32>);
        let parts: Vec<RangePart> = {
            let directed = &directed;
            let chunk_offs = &chunk_offs;
            let slab_bounds = &slab_bounds;
            let segs = move |r: usize| {
                (0..chunks).map(move |c| {
                    let sb = slab_bounds[c];
                    let off = &chunk_offs[c];
                    &directed[sb + off[r] as usize..sb + off[r + 1] as usize]
                })
            };
            exec.run(ranges, |r| {
                let base = r * BUILD_VERTEX_CHUNK;
                let size = BUILD_VERTEX_CHUNK.min(n - base);
                // Degree count (duplicates included), then prefix offsets.
                let mut bounds = exec.take_u32(size + 1);
                bounds.resize(size + 1, 0);
                for seg in segs(r) {
                    for &p in seg {
                        bounds[(p >> 32) as usize - base + 1] += 1;
                    }
                }
                for i in 0..size {
                    bounds[i + 1] += bounds[i];
                }
                // Scatter neighbors into the per-vertex segments.
                let total = bounds[size] as usize;
                let mut buf = exec.take_u32(total);
                buf.resize(total, 0);
                let mut cursor = exec.take_u32(size);
                cursor.extend_from_slice(&bounds[..size]);
                for seg in segs(r) {
                    for &p in seg {
                        let lv = (p >> 32) as usize - base;
                        buf[cursor[lv] as usize] = p as u32;
                        cursor[lv] += 1;
                    }
                }
                exec.recycle_u32(cursor);
                // Per-vertex sort + dedup in place, compacting
                // front-to-back (the write cursor never overtakes the
                // read cursor).
                let mut deg = exec.take_u32(size);
                deg.resize(size, 0);
                let mut fwd = exec.take_u32(size);
                fwd.resize(size, 0);
                let mut w = 0usize;
                for lv in 0..size {
                    let (s, e) = (bounds[lv] as usize, bounds[lv + 1] as usize);
                    buf[s..e].sort_unstable();
                    let start_w = w;
                    let mut prev = u32::MAX;
                    for idx in s..e {
                        let x = buf[idx];
                        if x != prev {
                            buf[w] = x;
                            w += 1;
                            prev = x;
                        }
                    }
                    deg[lv] = (w - start_w) as u32;
                    let gv = (base + lv) as u32;
                    fwd[lv] =
                        ((w - start_w) - buf[start_w..w].partition_point(|&x| x <= gv)) as u32;
                }
                buf.truncate(w);
                exec.recycle_u32(bounds);
                (buf, deg, fwd)
            })
        };
        exec.recycle_u64(directed);
        for co in chunk_offs {
            exec.recycle_u32(co);
        }

        // Assemble: concatenate per-range outputs in range order (the
        // final CSR arrays are the product, not scratch — they are the
        // only fresh allocations of a warm-pool build).
        let total: usize = parts.iter().map(|(buf, _, _)| buf.len()).sum();
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut fwd_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut adj: Vec<VertexId> = Vec::with_capacity(total);
        offsets.push(0);
        fwd_offsets.push(0);
        let (mut off, mut f) = (0u32, 0u32);
        for (buf, deg, fwd) in &parts {
            adj.extend_from_slice(buf);
            for &d in deg {
                off += d;
                offsets.push(off);
            }
            for &c in fwd {
                f += c;
                fwd_offsets.push(f);
            }
        }
        for (buf, deg, fwd) in parts {
            exec.recycle_u32(buf);
            exec.recycle_u32(deg);
            exec.recycle_u32(fwd);
        }
        Graph {
            n,
            offsets: OffsetArray::U32(offsets),
            adj,
            fwd_offsets: OffsetArray::U32(fwd_offsets),
        }
    }

    /// The checked u64 fallback of [`build_chunked`](Self::build_chunked):
    /// the historical per-chunk bucket-vector pipeline with `usize`
    /// counters throughout, producing wide offset arrays. Taken when the
    /// staged edge count could overflow the packed path's u32 counters
    /// (beyond 2³² directed edges) or when forced by the test knob; the
    /// resulting graph is logically identical to the packed build.
    fn build_chunked_wide(self, exec: &ExecutorConfig) -> Graph {
        let n = self.n;
        let edges = self.edges;
        let ranges = n.div_ceil(BUILD_VERTEX_CHUNK).max(1);

        // Pass 1: bucket directed pairs `(owner << 32) | neighbor` by the
        // owner's vertex range, one task per fixed-size edge chunk.
        let buckets: Vec<Vec<Vec<u64>>> = exec.run_chunked(edges.len(), BUILD_EDGE_CHUNK, |r| {
            let mut local: Vec<Vec<u64>> = vec![Vec::new(); ranges];
            for &p in &edges[r] {
                let (u, v) = (p >> 32, (p as u32) as u64);
                local[u as usize / BUILD_VERTEX_CHUNK].push(p);
                local[v as usize / BUILD_VERTEX_CHUNK].push((v << 32) | u);
            }
            local
        });
        drop(edges); // the buckets carry everything; halve transient peak

        // Pass 2: per vertex range, the counting sort proper.
        type RangePart = (Vec<VertexId>, Vec<u32>, Vec<u32>);
        let parts: Vec<RangePart> = exec.run(ranges, |r| {
            let base = r * BUILD_VERTEX_CHUNK;
            let size = BUILD_VERTEX_CHUNK.min(n - base);
            // Degree count (duplicates included), then prefix offsets.
            let mut bounds = vec![0usize; size + 1];
            for chunk in &buckets {
                for &p in &chunk[r] {
                    bounds[(p >> 32) as usize - base + 1] += 1;
                }
            }
            for i in 0..size {
                bounds[i + 1] += bounds[i];
            }
            // Scatter neighbors into the per-vertex segments.
            let mut buf = vec![0 as VertexId; bounds[size]];
            let mut cursor = bounds[..size].to_vec();
            for chunk in &buckets {
                for &p in &chunk[r] {
                    let lv = (p >> 32) as usize - base;
                    buf[cursor[lv]] = p as VertexId;
                    cursor[lv] += 1;
                }
            }
            // Per-vertex sort + dedup in place, compacting front-to-back
            // (the write cursor never overtakes the read cursor).
            let mut deg = vec![0u32; size];
            let mut fwd = vec![0u32; size];
            let mut w = 0usize;
            for lv in 0..size {
                let (s, e) = (bounds[lv], bounds[lv + 1]);
                buf[s..e].sort_unstable();
                let start_w = w;
                let mut prev = VertexId::MAX;
                for idx in s..e {
                    let x = buf[idx];
                    if x != prev {
                        buf[w] = x;
                        w += 1;
                        prev = x;
                    }
                }
                deg[lv] = (w - start_w) as u32;
                let gv = (base + lv) as VertexId;
                fwd[lv] = ((w - start_w) - buf[start_w..w].partition_point(|&x| x <= gv)) as u32;
            }
            buf.truncate(w);
            (buf, deg, fwd)
        });

        // Assemble: concatenate per-range outputs in range order.
        let total: usize = parts.iter().map(|(buf, _, _)| buf.len()).sum();
        let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
        let mut fwd_offsets: Vec<u64> = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(total);
        offsets.push(0);
        fwd_offsets.push(0);
        let (mut off, mut f) = (0u64, 0u64);
        for (buf, deg, fwd) in &parts {
            adj.extend_from_slice(buf);
            for &d in deg {
                off += d as u64;
                offsets.push(off);
            }
            for &c in fwd {
                f += c as u64;
                fwd_offsets.push(f);
            }
        }
        Graph {
            n,
            offsets: OffsetArray::U64(offsets),
            adj,
            fwd_offsets: OffsetArray::U64(fwd_offsets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn petersen() -> Graph {
        // Outer 5-cycle, inner 5-star polygon, spokes.
        let mut b = GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5).unwrap(); // outer
            b.add_edge(5 + i, 5 + (i + 2) % 5).unwrap(); // inner
            b.add_edge(i, 5 + i).unwrap(); // spokes
        }
        b.build()
    }

    #[test]
    fn edge_normalization_and_other() {
        let e = Edge::new(9, 4);
        assert_eq!(e.u(), 4);
        assert_eq!(e.v(), 9);
        assert_eq!(e.other(4), 9);
        assert_eq!(e.other(9), 4);
        assert!(e.contains(4) && e.contains(9) && !e.contains(5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_self_loop_panics() {
        Edge::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_wrong_vertex_panics() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.edges().is_empty());
        assert_eq!(g.edges().iter().count(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().len(), 0);
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 3, "Petersen is 3-regular");
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 3, n: 3 }
        );
        assert_eq!(
            b.add_edge(4, 0).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 4, n: 3 }
        );
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_eq!(
            b.extend_edges([Edge::new(0, 2), Edge::new(1, 3)])
                .unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 3, n: 3 }
        );
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(6, vec![(5, 0), (3, 0), (0, 1), (4, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 3, 4, 5]);
    }

    #[test]
    fn edges_view_matches_canonical_order() {
        let g = Graph::from_edges(6, vec![(5, 0), (3, 0), (0, 1), (4, 2), (2, 1)]).unwrap();
        let expect = vec![
            Edge::new(0, 1),
            Edge::new(0, 3),
            Edge::new(0, 5),
            Edge::new(1, 2),
            Edge::new(2, 4),
        ];
        assert_eq!(g.edges().to_vec(), expect);
        assert_eq!(g.edges().len(), 5);
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(g.edges().get(i), *e, "get({i})");
            assert_eq!(g.edges().index_of(e), Some(i), "index_of({e:?})");
        }
        assert_eq!(g.edges().index_of(&Edge::new(0, 2)), None);
        assert_eq!(g.edges().index_of(&Edge::new(4, 5)), None);
        // Range slicing matches the materialized slice.
        let mid: Vec<Edge> = g.edges().range(1..4).collect();
        assert_eq!(mid, expect[1..4]);
        assert_eq!(g.edges().range(2..2).count(), 0);
        // ExactSizeIterator bookkeeping.
        let mut it = g.edges().iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn forward_neighbors_are_the_larger_ones() {
        let g = Graph::from_edges(5, vec![(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(g.forward_neighbors(2), &[3, 4]);
        assert_eq!(g.forward_neighbors(0), &[2]);
        assert_eq!(g.forward_neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edges_view_get_out_of_bounds_panics() {
        petersen().edges().get(15);
    }

    #[test]
    fn csr_accessors_and_memory() {
        let g = petersen();
        assert_eq!(g.csr_offsets().len(), 11);
        assert_eq!(g.csr_adjacency().len(), 30);
        assert!(!g.csr_offsets().is_wide(), "small graphs pack to u32");
        assert_eq!(
            g.memory_bytes(),
            11 * 4 + 11 * 4 + 30 * 4,
            "u32-packed offsets + fwd_offsets + adj"
        );
    }

    #[test]
    fn offset_array_logical_equality_and_accessors() {
        let narrow = OffsetArray::U32(vec![0, 2, 5, 9]);
        let wide = OffsetArray::U64(vec![0, 2, 5, 9]);
        assert_eq!(narrow, wide, "equality ignores representation width");
        assert_eq!(narrow, &[0usize, 2, 5, 9][..]);
        assert_ne!(narrow, OffsetArray::U32(vec![0, 2, 5, 8]));
        assert_eq!(narrow.len(), 4);
        assert!(!narrow.is_empty());
        assert_eq!(narrow.get(2), 5);
        assert_eq!(narrow.pair(1), (2, 5));
        assert_eq!(narrow.last(), 9);
        assert_eq!(wide.last(), 9);
        assert!(!narrow.is_wide() && wide.is_wide());
        assert_eq!(narrow.byte_len(), 16);
        assert_eq!(wide.byte_len(), 32);
        assert_eq!(narrow.iter().collect::<Vec<_>>(), vec![0, 2, 5, 9]);
        assert_eq!(narrow.partition_point_le(5), 3);
    }

    #[test]
    fn forced_wide_offsets_build_identical_graphs() {
        // The u64 fallback (mocked via the test knob — really staging
        // 2^32 edges is not a unit test) must produce a graph logically
        // identical to the packed build, on both build paths.
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i % 40, 40 + (i * 7) % 60)).collect();
        let mut packed = GraphBuilder::new(100);
        let mut wide = GraphBuilder::new(100);
        wide.force_wide_offsets();
        for &(u, v) in &pairs {
            packed.add_edge(u, v).unwrap();
            wide.add_edge(u, v).unwrap();
        }
        let gp = packed.build();
        let gw = wide.build();
        assert!(!gp.csr_offsets().is_wide());
        assert!(gw.csr_offsets().is_wide() && gw.fwd_offsets.is_wide());
        assert_eq!(gp, gw, "logical equality across representations");
        assert_eq!(gp.csr_offsets(), gw.csr_offsets());
        assert_eq!(gw.num_edges(), gp.num_edges());
        assert_eq!(gw.memory_bytes(), gp.memory_bytes() + 2 * 101 * 4);
    }

    #[test]
    fn pooled_builder_recycles_staging_and_scratch() {
        use mmvc_substrate::ScratchPool;
        // Two identical chunked builds through one arena: the second
        // must be served almost entirely from retained buffers.
        let n = 40_000usize;
        let pool = ScratchPool::new();
        let exec = ExecutorConfig::sequential().with_scratch(&pool);
        let build = || {
            let mut b = GraphBuilder::with_capacity_in(n, 3 * (n - 1), &exec);
            for i in 0..n as u32 - 1 {
                b.add_edge(i, i + 1).unwrap();
                b.add_edge(i + 1, i).unwrap();
                b.add_edge(i, i + 1).unwrap();
            }
            b.build_with(&exec)
        };
        let g1 = build();
        let cold = pool.stats();
        assert!(cold.allocations > 0, "cold build allocates");
        pool.reset_stats();
        let g2 = build();
        let warm = pool.stats();
        assert_eq!(g1, g2);
        assert_eq!(warm.allocated_bytes, 0, "warm build reuses everything");
        assert!(warm.reuses >= cold.allocations);
    }

    #[test]
    fn build_with_executors_byte_identical() {
        // Force the chunked path with > 2^15 staged edges (duplicates
        // included) and compare the CSR arrays across executors and
        // against the single-threaded reference.
        let n = 5000usize;
        let mut pairs = Vec::new();
        let mut s = 0x1234_5678_9abc_def0u64;
        for _ in 0..40_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((s >> 33) % n as u64) as u32;
            let v = ((s >> 13) % n as u64) as u32;
            if u != v {
                pairs.push((u, v));
                // Duplicate every 5th edge to exercise dedup across chunks.
                if pairs.len() % 5 == 0 {
                    pairs.push((v, u));
                }
            }
        }
        assert!(pairs.len() >= PAR_BUILD_THRESHOLD, "need the chunked path");
        let build = |exec: &ExecutorConfig| {
            let mut b = GraphBuilder::with_capacity(n, pairs.len());
            for &(u, v) in &pairs {
                b.add_edge(u, v).unwrap();
            }
            b.build_with(exec)
        };
        let mut small = GraphBuilder::with_capacity(n, pairs.len());
        for &(u, v) in &pairs {
            small.add_edge(u, v).unwrap();
        }
        let reference = small.build_small();
        for exec in [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(4),
        ] {
            let g = build(&exec);
            assert_eq!(g.csr_offsets(), reference.csr_offsets(), "{exec:?}");
            assert_eq!(g.csr_adjacency(), reference.csr_adjacency(), "{exec:?}");
            assert_eq!(g, reference, "{exec:?}");
        }
    }

    #[test]
    fn induced_subgraph_mask_preserves_ids() {
        let g = petersen();
        let mut keep = vec![true; 10];
        keep[0] = false;
        let h = g.induced_subgraph_mask(&keep);
        assert_eq!(h.num_vertices(), 10);
        assert_eq!(h.degree(0), 0);
        assert_eq!(h.num_edges(), 15 - 3);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = petersen();
        let verts = vec![0u32, 1, 5];
        let (h, map) = g.induced_subgraph(&verts);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(map, verts);
        // Edges {0,1} and {0,5} survive as {0,1} and {0,2} locally.
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(0, 2));
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        petersen().induced_subgraph(&[1, 1]);
    }

    #[test]
    fn line_graph_of_path() {
        // Path 0-1-2-3 has line graph = path on 3 vertices.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let l = g.line_graph();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.num_edges(), 2);
    }

    #[test]
    fn line_graph_of_star() {
        // Star K_{1,4}: line graph is K_4.
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let l = g.line_graph();
        assert_eq!(l.num_vertices(), 4);
        assert_eq!(l.num_edges(), 6);
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, k) = g.connected_components();
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert_ne!(comp[5], comp[3]);
    }

    #[test]
    fn edge_words_counts() {
        let g = petersen();
        assert_eq!(g.edge_words(), 30);
    }

    #[test]
    fn complement_involution_and_counts() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = g.complement();
        assert_eq!(c.num_edges(), 10 - 3);
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert_eq!(c.complement(), g, "complement is an involution");
        // Extremes.
        assert_eq!(Graph::empty(4).complement().num_edges(), 6);
        let complete5 = Graph::empty(5).complement();
        assert_eq!(complete5.complement().num_edges(), 0);
    }
}
