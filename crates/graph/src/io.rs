//! Plain-text edge-list serialization.
//!
//! The interchange format real MPC deployments feed their frameworks:
//! one `u v` pair per line, `#`-prefixed comments, blank lines ignored.
//! An optional header comment `# vertices: n` pins the vertex count
//! (otherwise it is inferred as `max id + 1`).

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use std::io::{BufRead, BufReader, Read, Write};

/// Error from reading an edge list.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not a comment, blank, or a `u v` pair.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edges violated graph constraints (range, self-loops).
    Graph(GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            ReadError::Graph(e) => write!(f, "invalid edge list: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Graph(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<GraphError> for ReadError {
    fn from(e: GraphError) -> Self {
        ReadError::Graph(e)
    }
}

/// Reads a graph from edge-list text.
///
/// # Errors
///
/// [`ReadError`] on malformed lines, out-of-range vertices, or self-loops.
///
/// # Examples
///
/// ```
/// use mmvc_graph::io::read_edge_list;
/// let text = "# vertices: 5\n0 1\n1 2\n\n# a comment\n3 4\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 5);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), mmvc_graph::io::ReadError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, ReadError> {
    read_edge_list_capped(reader, None)
}

/// Like [`read_edge_list`], but refuses — *before any `n`-sized
/// allocation* — inputs whose vertex count (declared in the header or
/// implied by the largest endpoint) exceeds `max_n`. This is the
/// admission-cap entry point for servers: a 30-byte file declaring
/// `# vertices: 4000000000` must be rejected by arithmetic, not by an
/// out-of-memory abort while building the CSR arrays.
///
/// # Errors
///
/// [`ReadError`] on malformed lines, out-of-range vertices, self-loops,
/// or (as [`GraphError::InvalidParameter`]) a vertex count above the cap.
pub fn read_edge_list_capped<R: Read>(reader: R, max_n: Option<usize>) -> Result<Graph, ReadError> {
    let reader = BufReader::new(reader);
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any_vertex = false;

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(rest) = comment.trim().strip_prefix("vertices:") {
                if let Ok(n) = rest.trim().parse::<usize>() {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => match (a.parse::<u32>(), b.parse::<u32>()) {
                (Ok(u), Ok(v)) => (u, v),
                _ => {
                    return Err(ReadError::Parse {
                        line: idx + 1,
                        content: trimmed.to_string(),
                    })
                }
            },
            _ => {
                return Err(ReadError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        max_id = max_id.max(u).max(v);
        any_vertex = true;
        edges.push((u, v));
    }

    let n = declared_n.unwrap_or(if any_vertex { max_id as usize + 1 } else { 0 });
    if let Some(cap) = max_n {
        if n > cap {
            return Err(ReadError::Graph(GraphError::InvalidParameter {
                name: "n",
                message: format!(
                    "edge list declares {n} vertices, exceeding the admission cap max_n = {cap}"
                ),
            }));
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Writes a graph as edge-list text (with a `# vertices:` header so
/// isolated trailing vertices round-trip).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, io};
/// let g = generators::cycle(4);
/// let mut buf = Vec::new();
/// io::write_edge_list(&g, &mut buf)?;
/// let back = io::read_edge_list(buf.as_slice())?;
/// assert_eq!(g, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# vertices: {}", g.num_vertices())?;
    for e in g.edges() {
        writeln!(writer, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_assorted_graphs() {
        for g in [
            generators::gnp(50, 0.2, 1).unwrap(),
            generators::star(10),
            Graph::empty(7),
            Graph::empty(0),
        ] {
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let back = read_edge_list(buf.as_slice()).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# hello\n\n0 1\n  \n# vertices: 9\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn infers_vertex_count() {
        let g = read_edge_list("0 5\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("0 1\nxyz\n".as_bytes()).unwrap_err();
        match err {
            ReadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(
            read_edge_list("0 1 2\n".as_bytes()).is_err(),
            "three tokens"
        );
        assert!(read_edge_list("0\n".as_bytes()).is_err(), "one token");
    }

    #[test]
    fn rejects_self_loops_and_range() {
        assert!(matches!(
            read_edge_list("3 3\n".as_bytes()).unwrap_err(),
            ReadError::Graph(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            read_edge_list("# vertices: 2\n0 5\n".as_bytes()).unwrap_err(),
            ReadError::Graph(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn admission_cap_refuses_before_allocation() {
        // A tiny input declaring an enormous vertex count must be refused
        // by arithmetic — this call would OOM if the cap ran after the
        // CSR allocation.
        let text = "# vertices: 4000000000\n0 1\n";
        let err = read_edge_list_capped(text.as_bytes(), Some(1 << 17)).unwrap_err();
        assert!(err.to_string().contains("admission cap"), "{err}");
        // An implied (max id + 1) count trips the cap the same way.
        let err = read_edge_list_capped("0 3999999999\n".as_bytes(), Some(1 << 17)).unwrap_err();
        assert!(err.to_string().contains("admission cap"), "{err}");
        // Under the cap, identical to the uncapped reader.
        let ok = read_edge_list_capped("0 5\n".as_bytes(), Some(1 << 17)).unwrap();
        assert_eq!(ok.num_vertices(), 6);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
