//! Graph statistics used to characterize experiment workloads: degree
//! distributions and degeneracy (core) decompositions.

use crate::graph::{Graph, VertexId};

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree `Δ`.
    pub max: usize,
    /// Mean degree `2|E|/n`.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th percentile degree (heavy-tail indicator).
    pub p99: usize,
}

/// Computes [`DegreeStats`] for a graph.
///
/// Returns `None` for the empty (0-vertex) graph.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, stats::degree_stats};
/// let s = degree_stats(&generators::star(10)).unwrap();
/// assert_eq!(s.max, 9);
/// assert_eq!(s.min, 1);
/// ```
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let pct = |q: f64| -> usize {
        let idx = ((n as f64 - 1.0) * q).round() as usize;
        degrees[idx.min(n - 1)]
    };
    Some(DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: g.avg_degree(),
        median: pct(0.5),
        p99: pct(0.99),
    })
}

/// Histogram of degrees: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Core decomposition (Matula–Beck): returns `(core_number, order)` where
/// `core_number[v]` is the largest `k` such that `v` belongs to the
/// `k`-core, and `order` is the degeneracy ordering (repeatedly removing
/// a minimum-degree vertex).
///
/// The graph's *degeneracy* is `core_number.iter().max()`; it lower-bounds
/// how sparse residual graphs can get, which is what the MIS rank-prefix
/// analysis exploits.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, stats::core_decomposition};
/// let (cores, order) = core_decomposition(&generators::complete(5));
/// assert!(cores.iter().all(|&c| c == 4)); // K5 is 4-degenerate
/// assert_eq!(order.len(), 5);
/// ```
pub fn core_decomposition(g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    // Bucket queue over degrees.
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as u32 {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut current_core = 0u32;
    let mut cursor = 0usize; // lowest possibly-nonempty bucket

    for _ in 0..n {
        // Find the minimum-degree live vertex.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Buckets hold stale entries; pop until a live one matches.
        let v = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let candidate = buckets[cursor].pop().expect("nonempty bucket");
            if !removed[candidate as usize] && degree[candidate as usize] == cursor {
                break candidate;
            }
        };
        current_core = current_core.max(cursor as u32);
        core[v as usize] = current_core;
        removed[v as usize] = true;
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                let d = degree[u as usize];
                degree[u as usize] = d - 1;
                buckets[d - 1].push(u);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    (core, order)
}

/// The degeneracy of a graph (maximum core number; 0 for edgeless
/// graphs).
pub fn degeneracy(g: &Graph) -> u32 {
    core_decomposition(g).0.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_basic() {
        let s = degree_stats(&generators::cycle(10)).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.median, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(degree_stats(&Graph::empty(0)).is_none());
    }

    use crate::graph::Graph;

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::gnp(100, 0.1, 1).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 100);
    }

    #[test]
    fn power_law_p99_exceeds_median() {
        let g = generators::power_law(500, 2.2, 8.0, 2).unwrap();
        let s = degree_stats(&g).unwrap();
        assert!(s.p99 > s.median, "heavy tail expected: {s:?}");
    }

    #[test]
    fn degeneracy_known_values() {
        assert_eq!(degeneracy(&generators::complete(6)), 5);
        assert_eq!(degeneracy(&generators::cycle(9)), 2);
        assert_eq!(degeneracy(&generators::path(9)), 1);
        assert_eq!(degeneracy(&generators::star(9)), 1);
        assert_eq!(degeneracy(&generators::grid(4, 4)), 2);
        assert_eq!(degeneracy(&Graph::empty(4)), 0);
    }

    #[test]
    fn core_numbers_monotone_under_ordering() {
        // Every vertex, at removal time, has at most `core[v]` live
        // neighbors — re-verify from the ordering.
        let g = generators::gnp(80, 0.15, 3).unwrap();
        let (core, order) = core_decomposition(&g);
        let mut removed = [false; 80];
        for &v in &order {
            let live = g
                .neighbors(v)
                .iter()
                .filter(|&&u| !removed[u as usize])
                .count();
            assert!(live <= core[v as usize] as usize);
            removed[v as usize] = true;
        }
        assert_eq!(order.len(), 80);
    }

    #[test]
    fn degeneracy_bounds_max_core() {
        let g = generators::gnp(60, 0.2, 4).unwrap();
        let (core, _) = core_decomposition(&g);
        let d = degeneracy(&g);
        assert_eq!(d, core.iter().copied().max().unwrap());
        // Degeneracy <= max degree.
        assert!(d as usize <= g.max_degree());
    }
}
