//! Edmonds' blossom algorithm: exact maximum matching on general graphs.
//!
//! This `O(V³)` implementation (BFS forest + blossom contraction via base
//! pointers) provides the ground-truth optimum `|M*|` against which the
//! paper's `(2+ε)`- and `(1+ε)`-approximation claims are measured. It is
//! exercised on graphs up to a few thousand vertices by the experiment
//! harness and cross-checked against exhaustive search in tests.

use super::Matching;
use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

const NIL: u32 = u32::MAX;

struct Solver<'g> {
    g: &'g Graph,
    mate: Vec<u32>,
    /// BFS parent in the alternating forest (on "outer" vertices' edges).
    parent: Vec<u32>,
    /// Base vertex of the blossom currently containing each vertex.
    base: Vec<u32>,
    /// Whether a vertex is in the BFS queue/forest as an outer vertex.
    used: Vec<bool>,
    blossom: Vec<bool>,
    queue: VecDeque<VertexId>,
}

impl<'g> Solver<'g> {
    fn new(g: &'g Graph) -> Self {
        let n = g.num_vertices();
        Solver {
            g,
            mate: vec![NIL; n],
            parent: vec![NIL; n],
            base: (0..n as u32).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
            queue: VecDeque::new(),
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating forest,
    /// measured over blossom bases.
    fn lca(&self, a: VertexId, b: VertexId) -> VertexId {
        let n = self.g.num_vertices();
        let mut on_path = vec![false; n];
        let mut x = a;
        loop {
            x = self.base[x as usize];
            on_path[x as usize] = true;
            if self.mate[x as usize] == NIL {
                break;
            }
            x = self.parent[self.mate[x as usize] as usize];
        }
        let mut y = b;
        loop {
            y = self.base[y as usize];
            if on_path[y as usize] {
                return y;
            }
            y = self.parent[self.mate[y as usize] as usize];
        }
    }

    /// Marks blossom vertices on the path from `v` down to base `b`,
    /// re-rooting parent pointers through `child`.
    fn mark_path(&mut self, mut v: VertexId, b: VertexId, mut child: VertexId) {
        while self.base[v as usize] != b {
            let mv = self.mate[v as usize];
            self.blossom[self.base[v as usize] as usize] = true;
            self.blossom[self.base[mv as usize] as usize] = true;
            self.parent[v as usize] = child;
            child = mv;
            v = self.parent[mv as usize];
        }
    }

    fn contract(&mut self, v: VertexId, w: VertexId) {
        let cur_base = self.lca(v, w);
        self.blossom.fill(false);
        self.mark_path(v, cur_base, w);
        self.mark_path(w, cur_base, v);
        for i in 0..self.g.num_vertices() {
            if self.blossom[self.base[i] as usize] {
                self.base[i] = cur_base;
                if !self.used[i] {
                    self.used[i] = true;
                    self.queue.push_back(i as VertexId);
                }
            }
        }
    }

    /// BFS from `root` for an augmenting path; returns its free endpoint.
    fn find_path(&mut self, root: VertexId) -> Option<VertexId> {
        let n = self.g.num_vertices();
        self.used.fill(false);
        self.parent.fill(NIL);
        for i in 0..n {
            self.base[i] = i as u32;
        }
        self.used[root as usize] = true;
        self.queue.clear();
        self.queue.push_back(root);

        while let Some(v) = self.queue.pop_front() {
            for i in 0..self.g.degree(v) {
                let w = self.g.neighbors(v)[i];
                if self.base[v as usize] == self.base[w as usize] || self.mate[v as usize] == w {
                    continue;
                }
                if w == root
                    || (self.mate[w as usize] != NIL
                        && self.parent[self.mate[w as usize] as usize] != NIL)
                {
                    // Odd cycle: contract the blossom.
                    self.contract(v, w);
                } else if self.parent[w as usize] == NIL {
                    self.parent[w as usize] = v;
                    if self.mate[w as usize] == NIL {
                        return Some(w);
                    }
                    let mw = self.mate[w as usize];
                    self.used[mw as usize] = true;
                    self.queue.push_back(mw);
                }
            }
        }
        None
    }

    /// Flips matched/unmatched edges along the augmenting path ending at
    /// free vertex `u`.
    fn augment(&mut self, mut u: VertexId) {
        while u != NIL {
            let pv = self.parent[u as usize];
            let next = self.mate[pv as usize];
            self.mate[u as usize] = pv;
            self.mate[pv as usize] = u;
            u = next;
        }
    }

    fn solve(mut self) -> Vec<u32> {
        let n = self.g.num_vertices();
        // Greedy warm start halves the number of augmentation phases.
        for v in 0..n as u32 {
            if self.mate[v as usize] == NIL {
                for &w in self.g.neighbors(v) {
                    if self.mate[w as usize] == NIL {
                        self.mate[v as usize] = w;
                        self.mate[w as usize] = v;
                        break;
                    }
                }
            }
        }
        for v in 0..n as u32 {
            if self.mate[v as usize] == NIL {
                if let Some(end) = self.find_path(v) {
                    self.augment(end);
                }
            }
        }
        self.mate
    }
}

/// Exact maximum matching on a general graph (Edmonds' blossom algorithm).
///
/// Runs in `O(V³)`; intended for verification and ground truth rather than
/// for massive inputs.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, matching::blossom};
/// // An odd cycle C_5 has maximum matching 2.
/// assert_eq!(blossom(&generators::cycle(5)).len(), 2);
/// ```
pub fn maximum_matching(g: &Graph) -> Matching {
    let mate = Solver::new(g).solve();
    Matching::from_mate_array(&mate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matching::brute_force_maximum_matching_size;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn odd_cycles() {
        for k in [3usize, 5, 7, 9, 11] {
            assert_eq!(
                maximum_matching(&generators::cycle(k)).len(),
                k / 2,
                "C_{k}"
            );
        }
    }

    #[test]
    fn complete_graphs() {
        for n in 2..9usize {
            assert_eq!(
                maximum_matching(&generators::complete(n)).len(),
                n / 2,
                "K_{n}"
            );
        }
    }

    #[test]
    fn petersen_has_perfect_matching() {
        let mut b = crate::graph::GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5).unwrap();
            b.add_edge(5 + i, 5 + (i + 2) % 5).unwrap();
            b.add_edge(i, 5 + i).unwrap();
        }
        let g = b.build();
        assert_eq!(maximum_matching(&g).len(), 5);
    }

    #[test]
    fn two_triangles_joined_by_edge() {
        // Classic blossom stress: two triangles connected by a bridge.
        let g = crate::graph::Graph::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)],
        )
        .unwrap();
        assert_eq!(maximum_matching(&g).len(), 3);
    }

    #[test]
    fn flower_graph() {
        // A vertex attached to several triangles ("flower"); blossoms nest.
        // Center 0; petals (1,2), (3,4), (5,6) with triangle edges.
        let g = crate::graph::Graph::from_edges(
            7,
            vec![
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (0, 4),
                (3, 4),
                (0, 5),
                (0, 6),
                (5, 6),
            ],
        )
        .unwrap();
        assert_eq!(maximum_matching(&g).len(), 3);
        assert_eq!(brute_force_maximum_matching_size(&g), 3);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(12345);
        for trial in 0..80u64 {
            let n = rng.gen_range(2..11usize);
            let p = rng.gen_range(0.1..0.9);
            let g = generators::gnp(n, p, trial).unwrap();
            let got = maximum_matching(&g).len();
            let want = brute_force_maximum_matching_size(&g);
            assert_eq!(got, want, "trial {trial}: n={n} p={p:.2}");
        }
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_bipartite() {
        for seed in 0..10u64 {
            let g = generators::bipartite_gnp(25, 25, 0.15, seed).unwrap();
            let hk = crate::matching::hopcroft_karp(&g).unwrap().len();
            assert_eq!(maximum_matching(&g).len(), hk, "seed {seed}");
        }
    }

    #[test]
    fn output_is_valid_matching() {
        let g = generators::gnp(120, 0.08, 9).unwrap();
        let m = maximum_matching(&g);
        for e in m.edges() {
            assert!(g.has_edge(e.u(), e.v()));
        }
        assert!(m.is_maximal(&g), "a maximum matching is maximal");
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(maximum_matching(&crate::graph::Graph::empty(0)).len(), 0);
        assert_eq!(maximum_matching(&crate::graph::Graph::empty(5)).len(), 0);
        assert_eq!(maximum_matching(&generators::disjoint_edges(4)).len(), 4);
    }
}
