//! Matchings: representation, validation, greedy baseline, and exact
//! maximum-matching solvers used as ground truth by the experiment harness.
//!
//! * [`Matching`] — a validated set of vertex-disjoint edges.
//! * [`greedy_maximal_matching`] — the classical sequential 2-approximation
//!   (and the source of a 2-approximate vertex cover), used as a baseline.
//! * [`hopcroft_karp`] — exact maximum matching on bipartite graphs in
//!   `O(E √V)`.
//! * [`blossom`] — exact maximum matching on general graphs in `O(V³)`
//!   (Edmonds' algorithm); the paper proves ratios against this optimum.

mod blossom;
mod hopcroft_karp;

pub use blossom::maximum_matching as blossom;
pub use hopcroft_karp::{bipartition, hopcroft_karp, NotBipartiteError};

use crate::graph::{Edge, Graph, VertexId};

/// A matching: a set of pairwise vertex-disjoint edges of a graph.
///
/// The invariant (edges belong to the graph and are vertex-disjoint) is
/// enforced at construction.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{Graph, matching::Matching};
///
/// let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)])?;
/// let m = Matching::new(&g, vec![(0, 1), (2, 3)]).unwrap();
/// assert_eq!(m.len(), 2);
/// assert!(m.is_maximal(&g));
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    edges: Vec<Edge>,
    /// `mate[v] == Some(u)` iff `{u, v}` is in the matching.
    mate: Vec<Option<VertexId>>,
}

impl Matching {
    /// Creates an empty matching for a graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Matching {
            edges: Vec::new(),
            mate: vec![None; n],
        }
    }

    /// Builds a matching from edge endpoint pairs, validating that every
    /// pair is an edge of `g` and that edges are vertex-disjoint.
    ///
    /// Returns `None` if validation fails.
    pub fn new<I>(g: &Graph, pairs: I) -> Option<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut m = Matching::empty(g.num_vertices());
        for (u, v) in pairs {
            if !g.has_edge(u, v) {
                return None;
            }
            if !m.try_add(u, v) {
                return None;
            }
        }
        Some(m)
    }

    /// Builds a matching from a mate array (`mate[v] = matched partner or
    /// `u32::MAX`), trusting the caller. Used internally by solvers.
    pub(crate) fn from_mate_array(mate_raw: &[u32]) -> Self {
        let n = mate_raw.len();
        let mut m = Matching::empty(n);
        for v in 0..n as u32 {
            let u = mate_raw[v as usize];
            if u != u32::MAX && v < u {
                let added = m.try_add(v, u);
                debug_assert!(added, "solver produced an invalid mate array");
            }
        }
        m
    }

    /// Adds edge `{u, v}` if both endpoints are currently free.
    /// Returns whether the edge was added.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn try_add(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(u != v, "self-loop cannot be matched");
        assert!((u as usize) < self.mate.len() && (v as usize) < self.mate.len());
        if self.mate[u as usize].is_some() || self.mate[v as usize].is_some() {
            return false;
        }
        self.mate[u as usize] = Some(v);
        self.mate[v as usize] = Some(u);
        self.edges.push(Edge::new(u, v));
        true
    }

    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edge is matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The matched edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The partner of `v`, if matched.
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        self.mate[v as usize]
    }

    /// Whether `v` is covered by the matching.
    pub fn covers(&self, v: VertexId) -> bool {
        self.mate[v as usize].is_some()
    }

    /// Checks maximality w.r.t. `g`: no edge of `g` has both endpoints free.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        g.edges()
            .iter()
            .all(|e| self.covers(e.u()) || self.covers(e.v()))
    }

    /// The set of matched vertices — the classical 2-approximate vertex
    /// cover when the matching is maximal.
    pub fn matched_vertices(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = Vec::with_capacity(2 * self.edges.len());
        for e in &self.edges {
            vs.push(e.u());
            vs.push(e.v());
        }
        vs.sort_unstable();
        vs
    }

    /// Flips the matching along an augmenting path, increasing its size by
    /// one.
    ///
    /// `path` lists the vertices `v₀, v₁, …, v_{2k+1}` of an augmenting
    /// path: `v₀` and `v_{2k+1}` are free, edges `{v₀,v₁}, {v₂,v₃}, …` are
    /// unmatched and `{v₁,v₂}, {v₃,v₄}, …` are matched. After the call the
    /// statuses are exchanged.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `path` is not a valid alternating
    /// augmenting path of this matching; panics (always) if `path` has odd
    /// length or fewer than 2 vertices.
    pub fn augment_along(&mut self, path: &[VertexId]) {
        assert!(
            path.len() >= 2 && path.len().is_multiple_of(2),
            "augmenting paths have even order"
        );
        debug_assert!(!self.covers(path[0]), "path start must be free");
        debug_assert!(!self.covers(path[path.len() - 1]), "path end must be free");
        debug_assert!(
            path[1..path.len() - 1]
                .chunks(2)
                .all(|c| c.len() == 2 && self.mate[c[0] as usize] == Some(c[1])),
            "interior path edges must alternate matched/unmatched"
        );
        // Detach every matched edge internal to the path. For a valid
        // augmenting path, all partners lie on the path itself.
        for &v in path {
            if let Some(m) = self.mate[v as usize] {
                self.mate[m as usize] = None;
                self.mate[v as usize] = None;
            }
        }
        // Re-pair along the new alternation.
        for chunk in path.chunks(2) {
            let (a, b) = (chunk[0], chunk[1]);
            self.mate[a as usize] = Some(b);
            self.mate[b as usize] = Some(a);
        }
        // Rebuild the edge list from the mate array.
        self.edges.clear();
        for v in 0..self.mate.len() as u32 {
            if let Some(u) = self.mate[v as usize] {
                if v < u {
                    self.edges.push(Edge::new(v, u));
                }
            }
        }
    }

    /// Merges another vertex-disjoint matching into this one.
    ///
    /// Edges of `other` whose endpoints are already covered are skipped;
    /// returns how many edges were added.
    pub fn absorb(&mut self, other: &Matching) -> usize {
        let mut added = 0;
        for e in other.edges() {
            if self.try_add(e.u(), e.v()) {
                added += 1;
            }
        }
        added
    }
}

/// Greedy maximal matching: scan edges in the given order, keep every edge
/// whose endpoints are both free.
///
/// Any maximal matching is a 1/2-approximation of the maximum matching, and
/// its endpoints form a 2-approximate vertex cover — the classical
/// guarantees the paper's introduction cites.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, matching::greedy_maximal_matching};
/// let g = generators::cycle(5);
/// let m = greedy_maximal_matching(&g);
/// assert_eq!(m.len(), 2);
/// assert!(m.is_maximal(&g));
/// ```
pub fn greedy_maximal_matching(g: &Graph) -> Matching {
    let mut m = Matching::empty(g.num_vertices());
    for e in g.edges() {
        m.try_add(e.u(), e.v());
    }
    m
}

/// Greedy maximal matching scanning edges in a caller-provided order
/// (e.g. a random permutation, or descending weight).
///
/// # Panics
///
/// Panics if `order` indexes outside `g.edges()`.
pub fn greedy_maximal_matching_ordered(g: &Graph, order: &[usize]) -> Matching {
    // Materialize once: `order` indexes edges arbitrarily, and a flat
    // lookup beats a per-probe binary search over the CSR view.
    let edges = g.edges().to_vec();
    let mut m = Matching::empty(g.num_vertices());
    for &i in order {
        let e = edges[i];
        m.try_add(e.u(), e.v());
    }
    m
}

/// Exhaustive maximum matching by branching over edges — exponential time,
/// only for cross-checking the exact solvers on tiny graphs in tests.
pub fn brute_force_maximum_matching_size(g: &Graph) -> usize {
    fn rec(edges: &[Edge], used: &mut [bool]) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let e = edges[0];
        let rest = &edges[1..];
        // Skip e.
        let mut best = rec(rest, used);
        // Take e if possible.
        if !used[e.u() as usize] && !used[e.v() as usize] {
            used[e.u() as usize] = true;
            used[e.v() as usize] = true;
            best = best.max(1 + rec(rest, used));
            used[e.u() as usize] = false;
            used[e.v() as usize] = false;
        }
        best
    }
    let mut used = vec![false; g.num_vertices()];
    rec(&g.edges().to_vec(), &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(!m.covers(0));
        assert_eq!(m.mate(3), None);
    }

    #[test]
    fn new_validates_edges_exist() {
        let g = generators::path(4);
        assert!(
            Matching::new(&g, vec![(0, 2)]).is_none(),
            "non-edge rejected"
        );
        assert!(
            Matching::new(&g, vec![(0, 1), (1, 2)]).is_none(),
            "overlap rejected"
        );
        let m = Matching::new(&g, vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(3), Some(2));
    }

    #[test]
    fn try_add_respects_disjointness() {
        let mut m = Matching::empty(4);
        assert!(m.try_add(0, 1));
        assert!(!m.try_add(1, 2));
        assert!(m.try_add(2, 3));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn greedy_is_maximal_on_many_graphs() {
        for g in [
            generators::cycle(9),
            generators::complete(7),
            generators::star(10),
            generators::gnp(60, 0.1, 3).unwrap(),
            generators::grid(5, 7),
        ] {
            let m = greedy_maximal_matching(&g);
            assert!(m.is_maximal(&g));
        }
    }

    #[test]
    fn greedy_on_star_is_one_edge() {
        let m = greedy_maximal_matching(&generators::star(8));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn matched_vertices_sorted_unique() {
        let g = generators::path(6);
        let m = Matching::new(&g, vec![(4, 5), (0, 1)]).unwrap();
        assert_eq!(m.matched_vertices(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn absorb_skips_conflicts() {
        let g = generators::path(6);
        let mut a = Matching::new(&g, vec![(1, 2)]).unwrap();
        let b = Matching::new(&g, vec![(0, 1), (3, 4)]).unwrap();
        let added = a.absorb(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
        assert!(a.covers(3) && a.covers(4));
        assert!(!a.covers(0));
    }

    #[test]
    fn ordered_greedy_respects_order() {
        let g = generators::path(3); // edges {0,1}, {1,2}
        let m = greedy_maximal_matching_ordered(&g, &[1, 0]);
        assert_eq!(m.len(), 1);
        assert!(m.covers(2), "edge {{1,2}} taken first");
    }

    #[test]
    fn brute_force_small_cases() {
        assert_eq!(brute_force_maximum_matching_size(&generators::path(4)), 2);
        assert_eq!(brute_force_maximum_matching_size(&generators::cycle(5)), 2);
        assert_eq!(
            brute_force_maximum_matching_size(&generators::complete(4)),
            2
        );
        assert_eq!(brute_force_maximum_matching_size(&generators::star(5)), 1);
        assert_eq!(
            brute_force_maximum_matching_size(&generators::disjoint_edges(3)),
            3
        );
    }

    #[test]
    fn from_mate_array_roundtrip() {
        let mate = vec![1u32, 0, u32::MAX, 4, 3];
        let m = Matching::from_mate_array(&mate);
        assert_eq!(m.len(), 2);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), None);
        assert_eq!(m.mate(4), Some(3));
    }
}
