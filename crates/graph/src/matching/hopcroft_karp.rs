//! Hopcroft–Karp exact maximum matching for bipartite graphs, `O(E √V)`.
//!
//! Used as ground truth for approximation-ratio measurements on bipartite
//! workloads (the ad-allocation experiments), where it is much faster than
//! the general-graph blossom solver.

use super::Matching;
use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned by [`hopcroft_karp`] when the input graph is not
/// bipartite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotBipartiteError {
    /// A vertex on an odd cycle witnessing non-bipartiteness.
    pub witness: VertexId,
}

impl fmt::Display for NotBipartiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph is not bipartite (odd cycle through vertex {})",
            self.witness
        )
    }
}

impl Error for NotBipartiteError {}

/// Computes a 2-coloring of `g` (`true` = left side), or the witness
/// vertex of an odd cycle.
///
/// # Errors
///
/// Returns [`NotBipartiteError`] if `g` contains an odd cycle.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, matching::bipartition};
/// let sides = bipartition(&generators::cycle(6))?;
/// assert_ne!(sides[0], sides[1]);
/// assert!(bipartition(&generators::cycle(5)).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bipartition(g: &Graph) -> Result<Vec<bool>, NotBipartiteError> {
    let n = g.num_vertices();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if color[w as usize] == u8::MAX {
                    color[w as usize] = 1 - color[v as usize];
                    queue.push_back(w);
                } else if color[w as usize] == color[v as usize] {
                    return Err(NotBipartiteError { witness: w });
                }
            }
        }
    }
    Ok(color.into_iter().map(|c| c == 0).collect())
}

/// Exact maximum matching on a bipartite graph via Hopcroft–Karp.
///
/// The bipartition is computed internally by 2-coloring.
///
/// # Errors
///
/// Returns [`NotBipartiteError`] if `g` contains an odd cycle.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, matching::hopcroft_karp};
/// let g = generators::complete_bipartite(3, 5);
/// let m = hopcroft_karp(&g)?;
/// assert_eq!(m.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hopcroft_karp(g: &Graph) -> Result<Matching, NotBipartiteError> {
    let n = g.num_vertices();
    let left_side = bipartition(g)?;
    let left: Vec<VertexId> = (0..n as u32)
        .filter(|&v| left_side[v as usize] && g.degree(v) > 0)
        .collect();

    const NIL: u32 = u32::MAX;
    let mut mate = vec![NIL; n]; // for both sides
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();

    // BFS from free left vertices; layers alternate unmatched/matched edges.
    let bfs = |mate: &[u32], dist: &mut [u32], queue: &mut VecDeque<VertexId>| -> bool {
        dist.fill(u32::MAX);
        queue.clear();
        for &u in &left {
            if mate[u as usize] == NIL {
                dist[u as usize] = 0;
                queue.push_back(u);
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let w = mate[v as usize];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        found_augmenting
    };

    // DFS along the layered structure, augmenting vertex-disjoint paths.
    fn dfs(g: &Graph, u: VertexId, mate: &mut [u32], dist: &mut [u32]) -> bool {
        for i in 0..g.degree(u) {
            let v = g.neighbors(u)[i];
            let w = mate[v as usize];
            let ok = if w == u32::MAX {
                true
            } else if dist[w as usize] == dist[u as usize] + 1 {
                dfs(g, w, mate, dist)
            } else {
                false
            };
            if ok {
                mate[v as usize] = u;
                mate[u as usize] = v;
                return true;
            }
        }
        dist[u as usize] = u32::MAX; // dead end; prune
        false
    }

    while bfs(&mate, &mut dist, &mut queue) {
        for &u in &left {
            if mate[u as usize] == NIL {
                dfs(g, u, &mut mate, &mut dist);
            }
        }
    }

    Ok(Matching::from_mate_array(&mate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matching::brute_force_maximum_matching_size;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn complete_bipartite_sizes() {
        for (a, b, want) in [(3usize, 5usize, 3usize), (4, 4, 4), (1, 9, 1), (0, 5, 0)] {
            let g = generators::complete_bipartite(a, b);
            assert_eq!(hopcroft_karp(&g).unwrap().len(), want, "K_{{{a},{b}}}");
        }
    }

    #[test]
    fn path_and_even_cycle() {
        assert_eq!(hopcroft_karp(&generators::path(7)).unwrap().len(), 3);
        assert_eq!(hopcroft_karp(&generators::cycle(8)).unwrap().len(), 4);
    }

    #[test]
    fn odd_cycle_rejected() {
        let err = hopcroft_karp(&generators::cycle(5)).unwrap_err();
        assert!(err.to_string().contains("not bipartite"));
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(hopcroft_karp(&Graph::empty(0)).unwrap().len(), 0);
        assert_eq!(hopcroft_karp(&Graph::empty(10)).unwrap().len(), 0);
    }

    #[test]
    fn matches_brute_force_on_random_bipartite() {
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..60 {
            let a = rng.gen_range(1..6usize);
            let b = rng.gen_range(1..6usize);
            let p = rng.gen_range(0.1..0.9);
            let g = generators::bipartite_gnp(a, b, p, trial).unwrap();
            let hk = hopcroft_karp(&g).unwrap().len();
            let bf = brute_force_maximum_matching_size(&g);
            assert_eq!(hk, bf, "trial {trial}: a={a} b={b} p={p}");
        }
    }

    #[test]
    fn result_is_valid_matching() {
        let g = generators::bipartite_gnp(30, 30, 0.2, 5).unwrap();
        let m = hopcroft_karp(&g).unwrap();
        for e in m.edges() {
            assert!(g.has_edge(e.u(), e.v()));
        }
        // Kőnig check: a maximum bipartite matching leaves no augmenting
        // path; in particular it is maximal.
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn disconnected_bipartite_components() {
        let g = generators::disjoint_union(&generators::path(4), 3);
        assert_eq!(hopcroft_karp(&g).unwrap().len(), 6);
    }
}
