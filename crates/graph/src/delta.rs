//! Batched graph deltas and the CSR delta-merge rebuild.
//!
//! A [`GraphDelta`] stages edge insertions and deletions against an
//! existing [`Graph`]; [`Graph::apply_delta`] produces the mutated graph
//! by *merging* the existing per-vertex-sorted adjacency runs with the
//! (tiny) sorted delta instead of re-running the generator and the full
//! counting-sort build. The contract is exact:
//!
//! * **Equivalence.** The result is byte-identical to a from-scratch
//!   [`GraphBuilder`] build of the mutated edge list
//!   `(E ∪ inserts) ∖ deletes` — same `u32`-packed offset arrays, same
//!   adjacency bytes — across `Sequential` and `Threaded{k}` executors.
//!   Inserting an edge that already exists and deleting one that does
//!   not are no-ops (the mutated edge *set* is what is built), and the
//!   last staged op per edge wins, so `delete; insert` re-inserts.
//! * **Work.** Merge work is proportional to the delta plus one linear
//!   copy of the untouched adjacency runs; vertex ranges the delta never
//!   touches are bulk-copied (`memcpy`, no per-edge work). With a warm
//!   [`ScratchPool`](mmvc_substrate::ScratchPool) on the executor, every
//!   working buffer *and* the output arrays come from the arena, so a
//!   small-churn rebuild allocates ~zero fresh bytes — pair with
//!   [`Graph::recycle`] on the predecessor graph to keep the arena
//!   stocked across a session's update loop.
//! * **Determinism.** Range boundaries are the builder's own fixed
//!   [`BUILD_VERTEX_CHUNK`] — never a function of the thread count — and
//!   each range's output depends only on its input slice, so executor
//!   choice washes out of the bytes entirely.
//!
//! Wide graphs (u64 offsets) and merges that would overflow the
//! `u32`-packed representation take a from-scratch rebuild of the
//! mutated edge list through the ordinary builder: the equivalence
//! contract holds trivially there, at from-scratch cost.
//!
//! # Examples
//!
//! ```
//! use mmvc_graph::{generators, GraphDelta};
//!
//! let g = generators::gnp(64, 0.1, 7)?;
//! let mut delta = GraphDelta::new();
//! delta.insert_edge(0, 1)?;
//! delta.delete_edge(2, 3)?; // a no-op unless {2,3} is present
//! let g2 = g.apply_delta(&delta)?;
//! assert!(g2.has_edge(0, 1));
//! assert!(!g2.has_edge(2, 3));
//! # Ok::<(), mmvc_graph::GraphError>(())
//! ```

use crate::error::GraphError;
use crate::graph::BUILD_VERTEX_CHUNK;
use crate::graph::{pack_edge, Edge, Graph, GraphBuilder, OffsetArray, VertexId};
use mmvc_substrate::ExecutorConfig;

/// One staged mutation: the op kind for a packed canonical edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaOp {
    Insert,
    Delete,
}

/// A batch of edge insertions and deletions against a [`Graph`].
///
/// Ops are staged in arrival order; per edge, the **last staged op
/// wins** (so `delete_edge(u, v)` followed by `insert_edge(u, v)` nets
/// out to an insert). Self-loops are rejected at staging time; endpoint
/// range is validated against the graph at apply time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// `(packed canonical edge, op)` in arrival order.
    ops: Vec<(u64, DeltaOp)>,
}

impl GraphDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Stages an edge insertion. Order of endpoints is irrelevant.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] when `a == b`.
    pub fn insert_edge(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        self.stage(a, b, DeltaOp::Insert)
    }

    /// Stages an edge deletion. Order of endpoints is irrelevant.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] when `a == b`.
    pub fn delete_edge(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        self.stage(a, b, DeltaOp::Delete)
    }

    fn stage(&mut self, a: VertexId, b: VertexId, op: DeltaOp) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a });
        }
        self.ops.push((pack_edge(Edge::new(a, b)), op));
        Ok(())
    }

    /// Number of staged ops (before last-op-wins normalization).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The normalized delta against a graph on `n` vertices: disjoint,
    /// canonically sorted insert and delete edge sets, one op per edge
    /// (the last staged one).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when an endpoint is `>= n`.
    pub fn normalized(&self, n: usize) -> Result<(Vec<Edge>, Vec<Edge>), GraphError> {
        let (ins, del) = self.normalized_packed(n)?;
        let unpack = |p: u64| Edge::new((p >> 32) as VertexId, p as VertexId);
        Ok((
            ins.into_iter().map(unpack).collect(),
            del.into_iter().map(unpack).collect(),
        ))
    }

    /// The packed form of [`normalized`](Self::normalized): sorted,
    /// deduplicated, disjoint `(u << 32) | v` words.
    pub(crate) fn normalized_packed(&self, n: usize) -> Result<(Vec<u64>, Vec<u64>), GraphError> {
        let mut staged = self.ops.clone();
        // Stable by packed edge: arrival order survives within a group,
        // so the last element of each group is the winning op.
        staged.sort_by_key(|&(p, _)| p);
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        let mut i = 0;
        while i < staged.len() {
            let (p, _) = staged[i];
            let mut last = staged[i].1;
            while i + 1 < staged.len() && staged[i + 1].0 == p {
                i += 1;
                last = staged[i].1;
            }
            i += 1;
            // The larger endpoint is the packed word's low half.
            let v = p as u32;
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            match last {
                DeltaOp::Insert => inserts.push(p),
                DeltaOp::Delete => deletes.push(p),
            }
        }
        Ok((inserts, deletes))
    }
}

/// Per-range output of the delta merge, in the builder's pass-2 shape:
/// concatenated sorted neighbor runs, per-vertex degrees, per-vertex
/// forward-neighbor counts.
type RangePart = (Vec<u32>, Vec<u32>, Vec<u32>);

impl Graph {
    /// Applies a delta on a default executor. See
    /// [`apply_delta_with`](Self::apply_delta_with).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when the delta names a vertex
    /// `>= num_vertices()`.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, GraphError> {
        self.apply_delta_with(delta, &ExecutorConfig::default())
    }

    /// Rebuilds the CSR by merging this graph's per-vertex-sorted
    /// adjacency runs with the delta, producing the graph of the mutated
    /// edge list `(E ∪ inserts) ∖ deletes`.
    ///
    /// The result is byte-identical to a from-scratch build of the
    /// mutated edge list, for every executor (see the module docs for
    /// the full contract). Buffers — including the output arrays — are
    /// drawn from the executor's [`ScratchPool`](mmvc_substrate::ScratchPool)
    /// when one is attached.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when the delta names a vertex
    /// `>= num_vertices()`.
    pub fn apply_delta_with(
        &self,
        delta: &GraphDelta,
        exec: &ExecutorConfig,
    ) -> Result<Graph, GraphError> {
        let n = self.n;
        let (ins, del) = delta.normalized_packed(n)?;
        let unpack = |p: u64| ((p >> 32) as VertexId, p as VertexId);
        // Exact post-merge size: staged inserts already present and
        // deletes of absent edges are no-ops.
        let real_ins = ins
            .iter()
            .filter(|&&p| {
                let (u, v) = unpack(p);
                !self.has_edge(u, v)
            })
            .count();
        let real_del = del
            .iter()
            .filter(|&&p| {
                let (u, v) = unpack(p);
                self.has_edge(u, v)
            })
            .count();
        let new_directed = self.adj.len() + 2 * real_ins - 2 * real_del;
        if self.offsets.is_wide() || new_directed > u32::MAX as usize {
            // Wide representation (or a merge that would overflow the
            // packed one): rebuild from scratch so the builder makes the
            // same width decision it would make cold.
            return Ok(self.rebuild_with_delta(&ins, &del, exec));
        }

        // Directed forms of the delta, sorted by (owner, neighbor): the
        // per-vertex op slices the merge consumes are contiguous runs.
        let directed = |src: &[u64]| {
            if src.is_empty() {
                // Never draw a zero-capacity buffer from the arena.
                return Vec::new();
            }
            let mut d = exec.take_u64(2 * src.len());
            for &p in src {
                let (u, v) = (p >> 32, p & 0xFFFF_FFFF);
                d.push(p);
                d.push((v << 32) | u);
            }
            d.sort_unstable();
            d
        };
        let dins = directed(&ins);
        let ddel = directed(&del);

        // One merge task per fixed vertex range — the builder's own
        // granularity, so range boundaries (and therefore bytes) match a
        // from-scratch build under every executor.
        let ranges = n.div_ceil(BUILD_VERTEX_CHUNK).max(1);
        let parts: Vec<RangePart> = {
            let dins = &dins;
            let ddel = &ddel;
            exec.run(ranges, |r| {
                let base = r * BUILD_VERTEX_CHUNK;
                let size = BUILD_VERTEX_CHUNK.min(n - base);
                let owner = |p: &u64| (*p >> 32) as usize;
                let ilo = dins.partition_point(|p| owner(p) < base);
                let ihi = dins.partition_point(|p| owner(p) < base + size);
                let dlo = ddel.partition_point(|p| owner(p) < base);
                let dhi = ddel.partition_point(|p| owner(p) < base + size);

                let mut deg = exec.take_u32(size);
                deg.resize(size, 0);
                let mut fwd = exec.take_u32(size);
                fwd.resize(size, 0);

                let (range_start, range_end) =
                    (self.offsets.get(base), self.offsets.get(base + size));
                if ilo == ihi && dlo == dhi {
                    // Untouched range: bulk-copy the adjacency run and
                    // read degrees off the existing prefix sums.
                    let mut buf = exec.take_u32(range_end - range_start);
                    buf.extend_from_slice(&self.adj[range_start..range_end]);
                    for lv in 0..size {
                        let (s, e) = self.offsets.pair(base + lv);
                        deg[lv] = (e - s) as u32;
                        let (fs, fe) = self.fwd_offsets.pair(base + lv);
                        fwd[lv] = (fe - fs) as u32;
                    }
                    return (buf, deg, fwd);
                }

                let mut buf = exec.take_u32(range_end - range_start + (ihi - ilo));
                let (mut ii, mut di) = (ilo, dlo);
                for lv in 0..size {
                    let gv = (base + lv) as u32;
                    let (s, e) = self.offsets.pair(base + lv);
                    let old = &self.adj[s..e];
                    // This vertex's op runs (sorted neighbor values).
                    let istart = ii;
                    while ii < ihi && (dins[ii] >> 32) as u32 == gv {
                        ii += 1;
                    }
                    let dstart = di;
                    while di < dhi && (ddel[di] >> 32) as u32 == gv {
                        di += 1;
                    }
                    if istart == ii && dstart == di {
                        buf.extend_from_slice(old);
                        deg[lv] = old.len() as u32;
                        let (fs, fe) = self.fwd_offsets.pair(base + lv);
                        fwd[lv] = (fe - fs) as u32;
                        continue;
                    }
                    // Merge-union old ∪ inserts, minus deletes; all three
                    // runs sorted, output stays sorted. Counting forward
                    // neighbors (> gv) on the way out replaces the
                    // builder's partition_point.
                    let add = &dins[istart..ii];
                    let drop_run = &ddel[dstart..di];
                    let (mut oi, mut ai, mut ki) = (0usize, 0usize, 0usize);
                    let (start_len, mut fwd_count) = (buf.len(), 0u32);
                    while oi < old.len() || ai < add.len() {
                        let take_old =
                            ai >= add.len() || (oi < old.len() && old[oi] <= add[ai] as u32);
                        let x = if take_old {
                            let x = old[oi];
                            oi += 1;
                            // Insert of an existing edge: drop the dup.
                            if ai < add.len() && add[ai] as u32 == x {
                                ai += 1;
                            }
                            x
                        } else {
                            let x = add[ai] as u32;
                            ai += 1;
                            x
                        };
                        while ki < drop_run.len() && (drop_run[ki] as u32) < x {
                            ki += 1;
                        }
                        if ki < drop_run.len() && drop_run[ki] as u32 == x {
                            ki += 1; // deleted
                            continue;
                        }
                        buf.push(x);
                        if x > gv {
                            fwd_count += 1;
                        }
                    }
                    deg[lv] = (buf.len() - start_len) as u32;
                    fwd[lv] = fwd_count;
                }
                (buf, deg, fwd)
            })
        };
        exec.recycle_u64(dins);
        exec.recycle_u64(ddel);

        // Assemble exactly like the builder: concatenate per-range
        // outputs in range order, prefix-sum the degrees. Output arrays
        // come from the arena too — with `Graph::recycle` feeding the
        // predecessor back, a steady-state update loop allocates ~zero
        // fresh bytes.
        let mut offsets = exec.take_u32(n + 1);
        let mut fwd_offsets = exec.take_u32(n + 1);
        let mut adj = exec.take_u32(new_directed);
        offsets.push(0);
        fwd_offsets.push(0);
        let (mut off, mut f) = (0u32, 0u32);
        for (buf, deg, fwd) in &parts {
            adj.extend_from_slice(buf);
            for &d in deg {
                off += d;
                offsets.push(off);
            }
            for &c in fwd {
                f += c;
                fwd_offsets.push(f);
            }
        }
        for (buf, deg, fwd) in parts {
            exec.recycle_u32(buf);
            exec.recycle_u32(deg);
            exec.recycle_u32(fwd);
        }
        debug_assert_eq!(adj.len(), new_directed);
        Ok(Graph {
            n,
            offsets: OffsetArray::U32(offsets),
            adj,
            fwd_offsets: OffsetArray::U32(fwd_offsets),
        })
    }

    /// The fallback: materialize the mutated canonical edge list and run
    /// the ordinary from-scratch build (which independently decides
    /// offset width, exactly as it would cold).
    fn rebuild_with_delta(&self, ins: &[u64], del: &[u64], exec: &ExecutorConfig) -> Graph {
        let mut merged = exec.take_u64(self.num_edges() + ins.len());
        let mut ai = 0usize;
        let mut ki = 0usize;
        for u in 0..self.n as VertexId {
            for &w in self.forward_neighbors(u) {
                let p = ((u as u64) << 32) | w as u64;
                while ai < ins.len() && ins[ai] < p {
                    merged.push(ins[ai]);
                    ai += 1;
                }
                if ai < ins.len() && ins[ai] == p {
                    ai += 1; // already present
                }
                while ki < del.len() && del[ki] < p {
                    ki += 1;
                }
                if ki < del.len() && del[ki] == p {
                    ki += 1;
                    continue; // deleted
                }
                merged.push(p);
            }
        }
        merged.extend_from_slice(&ins[ai..]);
        let mut b = GraphBuilder::with_capacity_in(self.n, merged.len(), exec);
        b.extend_packed(&merged);
        exec.recycle_u64(merged);
        b.build_with(exec)
    }

    /// Recycles this graph's CSR arrays into the executor's scratch
    /// arena (a no-op without one). The steady-state partner of
    /// [`apply_delta_with`](Self::apply_delta_with): recycling
    /// generation `g` stocks the arena the rebuild of generation `g + 2`
    /// draws from, so a session's update loop stops allocating.
    pub fn recycle(self, exec: &ExecutorConfig) {
        exec.recycle_u32(self.adj);
        if let OffsetArray::U32(v) = self.offsets {
            exec.recycle_u32(v);
        }
        if let OffsetArray::U32(v) = self.fwd_offsets {
            exec.recycle_u32(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// From-scratch reference: the mutated edge list through the
    /// ordinary builder.
    fn reference(g: &Graph, delta: &GraphDelta, exec: &ExecutorConfig) -> Graph {
        let (ins, del) = delta.normalized(g.num_vertices()).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .iter()
            .map(|e| (e.u(), e.v()))
            .filter(|&(u, v)| !del.contains(&Edge::new(u, v)))
            .collect();
        edges.extend(ins.iter().map(|e| (e.u(), e.v())));
        let mut b = GraphBuilder::new(g.num_vertices());
        for (u, v) in edges {
            b.add_edge(u, v).unwrap();
        }
        b.build_with(exec)
    }

    #[test]
    fn merge_matches_a_from_scratch_build() {
        let g = generators::gnp(200, 0.05, 42).unwrap();
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 199).unwrap();
        delta.insert_edge(5, 7).unwrap();
        delta.delete_edge(1, 3).unwrap(); // may or may not exist
        for e in g.edges().iter().take(4) {
            delta.delete_edge(e.u(), e.v()).unwrap();
        }
        for exec in [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(3),
        ] {
            let merged = g.apply_delta_with(&delta, &exec).unwrap();
            assert_eq!(merged, reference(&g, &delta, &exec));
            assert!(!merged.csr_offsets().is_wide());
        }
    }

    #[test]
    fn last_op_wins_delete_then_reinsert() {
        let g = generators::gnp(50, 0.2, 7).unwrap();
        let e = g.edges().iter().next().unwrap();
        let mut delta = GraphDelta::new();
        delta.delete_edge(e.u(), e.v()).unwrap();
        delta.insert_edge(e.v(), e.u()).unwrap(); // same edge, flipped
        let merged = g.apply_delta(&delta).unwrap();
        assert_eq!(merged, g, "delete-then-reinsert is the identity");

        let mut delta = GraphDelta::new();
        delta.insert_edge(e.u(), e.v()).unwrap();
        delta.delete_edge(e.u(), e.v()).unwrap();
        let merged = g.apply_delta(&delta).unwrap();
        assert!(!merged.has_edge(e.u(), e.v()), "insert-then-delete deletes");
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        let g = Graph::empty(4);
        let mut delta = GraphDelta::new();
        assert!(matches!(
            delta.insert_edge(2, 2),
            Err(GraphError::SelfLoop { vertex: 2 })
        ));
        assert!(matches!(
            delta.delete_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        delta.insert_edge(1, 9).unwrap(); // range checked at apply
        assert!(matches!(
            g.apply_delta(&delta),
            Err(GraphError::VertexOutOfRange { vertex: 9, n: 4 })
        ));
    }

    #[test]
    fn noop_ops_and_duplicates_wash_out() {
        let g = generators::gnp(80, 0.1, 3).unwrap();
        let present = g.edges().iter().next().unwrap();
        let mut delta = GraphDelta::new();
        delta.insert_edge(present.u(), present.v()).unwrap(); // already there
        delta.insert_edge(0, 79).unwrap();
        delta.insert_edge(0, 79).unwrap(); // duplicate insert
        delta.delete_edge(40, 41).unwrap(); // likely absent
        let merged = g.apply_delta(&delta).unwrap();
        assert_eq!(merged, reference(&g, &delta, &ExecutorConfig::sequential()));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = generators::gnp(64, 0.1, 11).unwrap();
        assert_eq!(g.apply_delta(&GraphDelta::new()).unwrap(), g);
    }

    #[test]
    fn wide_graphs_take_the_rebuild_path() {
        let mut b = GraphBuilder::new(6);
        b.force_wide_offsets();
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert!(g.csr_offsets().is_wide());
        let mut delta = GraphDelta::new();
        delta.insert_edge(3, 4).unwrap();
        delta.delete_edge(0, 1).unwrap();
        let merged = g.apply_delta(&delta).unwrap();
        assert!(merged.has_edge(3, 4));
        assert!(!merged.has_edge(0, 1));
        // The fallback builds cold, which picks the narrow width.
        assert!(!merged.csr_offsets().is_wide());
    }

    #[test]
    fn pooled_rebuild_reuses_the_arena() {
        let pool = mmvc_substrate::ScratchPool::new();
        let exec = ExecutorConfig::sequential().with_scratch(&pool);
        let g = generators::gnp(3000, 0.01, 5).unwrap();
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 2999).unwrap();
        // Warm-up: populate the arena with one rebuild + recycle.
        let warm = g.apply_delta_with(&delta, &exec).unwrap();
        warm.recycle(&exec);
        pool.reset_stats();
        let again = g.apply_delta_with(&delta, &exec).unwrap();
        let stats = pool.stats();
        assert_eq!(
            stats.allocations, 0,
            "a warm-arena rebuild allocates no fresh buffers: {stats:?}"
        );
        again.recycle(&exec);
    }
}
