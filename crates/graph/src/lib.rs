//! # mmvc-graph
//!
//! Graph substrate for the `mmvc` workspace — the from-scratch reproduction
//! of *"Improved Massively Parallel Computation Algorithms for MIS,
//! Matching, and Vertex Cover"* (Ghaffari, Gouleakis, Konrad, Mitrović,
//! Rubinfeld — PODC 2018).
//!
//! This crate provides everything the paper's algorithms assume about
//! graphs, plus the exact solvers used as ground truth by the experiment
//! harness:
//!
//! * [`Graph`] / [`GraphBuilder`] — immutable simple undirected graphs in
//!   CSR form, with induced-subgraph extraction (the core MPC operation)
//!   and line graphs (Luby's matching-via-MIS reduction).
//! * [`generators`] — seeded `G(n,p)`, `G(n,m)`, bipartite, Chung–Lu
//!   power-law, and structured graph generators.
//! * [`scenarios`] — the named workload registry (`gnp-sparse`,
//!   `planted-matching`, `clique-stress`, …) every algorithm can be
//!   pointed at by name via the run driver and `mmvc run`.
//! * [`matching`] — validated [`matching::Matching`]s, greedy baselines,
//!   Hopcroft–Karp, and Edmonds' blossom algorithm.
//! * [`mis`] — validated independent sets and the sequential randomized
//!   greedy MIS (paper, Section 3.1).
//! * [`vertex_cover`] — validated covers, the classical 2-approximation,
//!   and exact solvers for verification.
//! * [`weighted`] — edge-weighted graphs for the Corollary 1.4 experiments.
//! * [`rng`] — deterministic seeded randomness, including the stateless
//!   per-`(vertex, iteration)` hashing that lets distributed simulations
//!   share random thresholds without communication.
//!
//! # Quick example
//!
//! ```
//! use mmvc_graph::{generators, matching, mis};
//!
//! let g = generators::gnp(200, 0.05, 42)?;
//! let m = matching::greedy_maximal_matching(&g);
//! let s = mis::randomized_greedy_mis(&g, 7);
//! assert!(m.is_maximal(&g));
//! assert!(s.is_maximal(&g));
//! # Ok::<(), mmvc_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod error;
mod graph;

pub mod generators;
pub mod io;
pub mod matching;
pub mod mis;
pub mod rng;
pub mod scenarios;
pub mod stats;
pub mod vertex_cover;
pub mod weighted;

pub use delta::GraphDelta;
pub use error::GraphError;
pub use graph::{Edge, EdgeIter, EdgesView, Graph, GraphBuilder, OffsetArray, VertexId};

#[cfg(test)]
mod proptests {
    use crate::{
        generators, matching, mis, scenarios, vertex_cover, Graph, GraphBuilder, GraphDelta,
    };
    use mmvc_substrate::ExecutorConfig;
    use proptest::prelude::*;

    /// Strategy: a random graph described by (n, edge density seed).
    fn arb_graph() -> impl Strategy<Value = Graph> {
        (2usize..60, 0u64..1000, 0.0f64..0.5)
            .prop_map(|(n, seed, p)| generators::gnp(n, p, seed).expect("valid p"))
    }

    proptest! {
        #[test]
        fn greedy_matching_is_valid_and_maximal(g in arb_graph()) {
            let m = matching::greedy_maximal_matching(&g);
            for e in m.edges() {
                prop_assert!(g.has_edge(e.u(), e.v()));
            }
            prop_assert!(m.is_maximal(&g));
        }

        #[test]
        fn greedy_matching_is_half_approx(g in arb_graph()) {
            let m = matching::greedy_maximal_matching(&g).len();
            let opt = matching::blossom(&g).len();
            prop_assert!(2 * m >= opt, "greedy {m} vs optimum {opt}");
            prop_assert!(m <= opt);
        }

        #[test]
        fn randomized_mis_invariants(g in arb_graph(), seed in 0u64..100) {
            let s = mis::randomized_greedy_mis(&g, seed);
            prop_assert!(s.is_independent(&g));
            prop_assert!(s.is_maximal(&g));
        }

        #[test]
        fn blossom_at_least_greedy(g in arb_graph()) {
            prop_assert!(
                matching::blossom(&g).len() >= matching::greedy_maximal_matching(&g).len()
            );
        }

        #[test]
        fn cover_vs_matching_duality(g in arb_graph()) {
            // Any vertex cover is at least any matching size.
            let c = vertex_cover::two_approx_vertex_cover(&g);
            prop_assert!(c.covers(&g));
            let mm = matching::blossom(&g).len();
            prop_assert!(c.len() >= mm);
            prop_assert!(c.len() <= 2 * mm.max(1) || g.is_edgeless());
        }

        #[test]
        fn induced_subgraph_mask_never_grows(g in arb_graph(), bits in proptest::collection::vec(any::<bool>(), 2..60)) {
            let mut keep = bits;
            keep.resize(g.num_vertices(), false);
            let h = g.induced_subgraph_mask(&keep);
            prop_assert!(h.num_edges() <= g.num_edges());
            prop_assert_eq!(h.num_vertices(), g.num_vertices());
            for e in h.edges() {
                prop_assert!(g.has_edge(e.u(), e.v()));
                prop_assert!(keep[e.u() as usize] && keep[e.v() as usize]);
            }
        }

        #[test]
        fn packed_and_wide_builds_are_byte_identical_on_base_scenarios(
            idx in 0usize..64,
            n in 16usize..200,
            seed in 0u64..500
        ) {
            // The u32/u64 CSR boundary contract: the wide-offset fallback
            // (the representation graphs beyond 2³² directed edges get)
            // must be logically byte-identical to the packed build on
            // every base scenario — same offsets sequence, same adjacency
            // bytes, equal graphs.
            let base: Vec<_> = scenarios::base().collect();
            let sc = base[idx % base.len()];
            let g = sc.build_with(n, seed).expect("base scenario builds");
            let nv = g.num_vertices();
            let mut packed = GraphBuilder::with_capacity(nv, g.num_edges());
            let mut wide = GraphBuilder::with_capacity(nv, g.num_edges());
            wide.force_wide_offsets();
            packed.extend_edges(g.edges().iter()).expect("in range");
            wide.extend_edges(g.edges().iter()).expect("in range");
            let gp = packed.build();
            let gw = wide.build();
            prop_assert!(!gp.csr_offsets().is_wide(), "{} stayed packed", sc.name);
            prop_assert!(gw.csr_offsets().is_wide(), "{} forced wide", sc.name);
            prop_assert_eq!(gp.csr_offsets(), gw.csr_offsets());
            prop_assert_eq!(gp.csr_adjacency(), gw.csr_adjacency());
            prop_assert_eq!(&gp, &gw, "{} diverged across offset widths", sc.name);
            prop_assert_eq!(&gp, &g, "{} rebuild diverged from original", sc.name);
        }

        #[test]
        fn apply_delta_matches_from_scratch_on_base_scenarios(
            idx in 0usize..64,
            n in 16usize..160,
            seed in 0u64..500,
            churn in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..24)
        ) {
            // The delta-merge contract: `apply_delta` must be
            // byte-identical to a from-scratch build of the mutated edge
            // list on every base scenario, under Sequential and
            // Threaded{2,4} alike. The churn vector mixes inserts and
            // deletes, including ops targeting absent/present edges, so
            // no-op washing is exercised too.
            let base: Vec<_> = scenarios::base().collect();
            let sc = base[idx % base.len()];
            let g = sc.build_with(n, seed).expect("base scenario builds");
            let nv = g.num_vertices() as u32;
            let mut delta = GraphDelta::new();
            for (a, b, insert) in churn {
                let (a, b) = (a % nv, b % nv);
                if a == b { continue; }
                if insert {
                    delta.insert_edge(a, b).expect("no self-loop");
                } else {
                    delta.delete_edge(a, b).expect("no self-loop");
                }
            }
            let (ins, del) = delta.normalized(g.num_vertices()).expect("in range");
            let mut edges: Vec<_> = g.edges().iter()
                .filter(|e| !del.contains(e))
                .collect();
            edges.extend(ins.iter().copied());
            for exec in [
                ExecutorConfig::sequential(),
                ExecutorConfig::with_threads(2),
                ExecutorConfig::with_threads(4),
            ] {
                let merged = g.apply_delta_with(&delta, &exec).expect("in range");
                let mut b = GraphBuilder::with_capacity(g.num_vertices(), edges.len());
                b.extend_edges(edges.iter().copied()).expect("in range");
                let scratch = b.build_with(&exec);
                prop_assert_eq!(merged.csr_offsets(), scratch.csr_offsets(),
                    "{} offsets diverged", sc.name);
                prop_assert_eq!(merged.csr_adjacency(), scratch.csr_adjacency(),
                    "{} adjacency diverged", sc.name);
                prop_assert_eq!(&merged, &scratch, "{} diverged from scratch", sc.name);
            }
        }

        #[test]
        fn line_graph_mis_is_matching(seed in 0u64..50) {
            // MIS of L(G) ↦ maximal matching of G (the classical reduction).
            let g = generators::gnp(20, 0.2, seed).expect("valid p");
            let l = g.line_graph();
            let s = mis::randomized_greedy_mis(&l, seed);
            let pairs: Vec<_> = s.members().iter()
                .map(|&i| { let e = g.edges().get(i as usize); (e.u(), e.v()) })
                .collect();
            let m = matching::Matching::new(&g, pairs).expect("independent edges are a matching");
            prop_assert!(m.is_maximal(&g));
        }
    }
}
