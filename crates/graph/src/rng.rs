//! Deterministic randomness utilities shared across the workspace.
//!
//! Every randomized algorithm in this workspace is parameterized by a `u64`
//! seed so that experiments are exactly reproducible. Two primitives live
//! here:
//!
//! * [`SplitMix64`] — a tiny, fast, high-quality PRNG used both as a stream
//!   generator and as a *stateless hash*: [`hash2`] / [`hash3`] map tuples
//!   such as `(seed, vertex, iteration)` to independent-looking 64-bit
//!   values. The matching algorithms use this to let two *different*
//!   processes (the idealized `Central-Rand` and the distributed
//!   `MPC-Simulation`) observe the *same* random thresholds `T(v, t)`
//!   without any communication, exactly as the paper's analysis assumes
//!   (Section 4.4.3: "we assume that the thresholds ... are the same for
//!   both").
//! * [`random_permutation`] — a seeded Fisher–Yates shuffle producing the
//!   uniformly random vertex ranking π required by the greedy MIS algorithm
//!   (Section 3.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudorandom number
/// generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period, and — crucially for
/// us — doubles as a stateless mixing function, which lets distributed
/// simulations derive per-`(vertex, iteration)` randomness on the fly
/// ("sampled when needed", Section 4.3 of the paper).
///
/// # Examples
///
/// ```
/// use mmvc_graph::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}

/// The SplitMix64 finalizer: a bijective 64-bit mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a pair of values to a 64-bit output, suitable as per-entity
/// randomness derived from a global seed.
#[inline]
pub fn hash2(seed: u64, a: u64) -> u64 {
    mix(seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xD134_2543_DE82_EF95)
        ^ mix(a))
}

/// Hashes a triple of values to a 64-bit output.
///
/// Used for the per-vertex, per-iteration thresholds `T(v, t)` of
/// `Central-Rand` (paper, Section 4.3): `hash3(seed, v, t)` yields the same
/// value regardless of which simulated machine evaluates it.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    mix(hash2(seed, a) ^ mix(b.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Returns a uniform `f64` in `[0, 1)` derived from `(seed, a, b)`.
#[inline]
pub fn hash3_unit(seed: u64, a: u64, b: u64) -> f64 {
    (hash3(seed, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Produces a uniformly random permutation of `0..n` using Fisher–Yates
/// seeded by `seed`.
///
/// The result assigns each vertex its *rank*: `perm[i]` is the vertex with
/// rank `i` (rank 0 is processed first by the greedy MIS algorithm).
///
/// # Examples
///
/// ```
/// use mmvc_graph::rng::random_permutation;
///
/// let p = random_permutation(10, 7);
/// let mut sorted = p.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
/// ```
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Standard Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Returns the inverse of a permutation: `inv[perm[i]] = i`.
///
/// For the MIS algorithms this converts "vertex at rank i" into "rank of
/// vertex v".
///
/// # Panics
///
/// Panics (in debug builds) if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![u32::MAX; perm.len()];
    for (i, &v) in perm.iter().enumerate() {
        debug_assert!(inv[v as usize] == u32::MAX, "not a permutation");
        inv[v as usize] = i as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn hash3_is_stateless_and_distinct() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn hash3_unit_distribution_roughly_uniform() {
        // Mean of U[0,1) samples should concentrate near 0.5.
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash3_unit(99, i, i * 31 + 7)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn permutation_is_valid() {
        for n in [0usize, 1, 2, 17, 100] {
            let p = random_permutation(n, 11);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutation_deterministic_and_seed_sensitive() {
        assert_eq!(random_permutation(50, 3), random_permutation(50, 3));
        assert_ne!(random_permutation(50, 3), random_permutation(50, 4));
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let p = random_permutation(64, 8);
        let inv = invert_permutation(&p);
        for (rank, &v) in p.iter().enumerate() {
            assert_eq!(inv[v as usize] as usize, rank);
        }
    }

    #[test]
    fn permutation_looks_uniform() {
        // Chi-square-ish sanity check: the rank of vertex 0 over many seeds
        // should hit all positions of a small permutation.
        let n = 8;
        let mut counts = vec![0usize; n];
        for seed in 0..4000u64 {
            let p = random_permutation(n, seed);
            let rank0 = p.iter().position(|&v| v == 0).unwrap();
            counts[rank0] += 1;
        }
        let expected = 4000.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.3,
                "rank {i} count {c} deviates from {expected}"
            );
        }
    }
}
