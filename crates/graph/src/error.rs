//! Error types for graph construction and algorithm inputs.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `{v, v}` was supplied; the paper's algorithms operate on
    /// simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 3 };
        assert!(e.to_string().contains("vertex 7"));
        let e = GraphError::SelfLoop { vertex: 2 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::InvalidParameter {
            name: "p",
            message: "must be in [0,1]".into(),
        };
        assert!(e.to_string().contains("`p`"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::SelfLoop { vertex: 0 });
        assert!(e.source().is_none());
    }
}
