//! Vertex covers: representation, validation, the classical matching-based
//! 2-approximation, and lower bounds used to report approximation ratios.

use crate::graph::{Graph, VertexId};
use crate::matching::{self, Matching};

/// A validated vertex cover of a graph.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, vertex_cover::VertexCover};
/// let g = generators::path(4); // edges {0,1},{1,2},{2,3}
/// let c = VertexCover::new(&g, vec![1, 2]).unwrap();
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexCover {
    members: Vec<VertexId>,
    in_cover: Vec<bool>,
}

impl VertexCover {
    /// Builds a cover from `vertices`, validating that every edge of `g`
    /// is covered. Returns `None` if some edge is uncovered or an id is
    /// out of range (duplicates are merged).
    pub fn new<I>(g: &Graph, vertices: I) -> Option<Self>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let n = g.num_vertices();
        let mut in_cover = vec![false; n];
        for v in vertices {
            if v as usize >= n {
                return None;
            }
            in_cover[v as usize] = true;
        }
        if !g
            .edges()
            .iter()
            .all(|e| in_cover[e.u() as usize] || in_cover[e.v() as usize])
        {
            return None;
        }
        let members = in_cover
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v as VertexId))
            .collect();
        Some(VertexCover { members, in_cover })
    }

    /// Builds from a membership mask without validation (used by algorithms
    /// that guarantee coverage by construction; cross-check with
    /// [`covers`](Self::covers) in tests).
    pub fn from_mask_unchecked(in_cover: Vec<bool>) -> Self {
        let members = in_cover
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v as VertexId))
            .collect();
        VertexCover { members, in_cover }
    }

    /// Number of vertices in the cover.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cover is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sorted members.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        self.in_cover.get(v as usize).copied().unwrap_or(false)
    }

    /// Checks that every edge of `g` has an endpoint in the cover.
    pub fn covers(&self, g: &Graph) -> bool {
        g.edges()
            .iter()
            .all(|e| self.contains(e.u()) || self.contains(e.v()))
    }
}

/// The classical 2-approximate vertex cover: endpoints of a greedy maximal
/// matching (the baseline the paper's introduction attributes to the line
/// of work starting with \[Lub86\] / maximal matching).
pub fn two_approx_vertex_cover(g: &Graph) -> VertexCover {
    let m = matching::greedy_maximal_matching(g);
    cover_from_matching(g, &m)
}

/// Converts a *maximal* matching into the vertex cover of its endpoints.
///
/// # Panics
///
/// Panics (debug) if the matching is not maximal — the endpoints of a
/// non-maximal matching need not cover the graph.
pub fn cover_from_matching(g: &Graph, m: &Matching) -> VertexCover {
    debug_assert!(
        m.is_maximal(g),
        "cover_from_matching requires a maximal matching"
    );
    let mut mask = vec![false; g.num_vertices()];
    for e in m.edges() {
        mask[e.u() as usize] = true;
        mask[e.v() as usize] = true;
    }
    VertexCover::from_mask_unchecked(mask)
}

/// A lower bound on the minimum vertex cover size: the size of any maximum
/// matching (weak LP duality). Exact on bipartite graphs by Kőnig's
/// theorem.
pub fn vertex_cover_lower_bound(g: &Graph) -> usize {
    matching::blossom(g).len()
}

/// Exact minimum vertex cover size by branch and bound — exponential time,
/// only for tiny verification instances.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices (guard against accidental
/// use on large inputs).
pub fn exact_min_vertex_cover_size(g: &Graph) -> usize {
    assert!(
        g.num_vertices() <= 64,
        "exact solver is restricted to tiny graphs"
    );
    /// Greedy-matching lower bound on the cover of the uncovered edges:
    /// vertex-disjoint uncovered edges each need one cover vertex.
    fn matching_lb(g: &Graph, removed: &[bool]) -> usize {
        let mut used = vec![false; g.num_vertices()];
        let mut lb = 0;
        for e in g.edges() {
            let (u, v) = (e.u() as usize, e.v() as usize);
            if !removed[u] && !removed[v] && !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                lb += 1;
            }
        }
        lb
    }
    fn rec(g: &Graph, removed: &mut Vec<bool>, best: &mut usize, current: usize) {
        if current + matching_lb(g, removed) >= *best {
            return;
        }
        // Find any uncovered edge (prefer a max-degree endpoint first for
        // stronger early bounds).
        let e = g
            .edges()
            .iter()
            .find(|e| !removed[e.u() as usize] && !removed[e.v() as usize]);
        let Some(e) = e else {
            *best = current;
            return;
        };
        // Branch: take u, or take v.
        for x in [e.u(), e.v()] {
            removed[x as usize] = true;
            rec(g, removed, best, current + 1);
            removed[x as usize] = false;
        }
    }
    let mut removed = vec![false; g.num_vertices()];
    // Warm start: the 2-approximation gives an upper bound.
    let mut best = two_approx_vertex_cover(g)
        .len()
        .max(matching_lb(g, &removed));
    // `best` must be an *achievable* size or a strict upper bound + 1; the
    // branch-and-bound prunes at >=, so seed with 2-approx size + 1 … but
    // since the 2-approx is itself a valid cover, its size is achievable;
    // start one above it so an equal-size optimum is still found.
    best += 1;
    rec(g, &mut removed, &mut best, 0);
    best.min(g.num_vertices())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn validated_construction() {
        let g = generators::path(4);
        assert!(VertexCover::new(&g, vec![1, 2]).is_some());
        assert!(
            VertexCover::new(&g, vec![0, 3]).is_none(),
            "edge {{1,2}} uncovered"
        );
        assert!(VertexCover::new(&g, vec![9]).is_none(), "out of range");
        // Duplicates merge.
        let c = VertexCover::new(&g, vec![1, 1, 2, 2]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_cover_of_edgeless_graph() {
        let g = crate::graph::Graph::empty(5);
        let c = VertexCover::new(&g, Vec::new()).unwrap();
        assert!(c.is_empty());
        assert!(c.covers(&g));
    }

    #[test]
    fn two_approx_is_cover_and_within_factor_two() {
        for seed in 0..10u64 {
            let g = generators::gnp(40, 0.15, seed).unwrap();
            let c = two_approx_vertex_cover(&g);
            assert!(c.covers(&g), "seed {seed}");
            let lb = vertex_cover_lower_bound(&g);
            assert!(
                c.len() <= 2 * lb.max(1),
                "seed {seed}: |C|={} lb={lb}",
                c.len()
            );
        }
    }

    #[test]
    fn star_cover() {
        let g = generators::star(9);
        let c = two_approx_vertex_cover(&g);
        assert!(c.covers(&g));
        assert!(c.len() <= 2);
        assert_eq!(exact_min_vertex_cover_size(&g), 1);
    }

    #[test]
    fn exact_solver_known_values() {
        assert_eq!(exact_min_vertex_cover_size(&generators::path(4)), 2);
        assert_eq!(exact_min_vertex_cover_size(&generators::cycle(5)), 3);
        assert_eq!(exact_min_vertex_cover_size(&generators::complete(5)), 4);
        assert_eq!(
            exact_min_vertex_cover_size(&generators::complete_bipartite(3, 7)),
            3
        );
        assert_eq!(
            exact_min_vertex_cover_size(&crate::graph::Graph::empty(4)),
            0
        );
    }

    #[test]
    fn lower_bound_vs_exact_on_random() {
        for seed in 0..15u64 {
            let g = generators::gnp(12, 0.3, seed).unwrap();
            let lb = vertex_cover_lower_bound(&g);
            let exact = exact_min_vertex_cover_size(&g);
            assert!(lb <= exact, "seed {seed}");
            assert!(exact <= 2 * lb.max(1), "seed {seed}");
        }
    }

    #[test]
    fn konig_on_bipartite() {
        // On bipartite graphs, max matching == min vertex cover.
        for seed in 0..10u64 {
            let g = generators::bipartite_gnp(8, 8, 0.3, seed).unwrap();
            let mm = crate::matching::hopcroft_karp(&g).unwrap().len();
            assert_eq!(exact_min_vertex_cover_size(&g), mm, "seed {seed}");
        }
    }

    #[test]
    fn cover_from_maximal_matching_valid() {
        let g = generators::gnp(30, 0.2, 7).unwrap();
        let m = crate::matching::greedy_maximal_matching(&g);
        let c = cover_from_matching(&g, &m);
        assert!(c.covers(&g));
        assert_eq!(c.len(), 2 * m.len());
    }
}
