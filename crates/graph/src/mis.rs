//! Independent sets: representation, validation, and the sequential
//! randomized greedy algorithm that the paper's MPC simulation emulates.

use crate::graph::{Graph, VertexId};
use crate::rng::{invert_permutation, random_permutation};

/// A validated independent set of a graph.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, mis::IndependentSet};
/// let g = generators::cycle(6);
/// let is = IndependentSet::new(&g, vec![0, 2, 4]).unwrap();
/// assert!(is.is_maximal(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependentSet {
    members: Vec<VertexId>,
    in_set: Vec<bool>,
}

impl IndependentSet {
    /// Creates an empty independent set for a graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        IndependentSet {
            members: Vec::new(),
            in_set: vec![false; n],
        }
    }

    /// Builds an independent set from `vertices`, validating pairwise
    /// non-adjacency against `g`. Returns `None` if two members are
    /// adjacent, a member repeats, or an id is out of range.
    pub fn new<I>(g: &Graph, vertices: I) -> Option<Self>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut s = IndependentSet::empty(g.num_vertices());
        for v in vertices {
            if v as usize >= g.num_vertices() || s.in_set[v as usize] {
                return None;
            }
            if g.neighbors(v).iter().any(|&w| s.in_set[w as usize]) {
                return None;
            }
            s.in_set[v as usize] = true;
            s.members.push(v);
        }
        s.members.sort_unstable();
        Some(s)
    }

    /// Builds from a membership mask without validation (callers uphold
    /// independence; used by algorithm internals that prove it by
    /// construction).
    pub(crate) fn from_mask_unchecked(in_set: Vec<bool>) -> Self {
        let members = in_set
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v as VertexId))
            .collect();
        IndependentSet { members, in_set }
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sorted members.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        self.in_set.get(v as usize).copied().unwrap_or(false)
    }

    /// Checks independence against `g` (always true for validated
    /// constructions; useful for cross-checking algorithm output).
    pub fn is_independent(&self, g: &Graph) -> bool {
        self.members
            .iter()
            .all(|&v| !g.neighbors(v).iter().any(|&w| self.contains(w)))
    }

    /// Checks maximality: every non-member has a neighbor in the set.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        g.vertices()
            .all(|v| self.contains(v) || g.neighbors(v).iter().any(|&w| self.contains(w)))
    }

    /// The complement vertex set as a
    /// [`VertexCover`](crate::vertex_cover::VertexCover) — the classical
    /// duality: `S` is an independent set of `G` iff `V ∖ S` is a vertex
    /// cover of `G`. A *maximum* independent set complements to a
    /// *minimum* vertex cover.
    ///
    /// # Examples
    ///
    /// ```
    /// use mmvc_graph::{generators, mis};
    /// let g = generators::cycle(6);
    /// let s = mis::randomized_greedy_mis(&g, 1);
    /// assert!(s.to_vertex_cover().covers(&g));
    /// ```
    pub fn to_vertex_cover(&self) -> crate::vertex_cover::VertexCover {
        let mask: Vec<bool> = self.in_set.iter().map(|&b| !b).collect();
        crate::vertex_cover::VertexCover::from_mask_unchecked(mask)
    }
}

/// Sequential greedy MIS processing vertices in the order given by `ranks`
/// (`ranks[v]` = position of `v`; lower rank processed first).
///
/// This is the reference implementation of the paper's "randomized greedy"
/// algorithm (Section 3.1) when `ranks` is a uniformly random permutation.
///
/// # Panics
///
/// Panics if `ranks.len() != g.num_vertices()`.
pub fn greedy_mis_by_rank(g: &Graph, ranks: &[u32]) -> IndependentSet {
    assert_eq!(
        ranks.len(),
        g.num_vertices(),
        "rank array length must equal n"
    );
    let order = invert_permutation(ranks); // order[i] = vertex with rank i
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for &v in &order {
        let v = v as usize;
        if !blocked[v] {
            in_set[v] = true;
            for &w in g.neighbors(v as VertexId) {
                blocked[w as usize] = true;
            }
        }
    }
    IndependentSet::from_mask_unchecked(in_set)
}

/// Randomized greedy MIS with a fresh uniform permutation drawn from `seed`
/// (paper, Section 3.1).
pub fn randomized_greedy_mis(g: &Graph, seed: u64) -> IndependentSet {
    let perm = random_permutation(g.num_vertices(), seed);
    let ranks = invert_permutation(&perm);
    greedy_mis_by_rank(g, &ranks)
}

/// Greedy MIS in natural vertex order — the deterministic baseline.
pub fn greedy_mis(g: &Graph) -> IndependentSet {
    let ranks: Vec<u32> = (0..g.num_vertices() as u32).collect();
    greedy_mis_by_rank(g, &ranks)
}

/// Greedy MIS together with the *pivot assignment*: for every vertex, the
/// MIS member that decided it — itself for members, and otherwise its
/// smallest-rank MIS neighbor (the vertex whose selection removed it).
///
/// This is exactly the CC-Pivot clustering of Ailon–Charikar–Newman as
/// used for correlation clustering in \[ACG+15\], the work the paper's
/// Lemma 3.1 is adapted from: pivots are the MIS, and each cluster is a
/// pivot plus the vertices assigned to it. Isolated vertices are their own
/// pivots.
///
/// # Panics
///
/// Panics if `ranks.len() != g.num_vertices()`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::{generators, mis::greedy_mis_with_pivots};
/// let g = generators::star(5); // center 0, leaves 1..4
/// let ranks: Vec<u32> = (0..5).collect(); // center processed first
/// let (mis, pivot) = greedy_mis_with_pivots(&g, &ranks);
/// assert!(mis.contains(0));
/// assert!(pivot.iter().all(|&p| p == 0), "all leaves cluster with the center");
/// ```
pub fn greedy_mis_with_pivots(g: &Graph, ranks: &[u32]) -> (IndependentSet, Vec<VertexId>) {
    let set = greedy_mis_by_rank(g, ranks);
    let n = g.num_vertices();
    let mut pivot = vec![0 as VertexId; n];
    for v in 0..n as u32 {
        if set.contains(v) {
            pivot[v as usize] = v;
        } else {
            pivot[v as usize] = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| set.contains(u))
                .min_by_key(|&u| ranks[u as usize])
                .unwrap_or(v); // isolated non-members cannot exist; defensive
        }
    }
    (set, pivot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn validated_construction() {
        let g = generators::cycle(6);
        assert!(IndependentSet::new(&g, vec![0, 2, 4]).is_some());
        assert!(
            IndependentSet::new(&g, vec![0, 1]).is_none(),
            "adjacent pair"
        );
        assert!(IndependentSet::new(&g, vec![0, 0]).is_none(), "duplicate");
        assert!(IndependentSet::new(&g, vec![9]).is_none(), "out of range");
    }

    #[test]
    fn empty_set_properties() {
        let g = generators::path(4);
        let s = IndependentSet::empty(4);
        assert!(s.is_empty());
        assert!(s.is_independent(&g));
        assert!(!s.is_maximal(&g));
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn greedy_natural_order_on_path() {
        // Path 0-1-2-3-4: natural greedy picks 0, 2, 4.
        let s = greedy_mis(&generators::path(5));
        assert_eq!(s.members(), &[0, 2, 4]);
    }

    #[test]
    fn greedy_by_rank_respects_order() {
        // Path 0-1-2: rank 1 first -> MIS = {1} only... actually {1} blocks
        // 0 and 2, and is maximal.
        let g = generators::path(3);
        let ranks = vec![1u32, 0, 2]; // vertex 1 has rank 0
        let s = greedy_mis_by_rank(&g, &ranks);
        assert_eq!(s.members(), &[1]);
        assert!(s.is_maximal(&g));
    }

    #[test]
    fn randomized_greedy_always_maximal_independent() {
        for seed in 0..20u64 {
            for g in [
                generators::gnp(80, 0.08, seed).unwrap(),
                generators::cycle(31),
                generators::star(40),
                generators::complete(12),
            ] {
                let s = randomized_greedy_mis(&g, seed);
                assert!(s.is_independent(&g), "seed {seed}");
                assert!(s.is_maximal(&g), "seed {seed}");
            }
        }
    }

    #[test]
    fn complete_graph_mis_is_single_vertex() {
        let s = randomized_greedy_mis(&generators::complete(9), 4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edgeless_graph_mis_is_everything() {
        let g = crate::graph::Graph::empty(7);
        let s = randomized_greedy_mis(&g, 0);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::gnp(50, 0.1, 1).unwrap();
        assert_eq!(
            randomized_greedy_mis(&g, 5).members(),
            randomized_greedy_mis(&g, 5).members()
        );
    }

    #[test]
    #[should_panic(expected = "rank array length")]
    fn rank_length_mismatch_panics() {
        greedy_mis_by_rank(&generators::path(3), &[0, 1]);
    }

    #[test]
    fn pivots_cluster_structure() {
        let g = generators::gnp(100, 0.1, 3).unwrap();
        let perm = crate::rng::random_permutation(100, 3);
        let ranks = crate::rng::invert_permutation(&perm);
        let (set, pivot) = greedy_mis_with_pivots(&g, &ranks);
        for v in 0..100u32 {
            let p = pivot[v as usize];
            // Every pivot is an MIS member (or the vertex itself when
            // isolated).
            if set.contains(v) {
                assert_eq!(p, v, "members are their own pivots");
            } else {
                assert!(set.contains(p), "pivot of {v} must be in the MIS");
                assert!(g.has_edge(v, p), "pivot must be a neighbor");
                // And it is the *smallest-rank* MIS neighbor.
                for &u in g.neighbors(v) {
                    if set.contains(u) {
                        assert!(ranks[p as usize] <= ranks[u as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn complement_of_is_is_cover_and_clique_duality() {
        for seed in 0..5u64 {
            let g = generators::gnp(40, 0.2, seed).unwrap();
            let s = randomized_greedy_mis(&g, seed);
            // IS complement is a vertex cover.
            let c = s.to_vertex_cover();
            assert!(c.covers(&g), "seed {seed}");
            assert_eq!(c.len() + s.len(), 40);
            // IS of G is a clique of the complement graph.
            let comp = g.complement();
            for &u in s.members() {
                for &v in s.members() {
                    if u < v {
                        assert!(comp.has_edge(u, v), "seed {seed}: {u},{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn pivots_isolated_vertices_self_assign() {
        let g = crate::graph::Graph::empty(4);
        let ranks: Vec<u32> = (0..4).collect();
        let (set, pivot) = greedy_mis_with_pivots(&g, &ranks);
        assert_eq!(set.len(), 4);
        assert_eq!(pivot, vec![0, 1, 2, 3]);
    }
}
