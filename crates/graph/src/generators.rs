//! Seeded random and structured graph generators.
//!
//! These produce the workloads for the experiment harness: Erdős–Rényi
//! `G(n,p)` / `G(n,m)` graphs, random bipartite graphs (the ad-allocation
//! scenarios), Chung–Lu power-law graphs (social networks, the motivating
//! workload of the paper's introduction), and assorted structured graphs
//! used as worst cases and unit-test fixtures.
//!
//! All generators are deterministic in their `seed` argument.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skip sampling, so the running time is
/// `O(n + |E|)` rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::generators::gnp;
/// let g = gnp(100, 0.05, 7)?;
/// assert_eq!(g.num_vertices(), 100);
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "p",
            message: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return Ok(b.build());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    if p == 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v).expect("in range");
            }
        }
        return Ok(b.build());
    }
    // Geometric skip sampling: per row `u`, jump between successive
    // successes of a Bernoulli(p) stream over columns `u+1..n`, so the
    // running time is proportional to the number of edges generated.
    let log_q = (1.0 - p).ln();
    for row in 0..(n - 1) as u32 {
        let mut col = row as i64; // previous column; first candidate is row+1
        loop {
            let r: f64 = rng.gen::<f64>();
            // Number of failures before next success in Bernoulli(p) stream.
            let skip = ((1.0 - r).ln() / log_q).floor() as i64;
            col += 1 + skip.max(0);
            if col >= n as i64 {
                break;
            }
            b.add_edge(row, col as u32).expect("in range");
        }
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly at random.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds `n·(n−1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_m {
        return Err(GraphError::InvalidParameter {
            name: "m",
            message: format!("requested {m} edges but K_{n} has only {max_m}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    // Rejection sampling is fine while m ≤ max_m/2; otherwise sample the
    // complement.
    if m * 2 <= max_m {
        while chosen.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            chosen.insert(key);
        }
        for (u, v) in chosen {
            b.add_edge(u, v).expect("in range");
        }
    } else {
        let holes = max_m - m;
        let mut removed = std::collections::HashSet::with_capacity(holes * 2);
        while removed.len() < holes {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            removed.insert(key);
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !removed.contains(&(u, v)) {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
    }
    Ok(b.build())
}

/// Random bipartite graph: sides `0..n_left` and `n_left..n_left+n_right`,
/// each cross pair an edge independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn bipartite_gnp(
    n_left: usize,
    n_right: usize,
    p: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "p",
            message: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let n = n_left + n_right;
    let mut b = GraphBuilder::new(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for u in 0..n_left as u32 {
        for v in 0..n_right as u32 {
            if rng.gen::<f64>() < p {
                b.add_edge(u, n_left as u32 + v).expect("in range");
            }
        }
    }
    Ok(b.build())
}

/// Chung–Lu random graph with expected degree sequence `weights`:
/// pair `{u, v}` is an edge with probability `min(1, w_u w_v / Σw)`.
///
/// With `w_i ∝ i^(−1/(β−1))` this yields a power-law degree distribution
/// with exponent `β`; see [`power_law`].
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if any weight is negative or
/// non-finite, or all weights are zero while `weights` is non-empty.
pub fn chung_lu(weights: &[f64], seed: u64) -> Result<Graph, GraphError> {
    let n = weights.len();
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(GraphError::InvalidParameter {
            name: "weights",
            message: "all expected degrees must be finite and non-negative".into(),
        });
    }
    let total: f64 = weights.iter().sum();
    let mut b = GraphBuilder::new(n);
    if n < 2 || total <= 0.0 {
        if n > 0 && total <= 0.0 && !weights.is_empty() {
            // All-zero weights: valid, produces the empty graph.
            return Ok(b.build());
        }
        return Ok(b.build());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Sort vertices by descending weight for the standard efficient
    // Miller–Hagberg style generation; here we keep the O(n²) loop for
    // clarity but skip rows with negligible weight mass.
    for u in 0..n {
        if weights[u] == 0.0 {
            continue;
        }
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    Ok(b.build())
}

/// Power-law graph: Chung–Lu with weights `w_i = c · (i+1)^(−1/(β−1))`,
/// scaled so the average expected degree is `avg_degree`.
///
/// Typical social networks have `β ∈ [2, 3]`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `beta <= 1` or
/// `avg_degree < 0`.
pub fn power_law(n: usize, beta: f64, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if beta <= 1.0 || !beta.is_finite() {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            message: format!("power-law exponent must be > 1, got {beta}"),
        });
    }
    if avg_degree < 0.0 || !avg_degree.is_finite() {
        return Err(GraphError::InvalidParameter {
            name: "avg_degree",
            message: format!("average degree must be non-negative, got {avg_degree}"),
        });
    }
    let exponent = -1.0 / (beta - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 && n > 0 {
        let scale = avg_degree * n as f64 / sum;
        for w in &mut weights {
            *w *= scale;
        }
    }
    chung_lu(&weights, seed)
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v).expect("in range");
        }
    }
    b.build()
}

/// The path `P_n` on `n` vertices (`n − 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v).expect("in range");
    }
    b.build()
}

/// The cycle `C_n` (requires `n >= 3` to be simple; smaller `n` degrades to
/// a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v).expect("in range");
    }
    if n >= 3 {
        b.add_edge(n as u32 - 1, 0).expect("in range");
    }
    b.build()
}

/// The star `K_{1,n−1}` with center `0`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(0, v).expect("in range");
    }
    b.build()
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("in range");
            }
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left side `0..a`).
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a as u32 {
        for v in 0..b_size as u32 {
            b.add_edge(u, a as u32 + v).expect("in range");
        }
    }
    b.build()
}

/// A disjoint union of `k` copies of `g` (vertex ids shifted per copy).
pub fn disjoint_union(g: &Graph, k: usize) -> Graph {
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n * k);
    for copy in 0..k {
        let off = (copy * n) as u32;
        for e in g.edges() {
            b.add_edge(e.u() + off, e.v() + off).expect("in range");
        }
    }
    b.build()
}

/// A graph of `k` disjoint edges (a perfect matching on `2k` vertices) —
/// the extremal instance where a maximum matching equals `n/2` and the MIS
/// equals `n/2`.
pub fn disjoint_edges(k: usize) -> Graph {
    let mut b = GraphBuilder::new(2 * k);
    for i in 0..k as u32 {
        b.add_edge(2 * i, 2 * i + 1).expect("in range");
    }
    b.build()
}

/// Planted-matching graph: a perfect matching on `2⌊n/2⌋` vertices
/// (edges `{2i, 2i+1}`) hidden under `G(n, noise_avg_degree/(n−1))`
/// noise edges.
///
/// The planted matching pins the maximum-matching size at `⌊n/2⌋`, so
/// matching algorithms can be scored against a known optimum without an
/// exact solver; the noise keeps the instance non-trivial.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `noise_avg_degree` is
/// negative or not finite.
pub fn planted_matching(n: usize, noise_avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if !noise_avg_degree.is_finite() || noise_avg_degree < 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "noise_avg_degree",
            message: format!("noise degree must be non-negative, got {noise_avg_degree}"),
        });
    }
    let p = if n >= 2 {
        (noise_avg_degree / (n - 1) as f64).min(1.0)
    } else {
        0.0
    };
    let noise = gnp(n, p, seed)?;
    let mut b = GraphBuilder::with_capacity(n, noise.num_edges() + n / 2);
    for i in 0..(n / 2) as u32 {
        b.add_edge(2 * i, 2 * i + 1).expect("in range");
    }
    for e in noise.edges() {
        b.add_edge(e.u(), e.v()).expect("in range");
    }
    Ok(b.build())
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_attach` existing vertices chosen with
/// probability proportional to their degree.
///
/// Produces power-law degree tails by growth rather than by explicit
/// weights (contrast [`power_law`]/Chung–Lu).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m_attach == 0` or
/// `m_attach >= n`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<Graph, GraphError> {
    if m_attach == 0 || m_attach >= n.max(1) {
        return Err(GraphError::InvalidParameter {
            name: "m_attach",
            message: format!("need 0 < m_attach < n, got {m_attach} with n = {n}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Seed clique on m_attach + 1 vertices.
    let seed_size = m_attach + 1;
    // Repeated-endpoints list: sampling a uniform element is sampling
    // proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::new();
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            b.add_edge(u, v).expect("in range");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_size as u32..n as u32 {
        let mut targets = std::collections::HashSet::with_capacity(m_attach * 2);
        // Rejection-sample distinct targets by degree.
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        // Sort before inserting: HashSet iteration order would otherwise
        // leak into the endpoints list (and thus later samples), making
        // the generator nondeterministic across processes.
        let mut targets: Vec<VertexId> = targets.into_iter().collect();
        targets.sort_unstable();
        for t in targets {
            b.add_edge(v, t).expect("in range");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbors (`k` even), with each edge
/// rewired to a uniform endpoint with probability `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    if !k.is_multiple_of(2) || k >= n.max(1) {
        return Err(GraphError::InvalidParameter {
            name: "k",
            message: format!("need even k < n, got k = {k}, n = {n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            message: format!("rewiring probability must be in [0, 1], got {beta}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for step in 1..=k / 2 {
            let v = (u + step) % n;
            if u == v {
                continue;
            }
            let (mut a, mut c) = (u as u32, v as u32);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniform non-self target.
                for _ in 0..16 {
                    let t = rng.gen_range(0..n as u32);
                    if t != a {
                        c = t;
                        break;
                    }
                }
            }
            if a == c {
                continue;
            }
            if a > c {
                std::mem::swap(&mut a, &mut c);
            }
            b.add_edge(a, c).expect("in range");
        }
    }
    Ok(b.build())
}

/// Stochastic block model: `sizes[i]` vertices in block `i`; pair
/// probability `p_in` within a block, `p_out` across blocks. Vertices are
/// numbered block by block.
///
/// Generalizes the planted-partition workloads used by the correlation
/// clustering example.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless both probabilities are
/// in `[0, 1]`.
pub fn stochastic_block_model(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(GraphError::InvalidParameter {
                name,
                message: format!("probability must be in [0, 1], got {p}"),
            });
        }
    }
    let n: usize = sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (i, &s) in sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(i, s));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if p > 0.0 && rng.gen::<f64>() < p {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    Ok(b.build())
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance at most `radius`.
///
/// The classic model for wireless/sensor networks (the vertex-cover
/// monitoring workload).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `radius` is negative or
/// not finite.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<Graph, GraphError> {
    if !radius.is_finite() || radius < 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "radius",
            message: format!("radius must be non-negative, got {radius}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    // Grid-bucket the points so the expected running time is
    // O(n + |E|) instead of O(n²). The grid is a flat row-major
    // `Vec<Vec<u32>>` indexed by cell coordinates — deterministic
    // iteration order and no hashing on the hot path. The side length is
    // capped near √n so the table stays O(n) cells even for tiny radii;
    // a cell is then at least `radius` wide either way, so the 3×3
    // neighborhood scan below remains exhaustive.
    let side = ((1.0 / radius.max(1e-9)).floor() as usize).clamp(1, (n as f64).sqrt() as usize + 1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x * side as f64) as usize).min(side - 1),
            ((y * side as f64) as usize).min(side - 1),
        )
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); side * side];
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * side + cx].push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for cy in 0..side {
        for cx in 0..side {
            let members = &grid[cy * side + cx];
            if members.is_empty() {
                continue;
            }
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= side as i64 || ny >= side as i64 {
                        continue;
                    }
                    let neighbors = &grid[ny as usize * side + nx as usize];
                    for &u in members {
                        for &v in neighbors {
                            if u < v {
                                let (x1, y1) = points[u as usize];
                                let (x2, y2) = points[v as usize];
                                let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
                                if d2 <= r2 {
                                    b.add_edge(u, v).expect("in range");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).unwrap().num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).unwrap().num_edges(), 45);
        assert_eq!(gnp(0, 0.5, 1).unwrap().num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).unwrap().num_edges(), 0);
    }

    #[test]
    fn gnp_rejects_bad_p() {
        assert!(gnp(10, -0.1, 1).is_err());
        assert!(gnp(10, 1.5, 1).is_err());
        assert!(gnp(10, f64::NAN, 1).is_err());
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, 99).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edges {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(50, 0.2, 3).unwrap(), gnp(50, 0.2, 3).unwrap());
        assert_ne!(gnp(50, 0.2, 3).unwrap(), gnp(50, 0.2, 4).unwrap());
    }

    #[test]
    fn gnm_exact_count() {
        for &m in &[0usize, 1, 10, 44, 45] {
            let g = gnm(10, m, 5).unwrap();
            assert_eq!(g.num_edges(), m);
        }
        assert!(gnm(10, 46, 5).is_err());
    }

    #[test]
    fn gnm_dense_path_uses_complement() {
        let g = gnm(20, 180, 2).unwrap(); // max is 190, complement path
        assert_eq!(g.num_edges(), 180);
    }

    #[test]
    fn bipartite_is_bipartite() {
        let g = bipartite_gnp(20, 30, 0.3, 8).unwrap();
        assert_eq!(g.num_vertices(), 50);
        for e in g.edges() {
            assert!(e.u() < 20 && e.v() >= 20, "edge {:?} crosses sides", e);
        }
    }

    #[test]
    fn chung_lu_zero_weights_empty() {
        let g = chung_lu(&[0.0; 10], 1).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn chung_lu_rejects_negative() {
        assert!(chung_lu(&[1.0, -1.0], 1).is_err());
        assert!(chung_lu(&[f64::INFINITY], 1).is_err());
    }

    #[test]
    fn power_law_degrees_skewed() {
        let g = power_law(500, 2.5, 8.0, 42).unwrap();
        // Earlier vertices get higher expected degree.
        let head: usize = (0..10).map(|v| g.degree(v)).sum();
        let tail: usize = (490..500).map(|v| g.degree(v)).sum();
        assert!(head > tail, "head degree {head} should exceed tail {tail}");
        assert!(g.max_degree() > (2.0 * g.avg_degree()) as usize);
    }

    #[test]
    fn power_law_rejects_bad_params() {
        assert!(power_law(10, 1.0, 4.0, 1).is_err());
        assert!(power_law(10, 2.5, -1.0, 1).is_err());
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(path(6).num_edges(), 5);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(cycle(2).num_edges(), 1); // degrades to path
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(star(6).degree(0), 5);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert_eq!(disjoint_edges(5).num_edges(), 5);
        assert_eq!(disjoint_edges(5).max_degree(), 1);
    }

    #[test]
    fn planted_matching_holds_perfect_matching() {
        let g = planted_matching(200, 4.0, 9).unwrap();
        assert_eq!(g.num_vertices(), 200);
        for i in 0..100u32 {
            assert!(g.has_edge(2 * i, 2 * i + 1), "planted edge {i} missing");
        }
        // Noise roughly doubles the planted edge count at avg degree 4.
        assert!(g.num_edges() > 200, "noise edges present");
        assert_eq!(
            planted_matching(200, 4.0, 9).unwrap(),
            g,
            "deterministic in seed"
        );
        assert!(planted_matching(10, -1.0, 0).is_err());
        assert_eq!(planted_matching(0, 4.0, 0).unwrap().num_vertices(), 0);
        assert_eq!(planted_matching(1, 4.0, 0).unwrap().num_edges(), 0);
    }

    #[test]
    fn geometric_tiny_radius_grid_stays_small() {
        // The flat grid is capped near √n cells per side; a tiny radius
        // must neither allocate a huge table nor miss edges.
        let g = random_geometric(64, 1e-6, 3).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(300, 3, 1).unwrap();
        assert_eq!(g.num_vertices(), 300);
        // Each of the 296 non-seed vertices adds exactly 3 edges (distinct
        // targets, no duplicates possible for a fresh vertex).
        assert_eq!(g.num_edges(), 6 + 296 * 3);
        // Preferential attachment concentrates degree on early vertices.
        let early: usize = (0..10).map(|v| g.degree(v)).sum();
        let late: usize = (290..300).map(|v| g.degree(v)).sum();
        assert!(early > 2 * late, "early {early} vs late {late}");
        assert!(g.max_degree() >= 3);
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(10, 0, 1).is_err());
        assert!(barabasi_albert(10, 10, 1).is_err());
    }

    #[test]
    fn watts_strogatz_no_rewiring_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 20 * 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "ring lattice is 4-regular");
        }
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && !g.has_edge(0, 3));
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_edge_budget() {
        let g = watts_strogatz(100, 6, 0.3, 2).unwrap();
        // Rewiring can only merge into existing edges, never add.
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250, "most edges survive dedup");
    }

    #[test]
    fn watts_strogatz_rejects_bad_params() {
        assert!(watts_strogatz(10, 3, 0.1, 1).is_err(), "odd k");
        assert!(watts_strogatz(10, 10, 0.1, 1).is_err(), "k >= n");
        assert!(watts_strogatz(10, 4, 1.5, 1).is_err(), "beta > 1");
    }

    #[test]
    fn sbm_block_structure() {
        let g = stochastic_block_model(&[50, 50], 0.3, 0.01, 3).unwrap();
        assert_eq!(g.num_vertices(), 100);
        let intra = g
            .edges()
            .iter()
            .filter(|e| (e.u() < 50) == (e.v() < 50))
            .count();
        let inter = g.num_edges() - intra;
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn sbm_degenerate_cases() {
        let g = stochastic_block_model(&[10], 1.0, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 45, "single block at p=1 is complete");
        let g = stochastic_block_model(&[], 0.5, 0.5, 1).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert!(stochastic_block_model(&[5], 2.0, 0.0, 1).is_err());
    }

    #[test]
    fn geometric_radius_extremes() {
        let g = random_geometric(50, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
        let g = random_geometric(50, 1.5, 1).unwrap();
        assert_eq!(g.num_edges(), 50 * 49 / 2, "radius covers the whole square");
        assert!(random_geometric(50, -0.1, 1).is_err());
    }

    #[test]
    fn geometric_matches_brute_force() {
        // The grid-bucket construction must agree with the O(n²) check.
        let n = 120;
        let r = 0.15;
        let g = random_geometric(n, r, 7).unwrap();
        // Recompute points with the same RNG stream.
        let mut rng = SmallRng::seed_from_u64(7);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut expect = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                let d2 = (pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2);
                if d2 <= r * r {
                    expect += 1;
                    assert!(g.has_edge(u as u32, v as u32), "missing edge {u}-{v}");
                }
            }
        }
        assert_eq!(g.num_edges(), expect);
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn disjoint_union_copies() {
        let g = cycle(5);
        let u = disjoint_union(&g, 3);
        assert_eq!(u.num_vertices(), 15);
        assert_eq!(u.num_edges(), 15);
        let (_, k) = u.connected_components();
        assert_eq!(k, 3);
    }
}
