//! Seeded random and structured graph generators.
//!
//! These produce the workloads for the experiment harness: Erdős–Rényi
//! `G(n,p)` / `G(n,m)` graphs, random bipartite graphs (the ad-allocation
//! scenarios), Chung–Lu power-law graphs (social networks, the motivating
//! workload of the paper's introduction), and assorted structured graphs
//! used as worst cases and unit-test fixtures.
//!
//! All generators are deterministic in their `seed` argument.
//!
//! # Parallel generation
//!
//! The hot generators ([`gnp`], [`gnm`], [`bipartite_gnp`],
//! [`barabasi_albert`], [`random_geometric`]) have `*_with` variants that
//! chunk the sampling over an [`ExecutorConfig`]. The decomposition is
//! **caller-fixed** — chunk boundaries and per-chunk RNG streams are
//! functions of `(n, seed)` alone, never of the thread count — so the output
//! graph is *thread-count-invariant*: `Sequential` and `Threaded{k}` produce
//! byte-identical graphs for every `k`. Chunk 0 continues the historical
//! sequential stream (`chunk_rng`), so every workload small enough to fit
//! one chunk (all the pinned scenario sizes) is bit-identical to the
//! generators the regression pins froze.

use crate::error::GraphError;
use crate::graph::{Edge, Graph, GraphBuilder, VertexId};
use crate::rng::hash2;
use mmvc_substrate::ExecutorConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Left-rows per task in the chunked `G(n,p)` sampler. Set to 2¹⁶ so that
/// every historically measured workload — the experiment binaries sweep
/// `gnp` up to `n = 2¹⁶` (E1) — stays on the single-chunk (legacy-stream)
/// path; only the scale tier (`n ≥ 2²⁰`) actually chunks.
const GNP_ROW_CHUNK: usize = 1 << 16;

/// Sample quota per task in the chunked `G(n,m)` sampler.
const GNM_CHUNK: usize = 1 << 16;

/// Below this many cross pairs, [`bipartite_gnp`] keeps the historical
/// per-pair Bernoulli stream (the pinned path); above it, geometric skip
/// sampling takes over — at the scale-tier sizes the per-pair loop would be
/// `Θ(n²)` coin flips.
const BIP_DENSE_MAX_PAIRS: usize = 1 << 23;

/// Left rows per task in the skip-sampling bipartite path.
const BIP_ROW_CHUNK: usize = 1 << 12;

/// Below this `n`, [`barabasi_albert`] runs the historical exact sequential
/// process; above it, attachment is batched into fixed windows (see
/// [`barabasi_albert_with`]).
const BA_EXACT_MAX: usize = 1 << 13;

/// Vertices per attachment window in the batched Barabási–Albert path.
const BA_WINDOW: usize = 1 << 12;

/// Points per task in the chunked geometric-graph sampler.
const GEO_POINT_CHUNK: usize = 1 << 13;

/// Grid cells per task in the geometric edge scan.
const GEO_CELL_CHUNK: usize = 1 << 12;

/// Number of canonical pairs `(u, v)`, `u < v`, strictly before row `u` in
/// the row-major enumeration of the `n`-vertex pair space.
fn pair_row_offset(n: u64, u: u64) -> u64 {
    // u·(2n − u − 1) / 2, computed in u128 so it is exact for any u32 n.
    ((u as u128 * (2 * n as u128 - u as u128 - 1)) / 2) as u64
}

/// Decodes a linear index `k ∈ [0, n(n−1)/2)` into the `k`-th canonical
/// pair `(u, v)`, `u < v`, in row-major order — the inverse of the
/// triangular offset above. Row-major index order equals packed
/// `(u << 32) | v` order, so sorted indices decode to sorted edges.
fn pair_from_index(n: u64, k: u64) -> (u32, u32) {
    debug_assert!((k as u128) < n as u128 * (n as u128 - 1) / 2);
    // Float seed for the row: solve u² − (2n−1)u + 2k = 0, then correct
    // the ±1 rounding slop with exact integer offsets.
    let nf = n as f64;
    let disc = ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * k as f64).max(0.0);
    let mut u = (((2.0 * nf - 1.0) - disc.sqrt()) / 2.0) as u64;
    u = u.min(n.saturating_sub(2));
    while u > 0 && pair_row_offset(n, u) > k {
        u -= 1;
    }
    while u + 1 < n && pair_row_offset(n, u + 1) <= k {
        u += 1;
    }
    let v = u + 1 + (k - pair_row_offset(n, u));
    debug_assert!(v < n);
    (u as u32, v as u32)
}

/// The RNG of sampling chunk `chunk` for a generator seeded with `seed`.
///
/// Chunk 0 **is** the historical sequential stream, so any graph that fits
/// in one chunk is bit-identical to the pre-parallel generators (that is
/// what keeps the regression pins frozen). Later chunks get independent
/// streams derived from `(seed, chunk)` — never from the thread count.
fn chunk_rng(seed: u64, chunk: usize) -> SmallRng {
    if chunk == 0 {
        SmallRng::seed_from_u64(seed)
    } else {
        SmallRng::seed_from_u64(hash2(seed, chunk as u64))
    }
}

/// Capacity estimate for a Binomial(`pairs`, `p`) edge count: the mean plus
/// four standard deviations (reallocations are then vanishingly rare).
fn binomial_capacity(pairs: f64, p: f64) -> usize {
    let mean = pairs * p;
    (mean + 4.0 * (mean.max(1.0)).sqrt() + 16.0) as usize
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skip sampling, so the running time is
/// `O(n + |E|)` rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
///
/// # Examples
///
/// ```
/// use mmvc_graph::generators::gnp;
/// let g = gnp(100, 0.05, 7)?;
/// assert_eq!(g.num_vertices(), 100);
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    gnp_with(n, p, seed, &ExecutorConfig::default())
}

/// [`gnp`] with an explicit executor: row ranges of fixed size are sampled
/// in parallel, each from its own seed-derived RNG stream (`chunk_rng`),
/// so the graph is byte-identical for every thread count — and identical to
/// the historical sequential generator whenever the rows fit one chunk.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn gnp_with(n: usize, p: f64, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "p",
            message: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    if p == 0.0 || n < 2 {
        return Ok(GraphBuilder::new(n).build());
    }
    if p == 1.0 {
        return Ok(complete(n));
    }
    let pairs = n as f64 * (n - 1) as f64 / 2.0;
    let mut b = GraphBuilder::with_capacity_in(n, binomial_capacity(pairs, p), exec);
    // Geometric skip sampling: per row `u`, jump between successive
    // successes of a Bernoulli(p) stream over columns `u+1..n`, so the
    // running time is proportional to the number of edges generated.
    let log_q = (1.0 - p).ln();
    let rows = n - 1;
    // Chunk 0 is the historical stream *and* the historical arithmetic:
    // the division below rounds exactly like the pre-scale generator, so
    // every pinned workload stays bit-identical.
    let sample_rows_legacy = |rng: &mut SmallRng, lo: usize, hi: usize, out: &mut Vec<Edge>| {
        for row in lo..hi {
            let mut col = row as i64; // previous column; first candidate is row+1
            loop {
                let r: f64 = rng.gen::<f64>();
                // Failures before the next success in the Bernoulli(p) stream.
                let skip = ((1.0 - r).ln() / log_q).floor() as i64;
                col += 1 + skip.max(0);
                if col >= n as i64 {
                    break;
                }
                out.push(Edge::new(row as u32, col as u32));
            }
        }
    };
    let tasks = rows.div_ceil(GNP_ROW_CHUNK);
    if tasks <= 1 {
        let mut rng = chunk_rng(seed, 0);
        let mut out = Vec::new();
        sample_rows_legacy(&mut rng, 0, rows, &mut out);
        b.extend_edges(out).expect("in range");
    } else {
        // Scale-tier chunks (≥ 1) take the fast branchless form: the
        // reciprocal is hoisted so the inner loop is one log, one
        // multiply and integer adds — no division, no data-dependent
        // branch besides the row-exhausted check. Chunks emit packed
        // `(u << 32) | v` words straight into pooled buffers.
        let inv_log_q = 1.0 / log_q;
        let chunks: Vec<Vec<u64>> = exec.run(tasks, |c| {
            let mut rng = chunk_rng(seed, c);
            let lo = c * GNP_ROW_CHUNK;
            let hi = (lo + GNP_ROW_CHUNK).min(rows);
            // Rows [lo, hi) own columns (row, n): expected count per row
            // is p·(n−1−row).
            let row_pairs: f64 = (lo..hi).map(|r| (n - 1 - r) as f64).sum();
            let cap = binomial_capacity(row_pairs, p);
            let mut out = exec.take_u64(cap);
            if c == 0 {
                let mut edges = Vec::with_capacity(cap);
                sample_rows_legacy(&mut rng, lo, hi, &mut edges);
                out.extend(edges.iter().map(|e| ((e.u() as u64) << 32) | e.v() as u64));
            } else {
                for row in lo..hi {
                    let row_word = (row as u64) << 32;
                    let mut col = row as i64;
                    loop {
                        let r: f64 = rng.gen::<f64>();
                        let skip = ((1.0 - r).ln() * inv_log_q).floor() as i64;
                        col += 1 + skip.max(0);
                        if col >= n as i64 {
                            break;
                        }
                        out.push(row_word | col as u64);
                    }
                }
            }
            out
        });
        for chunk in chunks {
            b.extend_packed(&chunk);
            exec.recycle_u64(chunk);
        }
    }
    Ok(b.build_with(exec))
}

/// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly at random.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds `n·(n−1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    gnm_with(n, m, seed, &ExecutorConfig::default())
}

/// [`gnm`] with an explicit executor. Fixed-size sample quotas are drawn in
/// parallel, one seed-derived RNG stream per quota chunk; cross-chunk
/// collisions are deduplicated in chunk order and a final sequential
/// top-up stream (chunk index `tasks`) replaces them, so exactly `m`
/// distinct edges come out regardless of thread count.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds `n·(n−1)/2`.
pub fn gnm_with(n: usize, m: usize, seed: u64, exec: &ExecutorConfig) -> Result<Graph, GraphError> {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_m {
        return Err(GraphError::InvalidParameter {
            name: "m",
            message: format!("requested {m} edges but K_{n} has only {max_m}"),
        });
    }
    let mut b = GraphBuilder::with_capacity_in(n, m, exec);
    let sample_distinct =
        |rng: &mut SmallRng, quota: usize, set: &mut std::collections::HashSet<(u32, u32)>| {
            while set.len() < quota {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                set.insert(key);
            }
        };
    // Rejection sampling is fine while m ≤ max_m/2; otherwise sample the
    // complement (dense graphs are necessarily small — sequential is fine).
    if m * 2 <= max_m {
        let tasks = m.div_ceil(GNM_CHUNK).max(1);
        if tasks <= 1 {
            // The historical single-stream path, bit-for-bit.
            let mut rng = chunk_rng(seed, 0);
            let mut chosen = std::collections::HashSet::with_capacity(m * 2);
            sample_distinct(&mut rng, m, &mut chosen);
            for (u, v) in chosen {
                b.add_edge(u, v).expect("in range");
            }
        } else {
            // Scale path: every chunk draws a fixed quota of uniform
            // linear indices into the n(n−1)/2 canonical pair space (one
            // seed-derived stream each), the sorted union is deduplicated,
            // and skip-sampled top-up sweeps repair the collision
            // shortfall — no hash table anywhere, and every buffer comes
            // from the scratch arena.
            let total_pairs = pair_row_offset(n as u64, n as u64 - 1);
            let mut chosen = exec.take_u64(m + 16);
            let quotas: Vec<Vec<u64>> = exec.run(tasks, |c| {
                let quota = GNM_CHUNK.min(m - c * GNM_CHUNK);
                let mut rng = chunk_rng(seed, c);
                let mut local = exec.take_u64(quota);
                for _ in 0..quota {
                    local.push(rng.gen_range(0..total_pairs));
                }
                local
            });
            for q in quotas {
                chosen.extend_from_slice(&q);
                exec.recycle_u64(q);
            }
            chosen.sort_unstable();
            chosen.dedup();
            // Top-up rounds: sweep the pair space with a geometric skip
            // walk whose hit rate is sized to twice the shortfall (fresh
            // stream per round), keeping the first `short` new hits. The
            // walk is strictly increasing, so hits are sorted and
            // distinct by construction; truncating a sweep keeps its
            // low-index prefix, a bias of O(shortfall / m) — the
            // shortfall is the cross-chunk collision count, vanishingly
            // small next to m.
            let mut round = 0usize;
            while chosen.len() < m {
                let short = m - chosen.len();
                let free = total_pairs - chosen.len() as u64;
                let p_hit = ((2.0 * short as f64) / free as f64).min(1.0);
                let log_q = (1.0 - p_hit).ln();
                let mut rng = chunk_rng(seed, tasks + round);
                let mut fresh: Vec<u64> = Vec::with_capacity(short);
                let mut cand: u64 = 0;
                loop {
                    let r: f64 = rng.gen::<f64>();
                    let skip = ((1.0 - r).ln() / log_q).floor().max(0.0) as u64;
                    cand = cand.saturating_add(skip);
                    if cand >= total_pairs || fresh.len() == short {
                        break;
                    }
                    if chosen.binary_search(&cand).is_err() {
                        fresh.push(cand);
                    }
                    cand += 1;
                }
                chosen.extend_from_slice(&fresh);
                chosen.sort_unstable();
                round += 1;
            }
            // Row-major pair-index order equals packed edge order, so the
            // sorted indices decode straight into a sorted packed run.
            let mut packed = exec.take_u64(m);
            for &k in chosen.iter() {
                let (u, v) = pair_from_index(n as u64, k);
                packed.push(((u as u64) << 32) | v as u64);
            }
            b.extend_packed(&packed);
            exec.recycle_u64(packed);
            exec.recycle_u64(chosen);
        }
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        let holes = max_m - m;
        let mut removed = std::collections::HashSet::with_capacity(holes * 2);
        sample_distinct(&mut rng, holes, &mut removed);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !removed.contains(&(u, v)) {
                    b.add_edge(u, v).expect("in range");
                }
            }
        }
    }
    Ok(b.build_with(exec))
}

/// Random bipartite graph: sides `0..n_left` and `n_left..n_left+n_right`,
/// each cross pair an edge independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn bipartite_gnp(
    n_left: usize,
    n_right: usize,
    p: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    bipartite_gnp_with(n_left, n_right, p, seed, &ExecutorConfig::default())
}

/// [`bipartite_gnp`] with an explicit executor. Below
/// `BIP_DENSE_MAX_PAIRS` cross pairs this is the historical per-pair
/// Bernoulli stream (bit-for-bit — the path the scenario pins froze);
/// above it, rows are chunked and sampled with geometric skips, one
/// seed-derived RNG stream per chunk, so a `2^38`-pair scale workload
/// costs `O(|E|)` draws instead of `Θ(n²)` and is thread-count-invariant.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn bipartite_gnp_with(
    n_left: usize,
    n_right: usize,
    p: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "p",
            message: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let n = n_left + n_right;
    let pairs = n_left.saturating_mul(n_right);
    if pairs <= BIP_DENSE_MAX_PAIRS || p == 1.0 {
        let mut b = GraphBuilder::with_capacity(n, binomial_capacity(pairs as f64, p));
        let mut rng = SmallRng::seed_from_u64(seed);
        for u in 0..n_left as u32 {
            for v in 0..n_right as u32 {
                if rng.gen::<f64>() < p {
                    b.add_edge(u, n_left as u32 + v).expect("in range");
                }
            }
        }
        return Ok(b.build_with(exec));
    }
    let mut b = GraphBuilder::with_capacity_in(n, binomial_capacity(pairs as f64, p), exec);
    if p > 0.0 {
        let log_q = (1.0 - p).ln();
        // Chunk 0 keeps the historical division; later chunks hoist the
        // reciprocal (same fast form as the scale-tier `gnp` chunks).
        let inv_log_q = 1.0 / log_q;
        let tasks = n_left.div_ceil(BIP_ROW_CHUNK);
        let chunks: Vec<Vec<u64>> = exec.run(tasks, |c| {
            let mut rng = chunk_rng(seed, c);
            let lo = c * BIP_ROW_CHUNK;
            let hi = (lo + BIP_ROW_CHUNK).min(n_left);
            let row_pairs = (hi - lo) as f64 * n_right as f64;
            let mut out = exec.take_u64(binomial_capacity(row_pairs, p));
            for row in lo..hi {
                let row_word = (row as u64) << 32;
                let mut col = -1i64; // first candidate is column 0
                loop {
                    let r: f64 = rng.gen::<f64>();
                    let skip = if c == 0 {
                        ((1.0 - r).ln() / log_q).floor() as i64
                    } else {
                        ((1.0 - r).ln() * inv_log_q).floor() as i64
                    };
                    col += 1 + skip.max(0);
                    if col >= n_right as i64 {
                        break;
                    }
                    out.push(row_word | (n_left as i64 + col) as u64);
                }
            }
            out
        });
        for chunk in chunks {
            b.extend_packed(&chunk);
            exec.recycle_u64(chunk);
        }
    }
    Ok(b.build_with(exec))
}

/// Chung–Lu random graph with expected degree sequence `weights`:
/// pair `{u, v}` is an edge with probability `min(1, w_u w_v / Σw)`.
///
/// With `w_i ∝ i^(−1/(β−1))` this yields a power-law degree distribution
/// with exponent `β`; see [`power_law`].
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if any weight is negative or
/// non-finite, or all weights are zero while `weights` is non-empty.
pub fn chung_lu(weights: &[f64], seed: u64) -> Result<Graph, GraphError> {
    let n = weights.len();
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(GraphError::InvalidParameter {
            name: "weights",
            message: "all expected degrees must be finite and non-negative".into(),
        });
    }
    let total: f64 = weights.iter().sum();
    // The expected edge count is at most Σ_{u<v} w_u·w_v / Σw ≤ Σw / 2.
    let mut b = GraphBuilder::with_capacity(n, binomial_capacity(total / 2.0, 1.0));
    if n < 2 || total <= 0.0 {
        if n > 0 && total <= 0.0 && !weights.is_empty() {
            // All-zero weights: valid, produces the empty graph.
            return Ok(b.build());
        }
        return Ok(b.build());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Sort vertices by descending weight for the standard efficient
    // Miller–Hagberg style generation; here we keep the O(n²) loop for
    // clarity but skip rows with negligible weight mass.
    for u in 0..n {
        if weights[u] == 0.0 {
            continue;
        }
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    Ok(b.build())
}

/// Power-law graph: Chung–Lu with weights `w_i = c · (i+1)^(−1/(β−1))`,
/// scaled so the average expected degree is `avg_degree`.
///
/// Typical social networks have `β ∈ [2, 3]`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `beta <= 1` or
/// `avg_degree < 0`.
pub fn power_law(n: usize, beta: f64, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if beta <= 1.0 || !beta.is_finite() {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            message: format!("power-law exponent must be > 1, got {beta}"),
        });
    }
    if avg_degree < 0.0 || !avg_degree.is_finite() {
        return Err(GraphError::InvalidParameter {
            name: "avg_degree",
            message: format!("average degree must be non-negative, got {avg_degree}"),
        });
    }
    let exponent = -1.0 / (beta - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 && n > 0 {
        let scale = avg_degree * n as f64 / sum;
        for w in &mut weights {
            *w *= scale;
        }
    }
    chung_lu(&weights, seed)
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(n.saturating_sub(1)) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v).expect("in range");
        }
    }
    b.build()
}

/// The path `P_n` on `n` vertices (`n − 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        b.add_edge(v - 1, v).expect("in range");
    }
    b.build()
}

/// The cycle `C_n` (requires `n >= 3` to be simple; smaller `n` degrades to
/// a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v).expect("in range");
    }
    if n >= 3 {
        b.add_edge(n as u32 - 1, 0).expect("in range");
    }
    b.build()
}

/// The star `K_{1,n−1}` with center `0`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        b.add_edge(0, v).expect("in range");
    }
    b.build()
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    grid_with(rows, cols, &ExecutorConfig::default())
}

/// [`grid`] with an explicit executor. Edge enumeration is deterministic
/// and cheap; the executor drives the CSR build, which dominates at the
/// scale tier.
pub fn grid_with(rows: usize, cols: usize, exec: &ExecutorConfig) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    // Exactly rows·(cols−1) horizontal + (rows−1)·cols vertical edges.
    let m = rows * cols.saturating_sub(1) + rows.saturating_sub(1) * cols;
    let mut b = GraphBuilder::with_capacity(n, m);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("in range");
            }
        }
    }
    b.build_with(exec)
}

/// The complete bipartite graph `K_{a,b}` (left side `0..a`).
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_size, a * b_size);
    for u in 0..a as u32 {
        for v in 0..b_size as u32 {
            b.add_edge(u, a as u32 + v).expect("in range");
        }
    }
    b.build()
}

/// A disjoint union of `k` copies of `g` (vertex ids shifted per copy).
pub fn disjoint_union(g: &Graph, k: usize) -> Graph {
    let n = g.num_vertices();
    let mut b = GraphBuilder::with_capacity(n * k, g.num_edges() * k);
    for copy in 0..k {
        let off = (copy * n) as u32;
        for e in g.edges() {
            b.add_edge(e.u() + off, e.v() + off).expect("in range");
        }
    }
    b.build()
}

/// A graph of `k` disjoint edges (a perfect matching on `2k` vertices) —
/// the extremal instance where a maximum matching equals `n/2` and the MIS
/// equals `n/2`.
pub fn disjoint_edges(k: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(2 * k, k);
    for i in 0..k as u32 {
        b.add_edge(2 * i, 2 * i + 1).expect("in range");
    }
    b.build()
}

/// Planted-matching graph: a perfect matching on `2⌊n/2⌋` vertices
/// (edges `{2i, 2i+1}`) hidden under `G(n, noise_avg_degree/(n−1))`
/// noise edges.
///
/// The planted matching pins the maximum-matching size at `⌊n/2⌋`, so
/// matching algorithms can be scored against a known optimum without an
/// exact solver; the noise keeps the instance non-trivial.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `noise_avg_degree` is
/// negative or not finite.
pub fn planted_matching(n: usize, noise_avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    planted_matching_with(n, noise_avg_degree, seed, &ExecutorConfig::default())
}

/// [`planted_matching`] with an explicit executor (the noise layer is a
/// [`gnp_with`] draw, which carries the parallelism).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `noise_avg_degree` is
/// negative or not finite.
pub fn planted_matching_with(
    n: usize,
    noise_avg_degree: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    if !noise_avg_degree.is_finite() || noise_avg_degree < 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "noise_avg_degree",
            message: format!("noise degree must be non-negative, got {noise_avg_degree}"),
        });
    }
    let p = if n >= 2 {
        (noise_avg_degree / (n - 1) as f64).min(1.0)
    } else {
        0.0
    };
    let noise = gnp_with(n, p, seed, exec)?;
    let mut b = GraphBuilder::with_capacity(n, noise.num_edges() + n / 2);
    for i in 0..(n / 2) as u32 {
        b.add_edge(2 * i, 2 * i + 1).expect("in range");
    }
    for e in noise.edges() {
        b.add_edge(e.u(), e.v()).expect("in range");
    }
    Ok(b.build_with(exec))
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_attach` existing vertices chosen with
/// probability proportional to their degree.
///
/// Produces power-law degree tails by growth rather than by explicit
/// weights (contrast [`power_law`]/Chung–Lu).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m_attach == 0` or
/// `m_attach >= n`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<Graph, GraphError> {
    barabasi_albert_with(n, m_attach, seed, &ExecutorConfig::default())
}

/// [`barabasi_albert`] with an explicit executor.
///
/// Below `BA_EXACT_MAX` vertices this is the historical exact sequential
/// process (the path the scenario pins froze). Above it, attachment is
/// *batched*: vertices arrive in fixed windows of `BA_WINDOW`, every
/// vertex in a window samples its targets from the degree distribution as
/// of the window's start (per-vertex RNG streams derived from
/// `(seed, vertex)`), and the endpoint list is extended in vertex order
/// between windows. This is the standard delayed-update parallelization of
/// preferential attachment: within-window degree updates are deferred —
/// a `O(window/n)` perturbation of the attachment probabilities — in
/// exchange for embarrassingly parallel windows and thread-count-invariant
/// output.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m_attach == 0` or
/// `m_attach >= n`.
pub fn barabasi_albert_with(
    n: usize,
    m_attach: usize,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    if m_attach == 0 || m_attach >= n.max(1) {
        return Err(GraphError::InvalidParameter {
            name: "m_attach",
            message: format!("need 0 < m_attach < n, got {m_attach} with n = {n}"),
        });
    }
    let seed_size = m_attach + 1;
    let total_edges = seed_size * (seed_size - 1) / 2 + (n - seed_size) * m_attach;
    let mut b = GraphBuilder::with_capacity(n, total_edges);
    // Repeated-endpoints list: sampling a uniform element is sampling
    // proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * total_edges);
    // Seed clique on m_attach + 1 vertices.
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            b.add_edge(u, v).expect("in range");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    if n <= BA_EXACT_MAX {
        // Historical exact process, bit-for-bit.
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in seed_size as u32..n as u32 {
            let mut targets = std::collections::HashSet::with_capacity(m_attach * 2);
            // Rejection-sample distinct targets by degree.
            while targets.len() < m_attach {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                targets.insert(t);
            }
            // Sort before inserting: HashSet iteration order would otherwise
            // leak into the endpoints list (and thus later samples), making
            // the generator nondeterministic across processes.
            let mut targets: Vec<VertexId> = targets.into_iter().collect();
            targets.sort_unstable();
            for t in targets {
                b.add_edge(v, t).expect("in range");
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        return Ok(b.build_with(exec));
    }
    // Batched windows: sample in parallel from the frozen prefix, apply
    // updates in vertex order between windows.
    let mut next = seed_size;
    while next < n {
        let hi = (next + BA_WINDOW).min(n);
        let frozen = endpoints.len();
        let batch: Vec<Vec<VertexId>> = exec.run(hi - next, |i| {
            let v = (next + i) as u64;
            let mut rng = SmallRng::seed_from_u64(hash2(seed, v));
            let mut targets = std::collections::HashSet::with_capacity(m_attach * 2);
            while targets.len() < m_attach {
                let t = endpoints[rng.gen_range(0..frozen)];
                targets.insert(t);
            }
            let mut targets: Vec<VertexId> = targets.into_iter().collect();
            targets.sort_unstable();
            targets
        });
        for (i, targets) in batch.iter().enumerate() {
            let v = (next + i) as u32;
            for &t in targets {
                b.add_edge(v, t).expect("in range");
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        next = hi;
    }
    Ok(b.build_with(exec))
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbors (`k` even), with each edge
/// rewired to a uniform endpoint with probability `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    watts_strogatz_with(n, k, beta, seed, &ExecutorConfig::default())
}

/// [`watts_strogatz`] with an explicit executor. The rewiring stream is a
/// single sequential RNG by construction (each edge's rewire decision
/// consumes from one stream), so sampling stays sequential; the executor
/// drives the CSR build, which dominates at the scale tier.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz_with(
    n: usize,
    k: usize,
    beta: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    if !k.is_multiple_of(2) || k >= n.max(1) {
        return Err(GraphError::InvalidParameter {
            name: "k",
            message: format!("need even k < n, got k = {k}, n = {n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            message: format!("rewiring probability must be in [0, 1], got {beta}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // At most n·k/2 lattice edges survive rewiring/dedup.
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for u in 0..n {
        for step in 1..=k / 2 {
            let v = (u + step) % n;
            if u == v {
                continue;
            }
            let (mut a, mut c) = (u as u32, v as u32);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniform non-self target.
                for _ in 0..16 {
                    let t = rng.gen_range(0..n as u32);
                    if t != a {
                        c = t;
                        break;
                    }
                }
            }
            if a == c {
                continue;
            }
            if a > c {
                std::mem::swap(&mut a, &mut c);
            }
            b.add_edge(a, c).expect("in range");
        }
    }
    Ok(b.build_with(exec))
}

/// Stochastic block model: `sizes[i]` vertices in block `i`; pair
/// probability `p_in` within a block, `p_out` across blocks. Vertices are
/// numbered block by block.
///
/// Generalizes the planted-partition workloads used by the correlation
/// clustering example.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless both probabilities are
/// in `[0, 1]`.
pub fn stochastic_block_model(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(GraphError::InvalidParameter {
                name,
                message: format!("probability must be in [0, 1], got {p}"),
            });
        }
    }
    let n: usize = sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (i, &s) in sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(i, s));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let intra_pairs: f64 = sizes
        .iter()
        .map(|&s| s as f64 * s.saturating_sub(1) as f64 / 2.0)
        .sum();
    let all_pairs = n as f64 * n.saturating_sub(1) as f64 / 2.0;
    let expected = intra_pairs * p_in + (all_pairs - intra_pairs) * p_out;
    let mut b = GraphBuilder::with_capacity(n, binomial_capacity(expected.max(1.0), 1.0));
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if p > 0.0 && rng.gen::<f64>() < p {
                b.add_edge(u as u32, v as u32).expect("in range");
            }
        }
    }
    Ok(b.build())
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance at most `radius`.
///
/// The classic model for wireless/sensor networks (the vertex-cover
/// monitoring workload).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `radius` is negative or
/// not finite.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<Graph, GraphError> {
    random_geometric_with(n, radius, seed, &ExecutorConfig::default())
}

/// [`random_geometric`] with an explicit executor: point coordinates are
/// drawn in fixed-size chunks (one seed-derived RNG stream each — chunk 0
/// continues the historical stream) and the 3×3 grid-neighborhood edge scan
/// is chunked over cells. Both decompositions are functions of `(n, seed)`
/// alone, so the graph is byte-identical for every thread count.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `radius` is negative or
/// not finite.
pub fn random_geometric_with(
    n: usize,
    radius: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<Graph, GraphError> {
    if !radius.is_finite() || radius < 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "radius",
            message: format!("radius must be non-negative, got {radius}"),
        });
    }
    let point_tasks = n.div_ceil(GEO_POINT_CHUNK).max(1);
    let points: Vec<(f64, f64)> = if point_tasks <= 1 {
        let mut rng = chunk_rng(seed, 0);
        (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    } else {
        exec.run(point_tasks, |c| {
            let mut rng = chunk_rng(seed, c);
            let lo = c * GEO_POINT_CHUNK;
            let hi = (lo + GEO_POINT_CHUNK).min(n);
            (lo..hi)
                .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
                .collect::<Vec<_>>()
        })
        .concat()
    };
    // Grid-bucket the points so the expected running time is
    // O(n + |E|) instead of O(n²). The grid is a CSR-style flat table —
    // one offsets array and one payload array, built by a counting-sort
    // pass — so bucketing costs two allocations (both pooled) instead of
    // one `Vec` per cell. The side length is capped near √n so the table
    // stays O(n) cells even for tiny radii; a cell is then at least
    // `radius` wide either way, so the neighborhood stencil below remains
    // exhaustive.
    let side = ((1.0 / radius.max(1e-9)).floor() as usize).clamp(1, (n as f64).sqrt() as usize + 1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x * side as f64) as usize).min(side - 1),
            ((y * side as f64) as usize).min(side - 1),
        )
    };
    let cells = side * side;
    // Counting-sort pass 1: cell id per point + per-cell counts.
    let mut cell_id = exec.take_u32(n);
    let mut grid_off = exec.take_u32(cells + 1);
    grid_off.resize(cells + 1, 0);
    for &(x, y) in &points {
        let (cx, cy) = cell_of(x, y);
        let c = cy * side + cx;
        cell_id.push(c as u32);
        grid_off[c + 1] += 1;
    }
    for c in 0..cells {
        grid_off[c + 1] += grid_off[c];
    }
    // Pass 2: scatter point ids, cursor per cell.
    let mut cursor = exec.take_u32(cells);
    cursor.extend_from_slice(&grid_off[..cells]);
    let mut payload = exec.take_u32(n);
    payload.resize(n, 0);
    for (i, &c) in cell_id.iter().enumerate() {
        let at = cursor[c as usize] as usize;
        payload[at] = i as u32;
        cursor[c as usize] += 1;
    }
    exec.recycle_u32(cell_id);
    exec.recycle_u32(cursor);
    let bucket = |c: usize| -> &[u32] { &payload[grid_off[c] as usize..grid_off[c + 1] as usize] };
    let r2 = radius * radius;
    let expected = binomial_capacity(
        n as f64 * n.saturating_sub(1) as f64 / 2.0,
        (std::f64::consts::PI * r2).min(1.0),
    );
    let mut b = GraphBuilder::with_capacity_in(n, expected, exec);
    // Edge scan, chunked over cells: each task owns a fixed cell range and
    // emits each candidate pair exactly once — within-cell pairs plus the
    // four forward-neighbor cells (the half stencil), half the probes of
    // the full 3×3 sweep. Cell ownership never depends on the thread
    // count, and the builder's sort + dedup normalizes emission order.
    let scan: Vec<Vec<u64>> = exec.run_chunked(cells, GEO_CELL_CHUNK, |cell_range| {
        let mut out = exec.take_u64(0);
        let probe = |u: u32, v: u32, out: &mut Vec<u64>| {
            let (x1, y1) = points[u as usize];
            let (x2, y2) = points[v as usize];
            let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
            if d2 <= r2 {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                out.push(((a as u64) << 32) | b as u64);
            }
        };
        for cell in cell_range {
            let (cy, cx) = (cell / side, cell % side);
            let members = bucket(cell);
            if members.is_empty() {
                continue;
            }
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    probe(u, v, &mut out);
                }
            }
            // Forward half-plane: (+1,0), (−1,+1), (0,+1), (+1,+1).
            for (dx, dy) in [(1i64, 0i64), (-1, 1), (0, 1), (1, 1)] {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= side as i64 || ny >= side as i64 {
                    continue;
                }
                let neighbors = bucket(ny as usize * side + nx as usize);
                for &u in members {
                    for &v in neighbors {
                        probe(u, v, &mut out);
                    }
                }
            }
        }
        out
    });
    for chunk in scan {
        b.extend_packed(&chunk);
        exec.recycle_u64(chunk);
    }
    exec.recycle_u32(grid_off);
    exec.recycle_u32(payload);
    Ok(b.build_with(exec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).unwrap().num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).unwrap().num_edges(), 45);
        assert_eq!(gnp(0, 0.5, 1).unwrap().num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).unwrap().num_edges(), 0);
    }

    #[test]
    fn gnp_rejects_bad_p() {
        assert!(gnp(10, -0.1, 1).is_err());
        assert!(gnp(10, 1.5, 1).is_err());
        assert!(gnp(10, f64::NAN, 1).is_err());
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, 99).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edges {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(50, 0.2, 3).unwrap(), gnp(50, 0.2, 3).unwrap());
        assert_ne!(gnp(50, 0.2, 3).unwrap(), gnp(50, 0.2, 4).unwrap());
    }

    #[test]
    fn gnm_exact_count() {
        for &m in &[0usize, 1, 10, 44, 45] {
            let g = gnm(10, m, 5).unwrap();
            assert_eq!(g.num_edges(), m);
        }
        assert!(gnm(10, 46, 5).is_err());
    }

    #[test]
    fn gnm_dense_path_uses_complement() {
        let g = gnm(20, 180, 2).unwrap(); // max is 190, complement path
        assert_eq!(g.num_edges(), 180);
    }

    #[test]
    fn bipartite_is_bipartite() {
        let g = bipartite_gnp(20, 30, 0.3, 8).unwrap();
        assert_eq!(g.num_vertices(), 50);
        for e in g.edges() {
            assert!(e.u() < 20 && e.v() >= 20, "edge {:?} crosses sides", e);
        }
    }

    #[test]
    fn chung_lu_zero_weights_empty() {
        let g = chung_lu(&[0.0; 10], 1).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn chung_lu_rejects_negative() {
        assert!(chung_lu(&[1.0, -1.0], 1).is_err());
        assert!(chung_lu(&[f64::INFINITY], 1).is_err());
    }

    #[test]
    fn power_law_degrees_skewed() {
        let g = power_law(500, 2.5, 8.0, 42).unwrap();
        // Earlier vertices get higher expected degree.
        let head: usize = (0..10).map(|v| g.degree(v)).sum();
        let tail: usize = (490..500).map(|v| g.degree(v)).sum();
        assert!(head > tail, "head degree {head} should exceed tail {tail}");
        assert!(g.max_degree() > (2.0 * g.avg_degree()) as usize);
    }

    #[test]
    fn power_law_rejects_bad_params() {
        assert!(power_law(10, 1.0, 4.0, 1).is_err());
        assert!(power_law(10, 2.5, -1.0, 1).is_err());
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(path(6).num_edges(), 5);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(cycle(2).num_edges(), 1); // degrades to path
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(star(6).degree(0), 5);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert_eq!(disjoint_edges(5).num_edges(), 5);
        assert_eq!(disjoint_edges(5).max_degree(), 1);
    }

    #[test]
    fn planted_matching_holds_perfect_matching() {
        let g = planted_matching(200, 4.0, 9).unwrap();
        assert_eq!(g.num_vertices(), 200);
        for i in 0..100u32 {
            assert!(g.has_edge(2 * i, 2 * i + 1), "planted edge {i} missing");
        }
        // Noise roughly doubles the planted edge count at avg degree 4.
        assert!(g.num_edges() > 200, "noise edges present");
        assert_eq!(
            planted_matching(200, 4.0, 9).unwrap(),
            g,
            "deterministic in seed"
        );
        assert!(planted_matching(10, -1.0, 0).is_err());
        assert_eq!(planted_matching(0, 4.0, 0).unwrap().num_vertices(), 0);
        assert_eq!(planted_matching(1, 4.0, 0).unwrap().num_edges(), 0);
    }

    #[test]
    fn geometric_tiny_radius_grid_stays_small() {
        // The flat grid is capped near √n cells per side; a tiny radius
        // must neither allocate a huge table nor miss edges.
        let g = random_geometric(64, 1e-6, 3).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(300, 3, 1).unwrap();
        assert_eq!(g.num_vertices(), 300);
        // Each of the 296 non-seed vertices adds exactly 3 edges (distinct
        // targets, no duplicates possible for a fresh vertex).
        assert_eq!(g.num_edges(), 6 + 296 * 3);
        // Preferential attachment concentrates degree on early vertices.
        let early: usize = (0..10).map(|v| g.degree(v)).sum();
        let late: usize = (290..300).map(|v| g.degree(v)).sum();
        assert!(early > 2 * late, "early {early} vs late {late}");
        assert!(g.max_degree() >= 3);
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(10, 0, 1).is_err());
        assert!(barabasi_albert(10, 10, 1).is_err());
    }

    #[test]
    fn watts_strogatz_no_rewiring_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 20 * 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "ring lattice is 4-regular");
        }
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && !g.has_edge(0, 3));
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_edge_budget() {
        let g = watts_strogatz(100, 6, 0.3, 2).unwrap();
        // Rewiring can only merge into existing edges, never add.
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250, "most edges survive dedup");
    }

    #[test]
    fn watts_strogatz_rejects_bad_params() {
        assert!(watts_strogatz(10, 3, 0.1, 1).is_err(), "odd k");
        assert!(watts_strogatz(10, 10, 0.1, 1).is_err(), "k >= n");
        assert!(watts_strogatz(10, 4, 1.5, 1).is_err(), "beta > 1");
    }

    #[test]
    fn sbm_block_structure() {
        let g = stochastic_block_model(&[50, 50], 0.3, 0.01, 3).unwrap();
        assert_eq!(g.num_vertices(), 100);
        let intra = g
            .edges()
            .iter()
            .filter(|e| (e.u() < 50) == (e.v() < 50))
            .count();
        let inter = g.num_edges() - intra;
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn sbm_degenerate_cases() {
        let g = stochastic_block_model(&[10], 1.0, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 45, "single block at p=1 is complete");
        let g = stochastic_block_model(&[], 0.5, 0.5, 1).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert!(stochastic_block_model(&[5], 2.0, 0.0, 1).is_err());
    }

    #[test]
    fn geometric_radius_extremes() {
        let g = random_geometric(50, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
        let g = random_geometric(50, 1.5, 1).unwrap();
        assert_eq!(g.num_edges(), 50 * 49 / 2, "radius covers the whole square");
        assert!(random_geometric(50, -0.1, 1).is_err());
    }

    #[test]
    fn geometric_matches_brute_force() {
        // The grid-bucket construction must agree with the O(n²) check.
        let n = 120;
        let r = 0.15;
        let g = random_geometric(n, r, 7).unwrap();
        // Recompute points with the same RNG stream.
        let mut rng = SmallRng::seed_from_u64(7);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut expect = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                let d2 = (pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2);
                if d2 <= r * r {
                    expect += 1;
                    assert!(g.has_edge(u as u32, v as u32), "missing edge {u}-{v}");
                }
            }
        }
        assert_eq!(g.num_edges(), expect);
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The executors every thread-count-invariance test compares.
    fn executors() -> [ExecutorConfig; 3] {
        [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(4),
        ]
    }

    #[test]
    fn gnp_multi_chunk_thread_invariant() {
        // n > GNP_ROW_CHUNK forces multiple sampling chunks.
        let n = GNP_ROW_CHUNK + 5000;
        let [seq, t2, t4] = executors();
        let a = gnp_with(n, 4.0 / n as f64, 9, &seq).unwrap();
        assert!(a.num_edges() > 0);
        assert_eq!(a, gnp_with(n, 4.0 / n as f64, 9, &t2).unwrap());
        assert_eq!(a, gnp_with(n, 4.0 / n as f64, 9, &t4).unwrap());
    }

    #[test]
    fn gnp_single_chunk_matches_legacy_stream() {
        // The pinned contract: one chunk ⇒ the historical sequential
        // stream, reproduced here directly.
        let (n, p, seed) = (500, 0.02, 0xC0FFEE);
        let g = gnp(n, p, seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let log_q = (1.0 - p).ln();
        let mut legacy = GraphBuilder::new(n);
        for row in 0..(n - 1) as u32 {
            let mut col = row as i64;
            loop {
                let r: f64 = rng.gen::<f64>();
                let skip = ((1.0 - r).ln() / log_q).floor() as i64;
                col += 1 + skip.max(0);
                if col >= n as i64 {
                    break;
                }
                legacy.add_edge(row, col as u32).unwrap();
            }
        }
        assert_eq!(g, legacy.build());
    }

    #[test]
    fn pair_index_decode_is_exact() {
        // Exhaustive inverse check at small n: the k-th canonical pair in
        // row-major order decodes back from k, in order.
        for n in [2u64, 3, 7, 100] {
            let mut k = 0u64;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    assert_eq!(pair_from_index(n, k), (u, v), "n={n} k={k}");
                    k += 1;
                }
            }
            assert_eq!(k, n * (n - 1) / 2);
        }
        // Spot-check the float seed + integer correction at scale-tier
        // sizes, including both row boundaries.
        for n in [1u64 << 20, (1 << 24) + 17] {
            let total = n * (n - 1) / 2;
            for k in [0, 1, n - 2, n - 1, n, total / 2, total - 2, total - 1] {
                let (u, v) = pair_from_index(n, k);
                assert!(u < v && (v as u64) < n);
                let back = pair_row_offset(n, u as u64) + (v as u64 - u as u64 - 1);
                assert_eq!(back, k, "n={n} k={k} decoded ({u},{v})");
            }
        }
    }

    #[test]
    fn gnm_multi_chunk_exact_count_and_thread_invariant() {
        // m > GNM_CHUNK forces multiple quota chunks (plus the top-up).
        let n = 200_000;
        let m = GNM_CHUNK + 20_000;
        let [seq, t2, t4] = executors();
        let a = gnm_with(n, m, 11, &seq).unwrap();
        assert_eq!(a.num_edges(), m, "quota + top-up must land exactly on m");
        assert_eq!(a, gnm_with(n, m, 11, &t2).unwrap());
        assert_eq!(a, gnm_with(n, m, 11, &t4).unwrap());
    }

    #[test]
    fn bipartite_skip_sampling_thread_invariant_and_bipartite() {
        // pairs > BIP_DENSE_MAX_PAIRS with > 1 row chunk.
        let (l, r) = (
            BIP_ROW_CHUNK * 2,
            (BIP_DENSE_MAX_PAIRS / BIP_ROW_CHUNK) / 2 + 7,
        );
        assert!(l * r > BIP_DENSE_MAX_PAIRS);
        let p = 4.0 / r as f64;
        let [seq, t2, t4] = executors();
        let a = bipartite_gnp_with(l, r, p, 3, &seq).unwrap();
        assert!(a.num_edges() > 0);
        for e in a.edges() {
            assert!(e.u() < l as u32 && e.v() >= l as u32, "{e:?} crosses sides");
        }
        assert_eq!(a, bipartite_gnp_with(l, r, p, 3, &t2).unwrap());
        assert_eq!(a, bipartite_gnp_with(l, r, p, 3, &t4).unwrap());
    }

    #[test]
    fn barabasi_albert_batched_structure_and_thread_invariance() {
        // n > BA_EXACT_MAX takes the batched-window path.
        let n = BA_EXACT_MAX + 3000;
        let [seq, t2, t4] = executors();
        let a = barabasi_albert_with(n, 3, 5, &seq).unwrap();
        // Every arrival still contributes exactly m_attach distinct edges.
        assert_eq!(a.num_edges(), 6 + (n - 4) * 3);
        let early: usize = (0..10).map(|v| a.degree(v)).sum();
        let late: usize = ((n - 10) as u32..n as u32).map(|v| a.degree(v)).sum();
        assert!(
            early > 2 * late,
            "preferential attachment survives batching"
        );
        assert_eq!(a, barabasi_albert_with(n, 3, 5, &t2).unwrap());
        assert_eq!(a, barabasi_albert_with(n, 3, 5, &t4).unwrap());
    }

    #[test]
    fn geometric_multi_chunk_thread_invariant() {
        let n = GEO_POINT_CHUNK * 2 + 123;
        let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
        let [seq, t2, t4] = executors();
        let a = random_geometric_with(n, r, 7, &seq).unwrap();
        assert!(a.num_edges() > 0);
        assert_eq!(a, random_geometric_with(n, r, 7, &t2).unwrap());
        assert_eq!(a, random_geometric_with(n, r, 7, &t4).unwrap());
    }

    #[test]
    fn planted_matching_with_thread_invariant() {
        let n = GNP_ROW_CHUNK * 2;
        let [seq, t2, t4] = executors();
        let a = planted_matching_with(n, 2.0, 13, &seq).unwrap();
        for i in 0..(n / 2) as u32 {
            assert!(a.has_edge(2 * i, 2 * i + 1));
        }
        assert_eq!(a, planted_matching_with(n, 2.0, 13, &t2).unwrap());
        assert_eq!(a, planted_matching_with(n, 2.0, 13, &t4).unwrap());
    }

    #[test]
    fn disjoint_union_copies() {
        let g = cycle(5);
        let u = disjoint_union(&g, 3);
        assert_eq!(u.num_vertices(), 15);
        assert_eq!(u.num_edges(), 15);
        let (_, k) = u.connected_components();
        assert_eq!(k, 3);
    }
}
