//! Edge-weighted graphs, used by the weighted-matching experiments
//! (Corollary 1.4 of the paper).

use crate::error::GraphError;
use crate::graph::{Edge, Graph};
use crate::matching::Matching;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simple undirected graph with a positive weight per edge.
///
/// Weights are keyed by the index of the edge in `graph().edges()` (the
/// canonical sorted edge list).
///
/// # Examples
///
/// ```
/// use mmvc_graph::{Graph, weighted::WeightedGraph};
/// let g = Graph::from_edges(3, vec![(0, 1), (1, 2)])?;
/// let wg = WeightedGraph::new(g, vec![2.0, 5.0]).unwrap();
/// assert_eq!(wg.weight(1), 5.0);
/// assert_eq!(wg.max_weight(), 5.0);
/// # Ok::<(), mmvc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// Wraps a graph with per-edge weights (`weights[i]` weights
    /// `graph.edges()[i]`).
    ///
    /// Returns `None` if the lengths mismatch or any weight is
    /// non-positive/non-finite.
    pub fn new(graph: Graph, weights: Vec<f64>) -> Option<Self> {
        if weights.len() != graph.num_edges() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return None;
        }
        Some(WeightedGraph { graph, weights })
    }

    /// Assigns every edge a uniform random weight in `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] unless `0 < lo <= hi` and
    /// both are finite.
    pub fn with_random_weights(
        graph: Graph,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
            return Err(GraphError::InvalidParameter {
                name: "weight range",
                message: format!("need 0 < lo <= hi, got [{lo}, {hi}]"),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights = (0..graph.num_edges())
            .map(|_| if lo == hi { lo } else { rng.gen_range(lo..=hi) })
            .collect();
        Ok(WeightedGraph { graph, weights })
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Weight of edge index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All edge weights, parallel to `graph().edges()`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Largest edge weight (`0` for edgeless graphs).
    pub fn max_weight(&self) -> f64 {
        self.weights.iter().cloned().fold(0.0, f64::max)
    }

    /// Total weight of a matching on this graph.
    ///
    /// Edges of the matching are looked up by endpoints in the canonical
    /// edge list.
    ///
    /// # Panics
    ///
    /// Panics if a matching edge is not an edge of the graph.
    pub fn matching_weight(&self, m: &Matching) -> f64 {
        m.edges()
            .iter()
            .map(|e| self.weight(self.edge_index(*e)))
            .sum()
    }

    /// Index of edge `e` in the canonical edge list.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of the graph.
    pub fn edge_index(&self, e: Edge) -> usize {
        self.graph
            .edges()
            .index_of(&e)
            .unwrap_or_else(|| panic!("{e:?} is not an edge of the graph"))
    }

    /// Exact maximum-weight matching by exhaustive search — exponential;
    /// for verification on tiny graphs only.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 edges.
    pub fn brute_force_max_weight_matching(&self) -> f64 {
        assert!(
            self.graph.num_edges() <= 24,
            "brute force restricted to tiny graphs"
        );
        let edges = self.graph.edges();
        let mut best = 0.0f64;
        let m = edges.len();
        for mask in 0u32..(1 << m) {
            let mut used = vec![false; self.graph.num_vertices()];
            let mut ok = true;
            let mut w = 0.0;
            for (i, e) in edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    if used[e.u() as usize] || used[e.v() as usize] {
                        ok = false;
                        break;
                    }
                    used[e.u() as usize] = true;
                    used[e.v() as usize] = true;
                    w += self.weights[i];
                }
            }
            if ok {
                best = best.max(w);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn construction_validates() {
        let g = generators::path(3);
        assert!(
            WeightedGraph::new(g.clone(), vec![1.0]).is_none(),
            "length mismatch"
        );
        assert!(
            WeightedGraph::new(g.clone(), vec![1.0, -2.0]).is_none(),
            "negative"
        );
        assert!(
            WeightedGraph::new(g.clone(), vec![1.0, f64::NAN]).is_none(),
            "nan"
        );
        assert!(WeightedGraph::new(g, vec![1.0, 2.0]).is_some());
    }

    #[test]
    fn random_weights_in_range() {
        let g = generators::gnp(30, 0.2, 1).unwrap();
        let wg = WeightedGraph::with_random_weights(g, 1.0, 10.0, 2).unwrap();
        assert!(wg.weights().iter().all(|&w| (1.0..=10.0).contains(&w)));
        assert!(wg.max_weight() <= 10.0);
    }

    #[test]
    fn random_weights_bad_range() {
        let g = generators::path(3);
        assert!(WeightedGraph::with_random_weights(g.clone(), 0.0, 1.0, 1).is_err());
        assert!(WeightedGraph::with_random_weights(g.clone(), 2.0, 1.0, 1).is_err());
        assert!(WeightedGraph::with_random_weights(g, f64::NAN, 1.0, 1).is_err());
    }

    #[test]
    fn matching_weight_sums() {
        let g = generators::path(4); // edges {0,1},{1,2},{2,3}
        let wg = WeightedGraph::new(g.clone(), vec![1.0, 10.0, 100.0]).unwrap();
        let m = Matching::new(&g, vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(wg.matching_weight(&m), 101.0);
    }

    #[test]
    fn brute_force_prefers_heavy_middle() {
        // Path with heavy middle edge: best matching = middle alone.
        let g = generators::path(4);
        let wg = WeightedGraph::new(g, vec![1.0, 10.0, 1.0]).unwrap();
        assert_eq!(wg.brute_force_max_weight_matching(), 10.0);
    }

    #[test]
    fn constant_weight_range_allowed() {
        let g = generators::path(3);
        let wg = WeightedGraph::with_random_weights(g, 2.0, 2.0, 1).unwrap();
        assert!(wg.weights().iter().all(|&w| w == 2.0));
    }
}
