//! End-to-end tests of the serving daemon over real sockets: endpoint
//! contracts, the full algorithm × scenario matrix byte-identical to the
//! driver, cache-hit soundness, worker-count invariance under concurrent
//! clients, and content-addressed file workloads.

use mmvc_bench::Json;
use mmvc_core::run::AlgorithmKind;
use mmvc_graph::scenarios;
use mmvc_serve::{canonical_report_body, client, parse_run_body, ServeConfig, Server};

/// Starts a daemon on an ephemeral port; returns its address and a
/// join/shutdown closure.
fn start(workers: usize, cache_capacity: usize) -> (String, impl FnOnce()) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    (addr, move || {
        handle.shutdown();
        thread.join().unwrap().unwrap();
    })
}

/// The canonical bytes the daemon must serve for a spec: the driver run
/// locally, wall zeroed, deterministic renderer.
fn local_reference(body: &str) -> Vec<u8> {
    let spec = parse_run_body(body.as_bytes()).expect("valid spec body");
    let report = mmvc_core::run::run(&spec).expect("local run succeeds");
    canonical_report_body(report)
}

#[test]
fn endpoints_answer_and_validate() {
    let (addr, stop) = start(2, 16);

    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.text()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    let sc = client::get(&addr, "/scenarios").unwrap();
    assert_eq!(sc.status, 200);
    let doc = Json::parse(&sc.text()).unwrap();
    assert_eq!(
        doc.get("scenarios").and_then(Json::as_arr).unwrap().len(),
        scenarios::all().len()
    );

    let alg = client::get(&addr, "/algorithms").unwrap();
    let doc = Json::parse(&alg.text()).unwrap();
    assert_eq!(
        doc.get("algorithms").and_then(Json::as_arr).unwrap().len(),
        AlgorithmKind::ALL.len()
    );

    let metrics = client::get(&addr, "/metrics").unwrap();
    let doc = Json::parse(&metrics.text()).unwrap();
    assert!(doc.get("cache").is_some());
    assert!(doc.get("latency_ms").is_some());

    // Error contracts: unknown path, wrong method, malformed bodies.
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/run").unwrap().status, 405);
    assert_eq!(
        client::request(&addr, "POST", "/healthz", b"")
            .unwrap()
            .status,
        405
    );
    for bad_body in [
        &b"not json"[..],
        br#"{"scenario": "gnp-sparse"}"#,
        br#"{"algorithm": "nope", "scenario": "gnp-sparse"}"#,
        br#"{"algorithm": "greedy-mis", "scenario": "unknown"}"#,
        br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "bogus": 1}"#,
        br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 1, "n": 2}"#,
    ] {
        let resp = client::request(&addr, "POST", "/run", bad_body).unwrap();
        assert_eq!(
            resp.status,
            400,
            "body {:?}",
            String::from_utf8_lossy(bad_body)
        );
        let doc = Json::parse(&resp.text()).unwrap();
        assert!(doc.get("error").is_some());
    }

    stop();
}

#[test]
fn full_matrix_matches_driver_byte_for_byte() {
    // The acceptance matrix: every algorithm kind × every registered
    // scenario served with a body byte-identical to the local driver.
    let (addr, stop) = start(3, 256);
    for kind in AlgorithmKind::ALL {
        for sc in scenarios::all() {
            let body = format!(
                r#"{{"algorithm": "{}", "scenario": "{}", "n": 64, "seed": 11}}"#,
                kind.name(),
                sc.name
            );
            let resp = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200, "{} on {}: {}", kind, sc.name, resp.text());
            assert_eq!(
                resp.body,
                local_reference(&body),
                "{} on {} must be byte-identical to the driver",
                kind,
                sc.name
            );
        }
    }
    stop();
}

#[test]
fn scale_tier_is_refused_by_default_and_admitted_by_max_n() {
    // Default cap: a scale scenario resolves to its 2^20 default size and
    // must be refused explicitly — naming the cap and the remedy — even
    // though the spec body itself carries no `n`.
    let (addr, stop) = start(2, 16);
    let body = br#"{"algorithm": "greedy-mis", "scenario": "scale-gnp-1m"}"#;
    let resp = client::request(&addr, "POST", "/run", body).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    let err = Json::parse(&resp.text()).unwrap();
    let message = err.get("error").and_then(Json::as_str).unwrap().to_string();
    assert!(message.contains("capped at n"), "got: {message}");
    assert!(message.contains("--max-n"), "names the remedy: {message}");

    // An explicit n above the cap is refused the same way.
    let big = br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 200000}"#;
    assert_eq!(
        client::request(&addr, "POST", "/run", big).unwrap().status,
        400
    );
    stop();

    // A daemon with a raised cap admits the same scale spec (down-sized
    // here so the test stays fast — the admission logic is what's under
    // test, and it keys on the cap, not the workload family).
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_capacity: 16,
        max_n: 1 << 21,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    let small_scale = br#"{"algorithm": "luby-mis", "scenario": "scale-gnp-1m", "n": 512}"#;
    let resp = client::request(&addr, "POST", "/run", small_scale).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    assert_eq!(metrics.get("max_n").and_then(Json::as_i64), Some(1 << 21));
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn repeated_spec_hits_the_cache_with_identical_bytes() {
    let (addr, stop) = start(2, 16);
    let body = r#"{"algorithm": "mpc-matching", "scenario": "power-law", "n": 96, "seed": 3}"#;

    let cold = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    let warm = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(
        warm.body, cold.body,
        "a hit must be byte-identical to the cold run"
    );
    assert_eq!(cold.body, local_reference(body));

    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_i64), Some(1));
    stop();
}

#[test]
fn concurrent_clients_get_identical_bytes_for_any_worker_count() {
    // N parallel clients replaying the same spec mix must observe
    // byte-identical bodies per spec — whatever the worker count, and
    // wherever in the interleaving a request lands (cold or cached).
    let mix: Vec<String> = [
        ("greedy-mis", "gnp-sparse"),
        ("luby-mis", "power-law"),
        ("central", "bipartite"),
        ("filtering", "geometric"),
        ("vertex-cover", "gnm"),
        ("local-mis", "grid"),
    ]
    .iter()
    .map(|(alg, sc)| format!(r#"{{"algorithm": "{alg}", "scenario": "{sc}", "n": 80, "seed": 5}}"#))
    .collect();
    let references: Vec<Vec<u8>> = mix.iter().map(|b| local_reference(b)).collect();

    for workers in [1, 4] {
        let (addr, stop) = start(workers, 64);
        let clients = 6;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let addr = &addr;
                let mix = &mix;
                let references = &references;
                scope.spawn(move || {
                    // Each client walks the mix at a different phase, so
                    // cold runs and hits interleave differently per client.
                    for step in 0..mix.len() {
                        let i = (step + c) % mix.len();
                        let resp =
                            client::request(addr, "POST", "/run", mix[i].as_bytes()).unwrap();
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        assert_eq!(
                            resp.body, references[i],
                            "client {c} step {step} (workers={workers}) diverged"
                        );
                    }
                });
            }
        });
        stop();
    }
}

#[test]
fn graph_file_workloads_are_content_addressed() {
    let dir = std::env::temp_dir();
    let path = dir.join("mmvc_serve_graph_file_test.txt");
    let path_str = path.to_str().unwrap().to_string();
    let write_graph = |n: usize, p: f64, seed: u64| {
        let g = mmvc_graph::generators::gnp(n, p, seed).unwrap();
        let mut buf = Vec::new();
        mmvc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
    };

    let (addr, stop) = start(2, 16);
    let body = format!(r#"{{"algorithm": "greedy-mis", "graph_file": "{path_str}", "seed": 9}}"#);

    write_graph(60, 0.1, 1);
    let first = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-cache"), Some("miss"));
    let doc = Json::parse(&first.text()).unwrap();
    assert_eq!(
        doc.get("graph").unwrap().get("n").and_then(Json::as_i64),
        Some(60)
    );
    assert_eq!(
        doc.get("scenario").and_then(Json::as_str),
        Some(format!("file:{path_str}").as_str())
    );

    let again = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, first.body);

    // Rewriting the file must change the address: same path, new content,
    // fresh run — never a stale hit.
    write_graph(72, 0.1, 2);
    let changed = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(
        changed.header("x-cache"),
        Some("miss"),
        "stale hit after file edit"
    );
    let doc = Json::parse(&changed.text()).unwrap();
    assert_eq!(
        doc.get("graph").unwrap().get("n").and_then(Json::as_i64),
        Some(72)
    );

    // Error contracts around file workloads.
    let with_n = format!(r#"{{"algorithm": "greedy-mis", "graph_file": "{path_str}", "n": 10}}"#);
    assert_eq!(
        client::request(&addr, "POST", "/run", with_n.as_bytes())
            .unwrap()
            .status,
        400
    );
    let missing = r#"{"algorithm": "greedy-mis", "graph_file": "/no/such/file.txt"}"#;
    let resp = client::request(&addr, "POST", "/run", missing.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("/no/such/file.txt"));

    // An unparseable file is rejected without echoing its contents —
    // the daemon must not be usable as a remote file reader.
    let secret = "hunter2-this-line-must-not-leak";
    std::fs::write(&path, format!("{secret}\n")).unwrap();
    let resp = client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.text().contains("cannot parse line 1"),
        "{}",
        resp.text()
    );
    assert!(
        !resp.text().contains(secret),
        "file contents leaked into the error body"
    );

    std::fs::remove_file(&path).ok();
    stop();
}

#[test]
fn served_work_is_bounded() {
    let (addr, stop) = start(1, 4);
    // A tiny body demanding enormous work is rejected up front, before
    // any allocation or graph generation.
    let huge = r#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 4000000000}"#;
    let resp = client::request(&addr, "POST", "/run", huge.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("capped"), "{}", resp.text());
    stop();
}

#[test]
fn lru_eviction_is_visible_in_metrics() {
    let (addr, stop) = start(1, 2);
    let bodies: Vec<String> = (0..3)
        .map(|seed| {
            format!(
                r#"{{"algorithm": "luby-mis", "scenario": "gnp-sparse", "n": 64, "seed": {seed}}}"#
            )
        })
        .collect();
    for body in &bodies {
        client::request(&addr, "POST", "/run", body.as_bytes()).unwrap();
    }
    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("entries").and_then(Json::as_i64), Some(2));
    assert_eq!(cache.get("capacity").and_then(Json::as_i64), Some(2));
    // The evicted (oldest) spec misses again; the newest still hits.
    let evicted = client::request(&addr, "POST", "/run", bodies[0].as_bytes()).unwrap();
    assert_eq!(evicted.header("x-cache"), Some("miss"));
    let kept = client::request(&addr, "POST", "/run", bodies[2].as_bytes()).unwrap();
    assert_eq!(kept.header("x-cache"), Some("hit"));
    stop();
}
