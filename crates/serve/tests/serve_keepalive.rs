//! Keep-alive and framing tests against the reactor over real sockets:
//! pipelining in a single TCP segment (with response ordering across
//! the fast path and the worker pool), heads split across reads, idle
//! timeouts, oversized-request rejection, the per-connection request
//! quota, `Expect: 100-continue`, and byte-identity of keep-alive
//! responses against the local driver.

use mmvc_bench::Json;
use mmvc_serve::{canonical_report_body, client, parse_run_body, ServeConfig, Server};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(config: ServeConfig) -> (String, impl FnOnce()) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    (addr, move || {
        handle.shutdown();
        thread.join().unwrap().unwrap();
    })
}

fn default_start() -> (String, impl FnOnce()) {
    start(ServeConfig {
        workers: 2,
        cache_capacity: 32,
        ..ServeConfig::default()
    })
}

/// The canonical bytes the daemon must serve for a spec: the driver run
/// locally, wall zeroed, deterministic renderer — the `mmvc run --json
/// --canonical` bytes.
fn local_reference(body: &str) -> Vec<u8> {
    let spec = parse_run_body(body.as_bytes()).expect("valid spec body");
    let report = mmvc_core::run::run(&spec).expect("local run succeeds");
    canonical_report_body(report)
}

#[test]
fn pipelined_requests_in_one_segment_answer_in_order() {
    // One worker: both /run jobs are parsed before either executes, so
    // they serialize through the pool and the second finds the first's
    // report in the cache. With more workers they could race and both
    // miss (each would still serve the same canonical bytes).
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        cache_capacity: 32,
        ..ServeConfig::default()
    });
    let body = r#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 64, "seed": 7}"#;
    let run_req = format!(
        "POST /run HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    // run (cold → worker pool), healthz (reactor fast path), run again
    // (hit). The healthz answer is computed long before the cold run
    // finishes, yet must not overtake it on the wire.
    let pipeline = format!("{run_req}GET /healthz HTTP/1.1\r\n\r\n{run_req}");

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(pipeline.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let first = client::read_response(&mut reader).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(first.body, local_reference(body));

    let second = client::read_response(&mut reader).unwrap();
    assert_eq!(second.status, 200);
    let doc = Json::parse(&second.text()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    let third = client::read_response(&mut reader).unwrap();
    assert_eq!(third.header("x-cache"), Some("hit"));
    assert_eq!(third.body, first.body, "hit is byte-identical");
    assert!(third.keep_alive());
    stop();
}

#[test]
fn partial_heads_across_many_reads_still_parse() {
    let (addr, stop) = default_start();
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Dribble one request byte-group by byte-group: the reactor must
    // accumulate across reads without blocking anything else.
    for chunk in [
        "GET /hea",
        "lthz HT",
        "TP/1.1\r",
        "\nhost: x",
        "\r\n",
        "\r\n",
    ] {
        stream.write_all(chunk.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let resp = client::read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(resp.status, 200);
    stop();
}

#[test]
fn idle_connections_are_disconnected() {
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        cache_capacity: 4,
        idle_timeout_ms: 150,
        ..ServeConfig::default()
    });
    // A connection that never sends a byte is reaped by the idle timer:
    // the read observes EOF well before the client-side timeout.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(
        stream.read(&mut buf).unwrap(),
        0,
        "server closed the idle conn"
    );

    // A connection idling *between* keep-alive requests is reaped too.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.keep_alive());
    let mut buf = [0u8; 16];
    assert_eq!(
        reader.get_mut().read(&mut buf).unwrap(),
        0,
        "server closed after the idle window"
    );
    stop();
}

#[test]
fn oversized_heads_and_bodies_are_rejected() {
    let (addr, stop) = default_start();

    // A head that can never terminate within the cap: 431, then close.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n",
        "a".repeat(20 * 1024)
    );
    stream.write_all(huge_header.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 431);
    assert!(!resp.keep_alive());
    let mut rest = Vec::new();
    reader.get_mut().read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closed after the 431");

    // A declared body over the cap: 413 before any body byte is read.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /run HTTP/1.1\r\ncontent-length: 5242880\r\n\r\n")
        .unwrap();
    let resp = client::read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(resp.status, 413);
    assert!(!resp.keep_alive());
    stop();
}

#[test]
fn request_quota_closes_the_connection_politely() {
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        cache_capacity: 4,
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    });
    let mut conn = client::Conn::connect(&addr).unwrap();
    let first = conn.request("GET", "/healthz", b"").unwrap();
    assert!(first.keep_alive());
    let second = conn.request("GET", "/healthz", b"").unwrap();
    assert!(second.keep_alive());
    // The quota'd final response still answers — with `connection:
    // close` so the client knows to reconnect.
    let third = conn.request("GET", "/healthz", b"").unwrap();
    assert_eq!(third.status, 200);
    assert!(!third.keep_alive(), "last allowed response closes");
    assert!(
        conn.request("GET", "/healthz", b"").is_err(),
        "the connection is gone after the quota"
    );
    stop();
}

#[test]
fn expect_continue_is_acknowledged() {
    let (addr, stop) = default_start();
    let body = r#"{"algorithm": "luby-mis", "scenario": "gnp-sparse", "n": 64, "seed": 2}"#;
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /run HTTP/1.1\r\ncontent-length: {}\r\nexpect: 100-continue\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let interim = client::read_response(&mut reader).unwrap();
    assert_eq!(interim.status, 100);
    reader.get_mut().write_all(body.as_bytes()).unwrap();
    let resp = client::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, local_reference(body));
    stop();
}

#[test]
fn keepalive_responses_are_byte_identical_and_reuse_is_counted() {
    let (addr, stop) = default_start();
    let specs: Vec<String> = (0..4)
        .map(|seed| {
            format!(
                r#"{{"algorithm": "mpc-matching", "scenario": "power-law", "n": 80, "seed": {seed}}}"#
            )
        })
        .collect();

    // One connection, many requests: every body (cold or hot) pinned to
    // the `mmvc run --canonical` bytes.
    let mut conn = client::Conn::connect(&addr).unwrap();
    for pass in 0..2 {
        for body in &specs {
            let resp = conn.request("POST", "/run", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.header("x-cache"),
                Some(if pass == 0 { "miss" } else { "hit" })
            );
            assert_eq!(resp.body, local_reference(body), "pass {pass} diverged");
        }
    }
    assert_eq!(conn.requests_sent(), 8);

    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    assert_eq!(metrics.get("connections").and_then(Json::as_i64), Some(2));
    assert_eq!(
        metrics.get("keepalive_reuses").and_then(Json::as_i64),
        Some(7),
        "8 requests on one connection = 7 reuses"
    );
    let bytes = metrics.get("bytes_served").and_then(Json::as_i64).unwrap();
    assert!(bytes > 0, "bytes_served counts written responses");
    let latency = metrics.get("latency_ms").unwrap();
    assert!(latency.get("p999").is_some(), "p999 is published");
    stop();
}
