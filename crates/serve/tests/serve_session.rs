//! Session-scoped serving over real sockets: create → run → update →
//! run, generation-keyed cache invalidation, the metrics counters, and
//! the satellite staleness guarantee — a stale generation is **never**
//! served as `x-cache: store`, even across a restart over the same
//! store directory.

use mmvc_bench::Json;
use mmvc_serve::{client, ServeConfig, Server};
use std::path::{Path, PathBuf};

const SPEC: &str = r#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 128, "seed": 7}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmvc_serve_session_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store_dir: Option<&Path>) -> (String, impl FnOnce()) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_capacity: 32,
        store_dir: store_dir.map(|p| p.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    (addr, move || {
        handle.shutdown();
        thread.join().unwrap().unwrap();
    })
}

fn post(addr: &str, path: &str, body: &str) -> client::Response {
    client::request(addr, "POST", path, body.as_bytes()).unwrap()
}

fn create_session(addr: &str) -> i64 {
    let resp = post(addr, "/session", SPEC);
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let doc = Json::parse(&resp.text()).unwrap();
    assert_eq!(doc.get("generation").and_then(Json::as_i64), Some(0));
    assert!(doc.get("num_edges").and_then(Json::as_i64).unwrap() > 0);
    doc.get("session").and_then(Json::as_i64).unwrap()
}

fn run_session(addr: &str, id: i64) -> client::Response {
    let resp = post(addr, "/run", &format!(r#"{{"session": {id}}}"#));
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    resp
}

fn metrics(addr: &str) -> Json {
    Json::parse(&client::get(addr, "/metrics").unwrap().text()).unwrap()
}

#[test]
fn session_lifecycle_update_invalidates_by_generation() {
    let (addr, stop) = start(None);
    let id = create_session(&addr);

    // First run executes (miss), repeat hits under the same generation.
    let cold = run_session(&addr, id);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let warm = run_session(&addr, id);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "hit serves the cached bytes");
    let report = Json::parse(&cold.text()).unwrap();
    assert_eq!(
        report.get("graph").unwrap().get("n").and_then(Json::as_i64),
        Some(128)
    );

    // An update bumps the generation: the next run must miss (the old
    // entry is unreachable under the new key) and reflect the mutation.
    let upd = post(
        &addr,
        "/update",
        &format!(r#"{{"session": {id}, "insert": [[0, 1], [0, 2]], "delete": [[5, 9]]}}"#),
    );
    assert_eq!(upd.status, 200, "body: {}", upd.text());
    let upd = Json::parse(&upd.text()).unwrap();
    assert_eq!(upd.get("generation").and_then(Json::as_i64), Some(1));
    assert_eq!(upd.get("inserted").and_then(Json::as_i64), Some(2));

    let after = run_session(&addr, id);
    assert_eq!(
        after.header("x-cache"),
        Some("miss"),
        "update invalidated the cached generation"
    );
    assert_ne!(after.body, cold.body, "the report reflects the mutation");
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("hit"));

    // Counters: one session, one update, visible in /metrics.
    let m = metrics(&addr);
    assert_eq!(m.get("sessions").and_then(Json::as_i64), Some(1));
    assert_eq!(m.get("updates").and_then(Json::as_i64), Some(1));
    stop();
}

#[test]
fn stale_generation_is_never_served_from_the_store() {
    // The satellite guarantee: session responses stay out of the disk
    // staleness path. With a store configured, session runs are cached
    // in memory only — nothing session-scoped is persisted — so a
    // restarted daemon (whose generations restart at 0) can never
    // answer a session run with `x-cache: store`.
    let dir = temp_dir("stale");
    let (addr, stop) = start(Some(&dir));
    let id = create_session(&addr);
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("miss"));
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("hit"));
    post(
        &addr,
        "/update",
        &format!(r#"{{"session": {id}, "insert": [[3, 4]]}}"#),
    );
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("miss"));
    stop();

    // Restart over the same store directory. Sessions are gone (the
    // old id answers 400) and a recreated session's first run is a
    // recomputation — never a store hit, even though the same spec at
    // generation 0 ran before the restart.
    let (addr, stop) = start(Some(&dir));
    let gone = post(&addr, "/run", &format!(r#"{{"session": {id}}}"#));
    assert_eq!(gone.status, 400, "sessions do not survive restarts");

    let fresh = create_session(&addr);
    let first = run_session(&addr, fresh);
    assert_ne!(
        first.header("x-cache"),
        Some("store"),
        "a stale generation must never come back from disk"
    );
    assert_eq!(first.header("x-cache"), Some("miss"));
    let m = metrics(&addr);
    assert_eq!(
        m.get("cache")
            .unwrap()
            .get("store_hits")
            .and_then(Json::as_i64),
        Some(0),
        "no session body was ever persisted"
    );
    stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_errors_are_refused_cleanly() {
    let (addr, stop) = start(None);

    // Unknown session.
    let resp = post(&addr, "/run", r#"{"session": 99}"#);
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("no such session"));

    // Updates validate: unknown fields, malformed pairs, self-loops,
    // out-of-range endpoints.
    let id = create_session(&addr);
    for (body, needle) in [
        (
            format!(r#"{{"session": {id}, "bogus": 1}}"#),
            "unknown field",
        ),
        (format!(r#"{{"session": {id}, "insert": [1, 2]}}"#), "pairs"),
        (
            format!(r#"{{"session": {id}, "insert": [[4, 4]]}}"#),
            "self-loop",
        ),
        (
            format!(r#"{{"session": {id}, "insert": [[0, 4096]]}}"#),
            "out of range",
        ),
        ("{\"insert\": [[0, 1]]}".to_string(), "required"),
    ] {
        let resp = post(&addr, "/update", &body);
        assert_eq!(resp.status, 400, "body `{body}` must be refused");
        assert!(
            resp.text().contains(needle),
            "`{body}` → `{}` (wanted `{needle}`)",
            resp.text()
        );
    }

    // A failed update never bumps the generation: the next run still
    // hits the entry cached before the failures.
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("miss"));
    assert_eq!(run_session(&addr, id).header("x-cache"), Some("hit"));

    // graph_file specs cannot take residence.
    let resp = post(
        &addr,
        "/session",
        r#"{"algorithm": "greedy-mis", "graph_file": "/tmp/nope.txt"}"#,
    );
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("session residence"));
    stop();
}

#[test]
fn matching_sessions_serve_incremental_reports() {
    let (addr, stop) = start(None);
    let resp = post(
        &addr,
        "/session",
        r#"{"algorithm": "one-plus-eps", "scenario": "gnp-sparse", "n": 96, "seed": 3}"#,
    );
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let id = Json::parse(&resp.text())
        .unwrap()
        .get("session")
        .and_then(Json::as_i64)
        .unwrap();

    assert_eq!(run_session(&addr, id).header("x-cache"), Some("miss"));
    post(
        &addr,
        "/update",
        &format!(r#"{{"session": {id}, "insert": [[10, 11]], "delete": [[0, 1]]}}"#),
    );
    let incr = run_session(&addr, id);
    assert_eq!(incr.header("x-cache"), Some("miss"));
    let report = Json::parse(&incr.text()).unwrap();
    // The incremental report passes the same witness validation cold
    // runs do, and says so in its metrics.
    let witnesses = report.get("witnesses").unwrap().as_arr().unwrap();
    assert!(witnesses
        .iter()
        .all(|w| w.get("valid").and_then(Json::as_bool) == Some(true)));
    let metrics_obj = report.get("metrics").unwrap();
    assert_eq!(
        metrics_obj.get("incremental").and_then(Json::as_bool),
        Some(true),
        "report: {}",
        incr.text()
    );
    stop();
}
