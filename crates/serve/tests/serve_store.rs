//! The persistent report store through the daemon's front door: a
//! restart keeps the hit rate, a corrupted entry degrades to a
//! recomputed miss (and is repaired on disk), and a daemon without
//! `--store-dir` demonstrably loses its cache across restarts.
//! Format-level corruption, version bumps, and writer races are covered
//! by the unit tests in `store.rs`; these tests pin the end-to-end
//! behavior over real sockets.

use mmvc_bench::Json;
use mmvc_serve::{canonical_report_body, client, parse_run_body, ServeConfig, Server};
use std::path::{Path, PathBuf};

const SPEC: &str = r#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 96, "seed": 11}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmvc_serve_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store_dir: Option<&Path>) -> (String, impl FnOnce()) {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_capacity: 16,
        store_dir: store_dir.map(|p| p.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run());
    (addr, move || {
        handle.shutdown();
        thread.join().unwrap().unwrap();
    })
}

fn run_spec(addr: &str) -> client::Response {
    let resp = client::request(addr, "POST", "/run", SPEC.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    resp
}

/// Every `.rpt` record file under the store root (the `tmp/` staging
/// directory is not part of the addressed namespace).
fn record_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.file_name().is_some_and(|n| n == "tmp") {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rpt") {
                found.push(path);
            }
        }
    }
    found
}

#[test]
fn restart_keeps_the_hit_rate() {
    let dir = temp_dir("restart");
    let reference = {
        let spec = parse_run_body(SPEC.as_bytes()).unwrap();
        canonical_report_body(mmvc_core::run::run(&spec).unwrap())
    };

    let (addr, stop) = start(Some(&dir));
    let cold = run_spec(&addr);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(cold.body, reference);
    assert_eq!(run_spec(&addr).header("x-cache"), Some("hit"));
    stop();
    assert_eq!(record_files(&dir).len(), 1, "one record persisted");

    // A new daemon over the same directory: the first request is a
    // memory miss answered from disk — no algorithm run — and the bytes
    // are still the canonical ones.
    let (addr, stop) = start(Some(&dir));
    let warm = run_spec(&addr);
    assert_eq!(warm.header("x-cache"), Some("store"));
    assert_eq!(warm.body, reference, "disk tier serves canonical bytes");
    // The store hit reloaded the memory tier.
    assert_eq!(run_spec(&addr).header("x-cache"), Some("hit"));

    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("store_hits").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(0));
    assert_eq!(
        metrics.get("store_dir").and_then(Json::as_str),
        Some(dir.to_string_lossy().as_ref())
    );
    stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_is_recomputed_and_repaired() {
    let dir = temp_dir("corrupt");
    let (addr, stop) = start(Some(&dir));
    let cold = run_spec(&addr);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    stop();

    let records = record_files(&dir);
    assert_eq!(records.len(), 1);
    let mut bytes = std::fs::read(&records[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // breaks the trailing checksum
    std::fs::write(&records[0], &bytes).unwrap();

    // The corrupt record is detected, discarded, and the run recomputes
    // — same canonical bytes, labeled a miss.
    let (addr, stop) = start(Some(&dir));
    let recomputed = run_spec(&addr);
    assert_eq!(recomputed.header("x-cache"), Some("miss"));
    assert_eq!(recomputed.body, cold.body);
    stop();

    // ... and the miss rewrote a valid record: the next restart serves
    // from disk again.
    let (addr, stop) = start(Some(&dir));
    assert_eq!(run_spec(&addr).header("x-cache"), Some("store"));
    stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_a_store_dir_restarts_forget() {
    let (addr, stop) = start(None);
    assert_eq!(run_spec(&addr).header("x-cache"), Some("miss"));
    assert_eq!(run_spec(&addr).header("x-cache"), Some("hit"));
    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().text()).unwrap();
    assert!(
        matches!(metrics.get("store_dir"), Some(Json::Null)),
        "store_dir is null when persistence is off"
    );
    stop();

    let (addr, stop) = start(None);
    assert_eq!(
        run_spec(&addr).header("x-cache"),
        Some("miss"),
        "no disk tier: the restarted daemon recomputes"
    );
    stop();
}
