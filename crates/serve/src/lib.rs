//! # mmvc-serve
//!
//! The run-serving daemon: the `mmvc` workspace's unified run driver
//! (`mmvc_core::run`) exposed over HTTP/1.1, built entirely on `std`
//! (hand-rolled HTTP over [`std::net::TcpListener`], the workspace's
//! own JSON model — no new dependencies, consistent with the
//! vendored-shim policy).
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /run` | a JSON [`RunSpec`] in, the canonical `RunReport` JSON out |
//! | `GET /scenarios` | the scenario registry |
//! | `GET /algorithms` | every [`AlgorithmKind`] |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | requests, cache hits/misses, latency percentiles, in-flight jobs |
//!
//! ## Why the cache is sound
//!
//! The run layer pins *report determinism*: a `RunReport` (minus wall
//! time) is a pure function of its spec, for every algorithm kind and
//! executor. The daemon therefore serves the **canonical body** — the
//! report JSON with `wall_ms` zeroed, exactly `mmvc run --json
//! --canonical` — and may memoize it keyed by the canonical serialized
//! spec ([`cache_key`]): a cache hit is byte-identical to a cold run *by
//! construction*, and the integration tests prove it byte-for-byte.
//! File workloads fold a content hash of the edge-list bytes into the
//! key, so editing the file can never alias a stale entry
//! (content-addressing, not path-addressing).
//!
//! ## Trust model
//!
//! The daemon binds `127.0.0.1` by default and trusts its clients the
//! way `mmvc run` trusts its invoker: `graph_file` names **server-local
//! paths by design** (that is how user-supplied workloads reach the
//! driver), so expose the port beyond localhost only behind
//! authentication. Abuse is still bounded — request heads/bodies, the
//! served `n` ([`MAX_SERVED_N`]), and graph-file sizes
//! ([`MAX_GRAPH_FILE_BYTES`]) are all capped, and unparseable file
//! errors never echo file contents back to the client.
//!
//! ## Concurrency discipline
//!
//! Connections are handled by a fixed-size
//! [`mmvc_substrate::WorkerPool`] under the substrate layer's
//! schedule-independence contract: a response body is a pure function
//! of the request bytes — never of worker identity, queue position, or
//! timing — so `--workers 1` and `--workers 32` serve byte-identical
//! bodies for the same requests. Served runs execute on the round
//! engine's sequential executor, which by the engine's determinism
//! contract never changes a reported number.
//!
//! ```no_run
//! use mmvc_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig::default())?;
//! println!("listening on http://{}", server.local_addr()?);
//! server.run()?; // blocks; shut down via `server.handle()`
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;

use cache::ReportCache;
use metrics::Metrics;
use mmvc_bench::{report_json, Json};
use mmvc_core::run::{run_on, AlgorithmKind, RunReport, RunSpec, SpecValue};
use mmvc_core::CoreError;
use mmvc_graph::scenarios;
use mmvc_substrate::{ExecutorConfig, WorkerPool};
use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the daemon binds and sizes itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7411` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling connections (clamped to at least 1).
    pub workers: usize,
    /// Report-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Admission cap on the *effective* workload size: a served spec whose
    /// scenario-default or explicit `n` exceeds this is refused with a 400
    /// naming the cap. The default ([`MAX_SERVED_N`]) keeps the
    /// million-vertex scale tier out; operators admit it explicitly with
    /// `mmvc serve --max-n` (e.g. `--max-n 2097152`).
    pub max_n: usize,
}

impl Default for ServeConfig {
    /// `127.0.0.1:7411`, 4 workers, 512 cached reports, scale tier refused.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            workers: 4,
            cache_capacity: 512,
            max_n: MAX_SERVED_N,
        }
    }
}

/// Per-connection socket timeout: a stalled peer must not pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Default admission cap on the served workload size
/// ([`ServeConfig::max_n`]). The HTTP layer caps request *bytes*; this
/// caps the *work* a decoded spec can demand — a four-billion-vertex `n`
/// fits in a tiny body but would pin a worker for hours and exhaust
/// memory. At `2^17` the registry's scale tier (`scale-*`, `n ≥ 2^20`) is
/// refused unless the operator raises the cap.
pub const MAX_SERVED_N: usize = 1 << 17;

/// Largest accepted `graph_file` workload, in bytes (checked before the
/// file is read into memory).
pub const MAX_GRAPH_FILE_BYTES: u64 = 64 * 1024 * 1024;

/// Shared state behind every worker: the report cache and the traffic
/// counters.
struct AppState {
    cache: Mutex<ReportCache>,
    metrics: Metrics,
    workers: usize,
    max_n: usize,
    /// One scratch arena shared by every served run: repeat requests
    /// (cache misses included) rebuild graphs and per-round masks out of
    /// recycled buffers instead of fresh allocations.
    scratch: mmvc_substrate::ScratchPool,
}

/// The bound daemon: accept loop plus worker pool.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    workers: usize,
}

/// A remote control for a running [`Server`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the accept loop to exit. Queued and in-flight requests are
    /// drained before [`Server::run`] returns (the worker pool joins).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listener and builds the shared state; call
    /// [`run`](Self::run) to start serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = config.workers.max(1);
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                cache: Mutex::new(ReportCache::new(config.cache_capacity)),
                metrics: Metrics::new(),
                workers,
                max_n: config.max_n,
                scratch: mmvc_substrate::ScratchPool::new(),
            }),
            stop: Arc::new(AtomicBool::new(false)),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the server from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Serves until [`ServerHandle::shutdown`] is called: accepts
    /// connections and hands each to the worker pool. Returns after all
    /// accepted requests have been answered.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (individual connection errors are
    /// absorbed and surfaced in `/metrics` instead).
    pub fn run(self) -> std::io::Result<()> {
        let pool = WorkerPool::new(self.workers);
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    pool.submit(move || handle_connection(stream, &state));
                }
                // Persistent accept failures (e.g. fd exhaustion under a
                // connection flood) must not busy-spin the accept loop.
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        drop(pool); // joins workers, draining queued connections
        Ok(())
    }
}

/// One connection: read the request, route it, write the response, and
/// account for it. All failure modes answer with an error body where the
/// socket still works, and are dropped silently where it does not.
fn handle_connection(mut stream: TcpStream, state: &AppState) {
    let started = Instant::now();
    state.metrics.bump(&state.metrics.in_flight);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));

    let reply = read_and_route(&mut stream, state);
    if let Some(reply) = reply {
        if reply.status >= 400 {
            state.metrics.bump(&state.metrics.errors);
        }
        let mut extra: Vec<(&str, &str)> = Vec::new();
        if let Some(cache_state) = reply.x_cache {
            extra.push(("x-cache", cache_state));
        }
        let _ = http::write_response(&mut stream, reply.status, &extra, &reply.body);
    }

    state.metrics.bump(&state.metrics.requests);
    state
        .metrics
        .in_flight
        .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    state
        .metrics
        .record_latency_ms(started.elapsed().as_secs_f64() * 1e3);
}

/// A routed response (`None` = connection unusable, drop it).
struct Reply {
    status: u16,
    x_cache: Option<&'static str>,
    body: Arc<Vec<u8>>,
}

impl Reply {
    fn ok(body: Arc<Vec<u8>>) -> Self {
        Reply {
            status: 200,
            x_cache: None,
            body,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Reply {
            status,
            x_cache: None,
            body: Arc::new(
                Json::obj(vec![("error", Json::Str(message.to_string()))])
                    .render()
                    .into_bytes(),
            ),
        }
    }
}

fn read_and_route(stream: &mut TcpStream, state: &AppState) -> Option<Reply> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut request = match http::read_head(&mut reader) {
        Ok(request) => request,
        Err(http::HttpError::Io(_)) => return None,
        Err(e @ http::HttpError::Malformed(_)) => return Some(Reply::error(400, &e.to_string())),
        Err(e @ http::HttpError::TooLarge(_)) => return Some(Reply::error(413, &e.to_string())),
    };
    if request.content_length > 0 {
        if request.expect_continue {
            http::write_continue(stream).ok()?;
        }
        if http::read_body(&mut reader, &mut request).is_err() {
            return None;
        }
    }
    Some(route(&request, state))
}

/// Maps a parsed request to its reply. Every body except `/metrics` is a
/// pure function of the request — the worker-pool determinism contract.
fn route(request: &http::Request, state: &AppState) -> Reply {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/run") => {
            state.metrics.bump(&state.metrics.run_requests);
            handle_run(state, &request.body)
        }
        ("GET", "/scenarios") => Reply::ok(Arc::new(scenarios_body())),
        ("GET", "/algorithms") => Reply::ok(Arc::new(algorithms_body())),
        ("GET", "/healthz") => Reply::ok(Arc::new(healthz_body())),
        ("GET", "/metrics") => Reply::ok(Arc::new(metrics_body(state))),
        (_, "/run" | "/scenarios" | "/algorithms" | "/healthz" | "/metrics") => {
            Reply::error(405, &format!("method {} not allowed here", request.method))
        }
        (_, target) => Reply::error(404, &format!("no such endpoint `{target}`")),
    }
}

/// `POST /run`: body → spec → cache lookup → (on miss) execute → cache.
fn handle_run(state: &AppState, body: &[u8]) -> Reply {
    let spec = match parse_run_body(body) {
        Ok(spec) => spec,
        Err(message) => return Reply::error(400, &message),
    };
    // Admission: resolve the *effective* workload size — the explicit `n`
    // or the scenario's default — and refuse specs above the daemon's cap
    // explicitly (the registry's scale tier lands here unless the operator
    // raised `--max-n`). File workloads are checked after loading, when
    // their vertex count is known.
    if spec.graph_file.is_none() {
        let effective_n = spec
            .n
            .or_else(|| scenarios::get(&spec.scenario).map(|sc| sc.default_n));
        if let Some(n) = effective_n {
            if n > state.max_n {
                return Reply::error(
                    400,
                    &format!(
                        "invalid parameter `n`: this spec resolves to n = {n}, but served \
                         runs are capped at n = {} — restart with `mmvc serve --max-n {n}` \
                         to admit scale-tier workloads",
                        state.max_n
                    ),
                );
            }
        }
    }

    // Backstop: fold the daemon's cap into the spec's admission budget
    // (`RunBudget::max_n`), so workloads whose size is only known later —
    // graph files in particular — are refused by the run driver itself.
    let mut spec = spec;
    spec.budget.max_n = Some(
        spec.budget
            .max_n
            .map_or(state.max_n, |m| m.min(state.max_n)),
    );
    // Served runs share the daemon's scratch arena: the cache key ignores
    // the executor (it never changes a reported number), so pooling is
    // invisible to clients — it just stops repeat builds from allocating.
    spec.executor = spec.executor.clone().with_scratch(&state.scratch);

    // Resolve the workload's cache identity — and, for file workloads,
    // the bytes — *once*, so the hash in the key is the hash of exactly
    // what runs (no read-twice races with concurrent file edits).
    let file = match &spec.graph_file {
        Some(path) => {
            if spec.n.is_some() {
                return Reply::error(
                    400,
                    "invalid parameter `n`: a size override does not apply to a graph file \
                     workload",
                );
            }
            match std::fs::metadata(path) {
                Ok(meta) if meta.len() > MAX_GRAPH_FILE_BYTES => {
                    return Reply::error(
                        400,
                        &format!(
                            "cannot load graph file `{path}`: larger than \
                             {MAX_GRAPH_FILE_BYTES} bytes"
                        ),
                    );
                }
                _ => {}
            }
            match std::fs::read(path) {
                Ok(bytes) => Some((path.clone(), bytes)),
                Err(e) => {
                    return Reply::error(400, &format!("cannot load graph file `{path}`: {e}"))
                }
            }
        }
        None => None,
    };
    let key = cache_key(&spec, file.as_ref().map(|(_, bytes)| fnv1a(bytes)));

    if let Some(body) = lock_cache(state).get(&key) {
        state.metrics.bump(&state.metrics.cache_hits);
        return Reply {
            status: 200,
            x_cache: Some("hit"),
            body,
        };
    }

    let report = match &file {
        // The folded admission cap applies before the CSR arrays are
        // allocated: a tiny file declaring a huge vertex count is
        // refused by arithmetic, not by an OOM'd worker.
        Some((path, bytes)) => {
            mmvc_graph::io::read_edge_list_capped(bytes.as_slice(), spec.budget.max_n)
                .map_err(|source| CoreError::GraphFile {
                    path: path.clone(),
                    source,
                })
                .and_then(|g| run_on(&g, &format!("file:{path}"), &spec))
        }
        None => mmvc_core::run::run(&spec),
    };
    let report = match report {
        Ok(report) => report,
        // A graph-file failure is sanitized: the daemon reads
        // caller-named server-local paths, and `ReadError::Parse`
        // echoes the offending line verbatim — relaying that would
        // disclose the first line of any non-edge-list file a client
        // cares to probe.
        Err(CoreError::GraphFile { path, source }) => {
            use mmvc_graph::io::ReadError;
            let detail = match source {
                ReadError::Parse { line, .. } => {
                    format!("cannot parse line {line} as an edge list")
                }
                other => other.to_string(),
            };
            return Reply::error(400, &format!("cannot load graph file `{path}`: {detail}"));
        }
        Err(e) => return Reply::error(400, &e.to_string()),
    };

    let body = Arc::new(canonical_report_body(report));
    state.metrics.bump(&state.metrics.cache_misses);
    lock_cache(state).insert(key, Arc::clone(&body));
    Reply {
        status: 200,
        x_cache: Some("miss"),
        body,
    }
}

/// Locks the report cache, recovering from poisoning: cached bodies are
/// immutable bytes and the LRU bookkeeping is always internally
/// consistent at lock release, so an unwinding holder cannot leave
/// anything worth discarding — and one poisoned lock must not turn
/// every later `/run` into a 500.
fn lock_cache(state: &AppState) -> std::sync::MutexGuard<'_, ReportCache> {
    state
        .cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decodes and validates a `POST /run` body into a spec ready to
/// execute: strict JSON, strict fields (via [`RunSpec::from_fields`]),
/// and the sequential executor (inside a worker thread, fanning out
/// further buys nothing — and by the round engine's contract the
/// executor never changes a reported number).
///
/// # Errors
///
/// A human-readable message describing the first problem found.
pub fn parse_run_body(body: &[u8]) -> Result<RunSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let Some(doc_fields) = doc.as_obj() else {
        return Err("request body must be a JSON object".to_string());
    };
    let mut fields: Vec<(String, SpecValue)> = Vec::with_capacity(doc_fields.len());
    for (key, value) in doc_fields {
        let value = match value {
            Json::Null => SpecValue::Null,
            Json::Bool(b) => SpecValue::Bool(*b),
            Json::Int(v) => SpecValue::Int(*v),
            Json::Float(v) => SpecValue::Float(*v),
            Json::Str(s) => SpecValue::Str(s.clone()),
            Json::Arr(_) | Json::Obj(_) => {
                return Err(format!("field `{key}` must be a scalar"));
            }
        };
        fields.push((key.clone(), value));
    }
    let mut spec = RunSpec::from_fields(&fields).map_err(|e| e.to_string())?;
    spec.executor = ExecutorConfig::sequential();
    Ok(spec)
}

/// The canonical served body for a report: `wall_ms` (the single
/// nondeterministic field) zeroed, then the deterministic JSON renderer
/// — exactly the bytes of `mmvc run --json --canonical`.
pub fn canonical_report_body(mut report: RunReport) -> Vec<u8> {
    report.wall_ms = 0.0;
    report_json(&report).render().into_bytes()
}

/// The content-addressed cache key: the compact canonical serialization
/// of everything a report depends on. Registry workloads are addressed
/// by spec alone (reports are pure functions of the spec); file
/// workloads also carry the FNV-1a hash of the edge-list bytes, so the
/// key names the *content* that ran, not the path. The executor is
/// deliberately excluded — by the round engine's contract it never
/// changes a report — and override knobs are not expressible in
/// `POST /run` bodies (every served spec carries the defaults).
pub fn cache_key(spec: &RunSpec, graph_content_hash: Option<u64>) -> String {
    let workload = match (&spec.graph_file, graph_content_hash) {
        (Some(path), Some(hash)) => Json::obj(vec![
            ("graph_file", Json::Str(path.clone())),
            ("content_hash", Json::Str(format!("{hash:016x}"))),
        ]),
        // A file spec without a hash still keys on the path (with the
        // missing hash explicit) — it must never alias a scenario key
        // or another file's key.
        (Some(path), None) => Json::obj(vec![
            ("graph_file", Json::Str(path.clone())),
            ("content_hash", Json::Null),
        ]),
        (None, _) => Json::obj(vec![("scenario", Json::Str(spec.scenario.clone()))]),
    };
    let opt_int = |v: Option<usize>| match v {
        Some(v) => Json::Int(v as i64),
        None => Json::Null,
    };
    Json::obj(vec![
        ("schema", Json::Str("mmvc-serve-spec/v2".to_string())),
        ("algorithm", Json::Str(spec.algorithm.name().to_string())),
        ("workload", workload),
        ("n", opt_int(spec.n)),
        ("eps", Json::Float(spec.eps.get())),
        ("seed", Json::Str(spec.seed.to_string())),
        (
            "budget",
            Json::obj(vec![
                ("max_rounds", opt_int(spec.budget.max_rounds)),
                ("max_load_words", opt_int(spec.budget.max_load_words)),
                ("max_n", opt_int(spec.budget.max_n)),
            ]),
        ),
    ])
    .render_compact()
}

/// 64-bit FNV-1a — the content hash for file workloads. Not
/// cryptographic; it addresses cache entries, it does not authenticate
/// them.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn healthz_body() -> Vec<u8> {
    Json::obj(vec![
        ("status", Json::Str("ok".to_string())),
        ("service", Json::Str("mmvc-serve".to_string())),
    ])
    .render()
    .into_bytes()
}

fn scenarios_body() -> Vec<u8> {
    Json::obj(vec![(
        "scenarios",
        Json::Arr(
            scenarios::all()
                .iter()
                .map(|sc| {
                    Json::obj(vec![
                        ("name", Json::Str(sc.name.to_string())),
                        ("default_n", Json::Int(sc.default_n as i64)),
                        ("description", Json::Str(sc.description.to_string())),
                    ])
                })
                .collect(),
        ),
    )])
    .render()
    .into_bytes()
}

fn algorithms_body() -> Vec<u8> {
    Json::obj(vec![(
        "algorithms",
        Json::Arr(
            AlgorithmKind::ALL
                .iter()
                .map(|kind| {
                    Json::obj(vec![
                        ("name", Json::Str(kind.name().to_string())),
                        ("description", Json::Str(kind.description().to_string())),
                    ])
                })
                .collect(),
        ),
    )])
    .render()
    .into_bytes()
}

fn metrics_body(state: &AppState) -> Vec<u8> {
    let m = &state.metrics;
    let (p50, p90, p99) = m.latency_percentiles_ms();
    let cache = lock_cache(state);
    Json::obj(vec![
        ("requests", Json::Int(m.read(&m.requests) as i64)),
        ("run_requests", Json::Int(m.read(&m.run_requests) as i64)),
        ("errors", Json::Int(m.read(&m.errors) as i64)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::Int(m.read(&m.cache_hits) as i64)),
                ("misses", Json::Int(m.read(&m.cache_misses) as i64)),
                ("entries", Json::Int(cache.len() as i64)),
                ("capacity", Json::Int(cache.capacity() as i64)),
            ]),
        ),
        ("in_flight", Json::Int(m.read(&m.in_flight) as i64)),
        ("max_n", Json::Int(state.max_n as i64)),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::Float(p50)),
                ("p90", Json::Float(p90)),
                ("p99", Json::Float(p99)),
            ]),
        ),
        ("workers", Json::Int(state.workers as i64)),
    ])
    .render()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_run_body_happy_and_sad() {
        let spec =
            parse_run_body(br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 96}"#)
                .unwrap();
        assert_eq!(spec.algorithm, AlgorithmKind::GreedyMis);
        assert_eq!(spec.n, Some(96));
        assert!(spec.executor.is_sequential(), "served runs are sequential");

        assert!(parse_run_body(b"not json").unwrap_err().contains("JSON"));
        assert!(parse_run_body(b"[1]").unwrap_err().contains("object"));
        assert!(parse_run_body(
            br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": [1]}"#
        )
        .unwrap_err()
        .contains("scalar"));
        assert!(parse_run_body(&[0xFF, 0xFE]).unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn cache_key_separates_every_dimension() {
        let base = {
            let mut s = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
            s.n = Some(96);
            s
        };
        let key = cache_key(&base, None);
        assert!(key.contains("\"scenario\":\"gnp-sparse\""));
        assert!(!key.contains('\n'), "compact form");
        assert_eq!(key, cache_key(&base.clone(), None), "stable");

        let mut other = base.clone();
        other.seed = 43;
        assert_ne!(cache_key(&other, None), key);
        let mut other = base.clone();
        other.n = None;
        assert_ne!(cache_key(&other, None), key);
        let mut other = base.clone();
        other.budget.max_rounds = Some(10);
        assert_ne!(cache_key(&other, None), key);

        let file = RunSpec::from_file(AlgorithmKind::GreedyMis, "g.txt");
        let a = cache_key(&file, Some(1));
        let b = cache_key(&file, Some(2));
        assert_ne!(a, b, "content hash is part of the address");
        assert!(a.contains("content_hash"));

        // A file spec without a hash must alias neither a scenario key
        // nor another file's key.
        let unhashed = cache_key(&file, None);
        let other_file = RunSpec::from_file(AlgorithmKind::GreedyMis, "h.txt");
        assert!(unhashed.contains("g.txt"));
        assert_ne!(unhashed, cache_key(&other_file, None));
        let mut empty_scenario = RunSpec::new(AlgorithmKind::GreedyMis, "");
        empty_scenario.n = file.n;
        assert_ne!(unhashed, cache_key(&empty_scenario, None));
    }

    #[test]
    fn fnv1a_reference_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn static_bodies_are_valid_json() {
        for body in [healthz_body(), scenarios_body(), algorithms_body()] {
            let text = String::from_utf8(body).unwrap();
            let doc = Json::parse(&text).unwrap();
            assert!(doc.as_obj().is_some());
        }
        let scenarios_doc = Json::parse(&String::from_utf8(scenarios_body()).unwrap()).unwrap();
        assert_eq!(
            scenarios_doc
                .get("scenarios")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            scenarios::all().len()
        );
        let algorithms_doc = Json::parse(&String::from_utf8(algorithms_body()).unwrap()).unwrap();
        assert_eq!(
            algorithms_doc
                .get("algorithms")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            AlgorithmKind::ALL.len()
        );
    }
}
