//! # mmvc-serve
//!
//! The run-serving daemon: the `mmvc` workspace's unified run driver
//! (`mmvc_core::run`) exposed over HTTP/1.1, built entirely on `std`
//! (hand-rolled HTTP over [`std::net::TcpListener`], the workspace's
//! own JSON model — no new dependencies, consistent with the
//! vendored-shim policy).
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /run` | a JSON [`RunSpec`] in, the canonical `RunReport` JSON out |
//! | `POST /run` with `{"session": id}` | re-run a resident session from warm state |
//! | `POST /session` | a JSON [`RunSpec`] in, a resident warm [`Session`] out |
//! | `POST /update` | apply a batched edge delta to a session (bumps its generation) |
//! | `GET /scenarios` | the scenario registry |
//! | `GET /algorithms` | every [`AlgorithmKind`] |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | counters, scratch stats, latency histogram (JSON; `?format=prom` or `Accept: text/plain` for Prometheus text) |
//!
//! ## Sessions: mutable workloads behind the immutable cache
//!
//! The cache soundness story below assumes immutable specs. Sessions
//! extend it to mutating graphs without weakening it: each session
//! carries a **generation counter** (0 at creation, +1 per applied
//! delta), and session-scoped cache keys fold `(session id, generation)`
//! into the workload object *exactly like file keys fold content
//! hashes* — an update invalidates every prior entry by construction,
//! no eviction protocol needed. Two deliberate exclusions keep staleness
//! impossible: session responses never enter the reactor's raw-request
//! memo (the same `{"session": id}` bytes mean different things across
//! generations), and never touch the disk [`store`] (generation
//! counters restart at zero with the daemon, so a persisted body could
//! alias a future generation's key). The incremental re-runs themselves
//! revalidate their witnesses server-side — see
//! [`mmvc_core::session::Session`].
//!
//! ## Why the cache is sound
//!
//! The run layer pins *report determinism*: a `RunReport` (minus wall
//! time) is a pure function of its spec, for every algorithm kind and
//! executor. The daemon therefore serves the **canonical body** — the
//! report JSON with `wall_ms` zeroed, exactly `mmvc run --json
//! --canonical` — and may memoize it keyed by the canonical serialized
//! spec ([`cache_key`]): a cache hit is byte-identical to a cold run *by
//! construction*, and the integration tests prove it byte-for-byte.
//! File workloads fold a content hash of the edge-list bytes into the
//! key, so editing the file can never alias a stale entry
//! (content-addressing, not path-addressing). The same determinism
//! makes the disk tier ([`store`]) sound: a body read back from disk is
//! the body any fresh run would produce.
//!
//! ## Architecture: a readiness reactor in front of a worker pool
//!
//! One reactor thread owns every socket. The listener and all accepted
//! connections are nonblocking; each scheduler cycle accepts a burst,
//! installs finished worker results, then gives every connection a
//! write-flush, a read, and an incremental parse
//! ([`http::parse_head`]). A connection is therefore never *waited on*
//! — a client that dribbles its request head byte-by-byte costs one
//! buffer and a few scans, not a blocked thread, and back-pressure is
//! explicit (reads pause while a connection has too many unanswered
//! pipelined requests or an oversized buffer).
//!
//! Requests — not connections — are the unit of dispatch. GETs and
//! in-memory cache hits are answered inline by the reactor (zero
//! hand-off, which is what pushes hit throughput past the 5× target on
//! one core); only `POST /run` work that must execute or touch disk is
//! submitted to the panic-safe [`mmvc_substrate::WorkerPool`], whose
//! results come back through a [`mmvc_substrate::Completions`] mailbox
//! and are re-sequenced per connection so pipelined responses leave in
//! request order.
//!
//! Responses are written zero-copy: a response is a freshly rendered
//! ~100-byte head plus a shared `Arc<[u8]>` body, handed to the socket
//! with one vectored write — serving a hot report never copies the
//! payload.
//!
//! ## Trust model
//!
//! The daemon binds `127.0.0.1` by default and trusts its clients the
//! way `mmvc run` trusts its invoker: `graph_file` names **server-local
//! paths by design** (that is how user-supplied workloads reach the
//! driver), so expose the port beyond localhost only behind
//! authentication. Abuse is still bounded — request heads
//! ([`http::MAX_HEAD_BYTES`], 431 past it), bodies
//! ([`http::MAX_BODY_BYTES`], 413), the served `n` ([`MAX_SERVED_N`]),
//! graph-file sizes ([`MAX_GRAPH_FILE_BYTES`]), per-connection buffers,
//! and pipeline depth are all capped, and unparseable file errors never
//! echo file contents back to the client.
//!
//! ## Concurrency discipline
//!
//! The substrate layer's schedule-independence contract still holds:
//! a response body is a pure function of the request bytes — never of
//! worker identity, queue position, or timing — so `--workers 1` and
//! `--workers 32` serve byte-identical bodies for the same requests.
//! Served runs execute on the round engine's sequential executor, which
//! by the engine's determinism contract never changes a reported
//! number.
//!
//! ```no_run
//! use mmvc_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig::default())?;
//! println!("listening on http://{}", server.local_addr()?);
//! server.run()?; // blocks; shut down via `server.handle()`
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod store;

use cache::ReportCache;
use metrics::Metrics;
use mmvc_bench::{report_json, Json};
use mmvc_core::run::{run_on, AlgorithmKind, RunReport, RunSpec, SpecValue};
use mmvc_core::session::Session;
use mmvc_core::CoreError;
use mmvc_graph::{scenarios, GraphDelta};
use mmvc_substrate::{Completions, ExecutorConfig, Telemetry, TraceEvent, WorkerPool};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use store::ReportStore;

/// How the daemon binds and sizes itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7411` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads executing cache-miss runs (clamped to at least 1).
    pub workers: usize,
    /// In-memory report-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Admission cap on the *effective* workload size: a served spec whose
    /// scenario-default or explicit `n` exceeds this is refused with a 400
    /// naming the cap. The default ([`MAX_SERVED_N`]) keeps the
    /// million-vertex scale tier out; operators admit it explicitly with
    /// `mmvc serve --max-n` (e.g. `--max-n 2097152`).
    pub max_n: usize,
    /// Directory for the disk-persistent report store (`None` disables
    /// persistence). A daemon restarted over the same directory keeps
    /// its hit rate: memory misses fall through to disk before running.
    pub store_dir: Option<String>,
    /// Keep-alive idle timeout in milliseconds: a connection with no
    /// unanswered requests and no traffic for this long is closed.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the daemon answers
    /// `connection: close` (clamped to at least 1). Bounds how long one
    /// client can monopolize a connection slot.
    pub max_requests_per_conn: u64,
    /// Directory for rotating Chrome-trace files (`None` disables
    /// telemetry entirely — the default). When set, the daemon records
    /// per-request and per-run spans and the reactor drains them into
    /// `trace-NNNNN.json` epoch files under this directory (bounded in
    /// count and size — see [`MAX_TRACE_FILES`]).
    pub trace_dir: Option<String>,
}

impl Default for ServeConfig {
    /// `127.0.0.1:7411`, 4 workers, 512 cached reports, scale tier
    /// refused, no disk store, 5 s idle timeout, 1024 requests per
    /// connection, telemetry off.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            workers: 4,
            cache_capacity: 512,
            max_n: MAX_SERVED_N,
            store_dir: None,
            idle_timeout_ms: 5000,
            max_requests_per_conn: 1024,
            trace_dir: None,
        }
    }
}

/// Default admission cap on the served workload size
/// ([`ServeConfig::max_n`]). The HTTP layer caps request *bytes*; this
/// caps the *work* a decoded spec can demand — a four-billion-vertex `n`
/// fits in a tiny body but would pin a worker for hours and exhaust
/// memory. At `2^17` the registry's scale tier (`scale-*`, `n ≥ 2^20`) is
/// refused unless the operator raises the cap.
pub const MAX_SERVED_N: usize = 1 << 17;

/// Largest accepted `graph_file` workload, in bytes (checked before the
/// file is read into memory).
pub const MAX_GRAPH_FILE_BYTES: u64 = 64 * 1024 * 1024;

/// Most unanswered pipelined requests per connection: past this the
/// reactor stops reading from the socket until responses drain, so a
/// client cannot buy unbounded response memory with one TCP segment.
const MAX_PIPELINED: u64 = 64;

/// Hard cap on a connection's receive buffer; reads pause at the cap.
const MAX_CONN_BUF: usize = 8 << 20;

/// Bytes pulled per `read()` call on a ready socket.
const READ_CHUNK: usize = 16 * 1024;

/// Connections accepted per reactor cycle before polling existing ones.
const ACCEPT_BURST: usize = 64;

/// How long shutdown waits for in-flight responses to flush.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Most entries the reactor-local raw-request memo will hold, whatever
/// the configured cache capacity.
const RAW_MEMO_CAP: usize = 8192;

/// The reactor's private shortcut for repeat `POST /run` bodies: exact
/// request bytes → the shared response body already produced for them.
///
/// Sound because the whole request path is deterministic: identical
/// body bytes parse to the identical spec, which admits identically
/// (`max_n` is fixed for the server's lifetime) and addresses the same
/// canonical cache entry — whose bytes are immutable per spec. Only
/// 200-status in-memory hits are memoized, and `graph_file` specs never
/// reach the memo (their bytes depend on a file that can change).
/// Owned solely by the reactor thread, so lookups are a single unlocked
/// hash probe — cheaper than re-parsing the spec JSON and re-rendering
/// the canonical key on every hot hit.
///
/// Capacity follows the LRU's (`--cache-cap`, up to [`RAW_MEMO_CAP`]),
/// so the operator's cached-bodies bound stays meaningful; when full
/// the map is reset wholesale (an epoch clear is amortized O(1) and
/// needs no recency bookkeeping on the hottest path).
struct RawMemo {
    map: HashMap<Vec<u8>, Arc<[u8]>>,
    cap: usize,
}

impl RawMemo {
    fn new(cap: usize) -> Self {
        RawMemo {
            map: HashMap::new(),
            cap: cap.min(RAW_MEMO_CAP),
        }
    }

    fn get(&self, body: &[u8]) -> Option<&Arc<[u8]>> {
        self.map.get(body)
    }

    fn insert(&mut self, body: &[u8], reply: &Arc<[u8]>) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap {
            self.map.clear();
        }
        self.map.insert(body.to_vec(), Arc::clone(reply));
    }
}

/// Most resident sessions per daemon. Each holds a full graph, so the
/// table is a memory commitment, not bookkeeping: past the cap
/// `POST /session` answers 400 until sessions are deleted (restart).
pub const MAX_SESSIONS: usize = 64;

/// The resident-session table: monotone ids (never reused, so a stale
/// client id can never alias a newer session) to warm [`Session`]s.
/// Each session sits behind its own mutex — an incremental run holds it
/// for the duration, so runs and updates on one session serialize while
/// other sessions proceed.
#[derive(Default)]
struct SessionTable {
    next_id: u64,
    map: HashMap<u64, Arc<Mutex<Session>>>,
}

/// Shared state behind the reactor and every worker: the two cache
/// tiers, the traffic counters, and the precomputed static bodies.
struct AppState {
    cache: Mutex<ReportCache>,
    store: Option<ReportStore>,
    metrics: Metrics,
    workers: usize,
    max_n: usize,
    sessions: Mutex<SessionTable>,
    /// One scratch arena shared by every served run: repeat requests
    /// (cache misses included) rebuild graphs and per-round masks out of
    /// recycled buffers instead of fresh allocations.
    scratch: mmvc_substrate::ScratchPool,
    /// The daemon's telemetry sink: recording when `--trace-dir` is
    /// set, the zero-cost disabled handle otherwise. Strictly
    /// out-of-band — served bodies and cache keys never depend on it
    /// (same rule as `wall_ms`).
    telemetry: Telemetry,
    /// Static endpoint bodies, rendered once and served as shared bytes.
    healthz: Arc<[u8]>,
    scenarios: Arc<[u8]>,
    algorithms: Arc<[u8]>,
}

/// The bound daemon: reactor thread plus worker pool.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    workers: usize,
    idle_timeout: Duration,
    max_requests_per_conn: u64,
    trace_dir: Option<PathBuf>,
}

/// A remote control for a running [`Server`] (cloneable, thread-safe).
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the reactor to exit. Accepted requests are drained (bounded
    /// by an internal deadline) before [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so even a sleeping reactor cycles promptly.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listener, opens the persistent store (when configured),
    /// and builds the shared state; call [`run`](Self::run) to start
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-open failures.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let workers = config.workers.max(1);
        let store = match &config.store_dir {
            Some(dir) => Some(ReportStore::open(dir)?),
            None => None,
        };
        let trace_dir = match &config.trace_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(PathBuf::from(dir))
            }
            None => None,
        };
        let telemetry = if trace_dir.is_some() {
            Telemetry::recording()
        } else {
            Telemetry::disabled()
        };
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                cache: Mutex::new(ReportCache::new(config.cache_capacity)),
                store,
                metrics: Metrics::new(),
                workers,
                max_n: config.max_n,
                sessions: Mutex::new(SessionTable::default()),
                scratch: mmvc_substrate::ScratchPool::new(),
                telemetry,
                healthz: Arc::from(healthz_body()),
                scenarios: Arc::from(scenarios_body()),
                algorithms: Arc::from(algorithms_body()),
            }),
            stop: Arc::new(AtomicBool::new(false)),
            workers,
            idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            trace_dir,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the server from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Runs the reactor until [`ServerHandle::shutdown`] is called:
    /// accepts, reads, parses, dispatches, and writes — all on this
    /// thread — while cache-miss runs execute on the worker pool.
    /// Returns after in-flight responses have drained (or the drain
    /// deadline passes).
    ///
    /// # Errors
    ///
    /// Reserved for future fatal reactor failures; individual connection
    /// errors are absorbed and surfaced in `/metrics` instead.
    pub fn run(self) -> std::io::Result<()> {
        let pool = WorkerPool::new(self.workers);
        let completions: Arc<Completions<Completion>> = Arc::new(Completions::new());
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut completed: Vec<Completion> = Vec::new();
        let mut next_gen: u64 = 0;
        let mut spins: u32 = 0;
        let mut raw_memo = RawMemo::new(lock_cache(&self.state).capacity());
        let mut tracer = self
            .trace_dir
            .as_ref()
            .map(|dir| TraceWriter::new(dir.clone(), Instant::now()));

        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            let mut progress = false;

            // Accept a bounded burst of new connections.
            for _ in 0..ACCEPT_BURST {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        self.state.metrics.bump(&self.state.metrics.connections);
                        next_gen += 1;
                        let conn = Conn::new(stream, next_gen, now);
                        match free.pop() {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Persistent accept failures (e.g. fd exhaustion under
                    // a connection flood) must not busy-spin the reactor.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                        break;
                    }
                }
            }

            // Install finished worker results into their connections.
            progress |= install_completions(
                &completions,
                &mut completed,
                &mut conns,
                &self.state.metrics,
                now,
            );

            // Give every connection a flush, a read, and a parse.
            for (idx, slot) in conns.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else {
                    continue;
                };
                let mut drop_conn = false;
                match flush_out(conn, &self.state) {
                    Ok(flushed) => progress |= flushed,
                    Err(()) => drop_conn = true,
                }
                if !drop_conn
                    && !conn.stop_parsing
                    && !conn.peer_eof
                    && conn.unanswered() < MAX_PIPELINED
                    && conn.buf.len() < MAX_CONN_BUF
                {
                    match read_some(conn, now) {
                        ReadOutcome::Progress => {
                            progress = true;
                            conn.need_more = false;
                        }
                        ReadOutcome::Blocked => {}
                        ReadOutcome::Failed => drop_conn = true,
                    }
                }
                if !drop_conn
                    && !conn.stop_parsing
                    && !conn.need_more
                    && conn.unanswered() < MAX_PIPELINED
                    && !conn.buf.is_empty()
                {
                    parse_and_dispatch(
                        conn,
                        idx,
                        &self.state,
                        &pool,
                        &completions,
                        now,
                        self.max_requests_per_conn,
                        &mut raw_memo,
                    );
                    progress = true;
                    if flush_out(conn, &self.state).is_err() {
                        drop_conn = true;
                    }
                }
                if !drop_conn {
                    let done = conn.unanswered() == 0 && conn.out.is_empty();
                    if (conn.stop_parsing || conn.peer_eof) && done {
                        drop_conn = true;
                    } else if now.duration_since(conn.last_activity) >= self.idle_timeout
                        && (conn.unanswered() == 0 || !conn.out.is_empty())
                    {
                        // Idle keep-alive connection, or a peer too slow
                        // to read its responses. Connections merely
                        // waiting on a long worker-side run are spared.
                        drop_conn = true;
                    }
                }
                if drop_conn {
                    *slot = None;
                    free.push(idx);
                    progress = true;
                }
            }

            // Drain accumulated telemetry into the rotating trace files
            // (cheap when nothing was recorded).
            if let Some(tracer) = tracer.as_mut() {
                tracer.poll(&self.state.telemetry, now);
            }

            // Adaptive idle policy: spin while traffic flows, back off
            // when nothing moved (no epoll under the no-new-deps rule,
            // so readiness is discovered by polling).
            if progress {
                spins = 0;
            } else {
                spins = spins.saturating_add(1);
                if spins <= 16 {
                    std::thread::yield_now();
                } else if spins <= 2048 {
                    std::thread::sleep(Duration::from_micros(50));
                } else {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }

        // Graceful drain: stop parsing new requests, flush what was
        // already accepted, bounded by the drain deadline.
        let deadline = Instant::now() + DRAIN_DEADLINE;
        for conn in conns.iter_mut().flatten() {
            conn.stop_parsing = true;
        }
        loop {
            let now = Instant::now();
            install_completions(
                &completions,
                &mut completed,
                &mut conns,
                &self.state.metrics,
                now,
            );
            for slot in conns.iter_mut() {
                let Some(conn) = slot.as_mut() else {
                    continue;
                };
                let finished = match flush_out(conn, &self.state) {
                    Ok(_) => conn.unanswered() == 0 && conn.out.is_empty(),
                    Err(()) => true,
                };
                if finished {
                    *slot = None;
                }
            }
            if conns.iter().all(Option::is_none) || now >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        drop(pool); // joins workers; orphan completions are discarded
        if let Some(tracer) = tracer.as_mut() {
            // Final drain so the last epoch's spans reach disk.
            tracer.finish(&self.state.telemetry);
        }
        Ok(())
    }
}

/// How often the reactor rotates the current trace epoch to disk.
const TRACE_EPOCH: Duration = Duration::from_secs(2);

/// Events per trace file before an early rotation. Bounds file size:
/// a rendered event is well under 512 bytes, so a file stays under
/// ~4 MB.
const TRACE_EVENTS_PER_FILE: usize = 8192;

/// Most trace files retained under `--trace-dir`: when a rotation would
/// exceed this, the oldest epoch file is deleted. Bounds a long-running
/// daemon's trace footprint to `MAX_TRACE_FILES ×` ~4 MB.
pub const MAX_TRACE_FILES: u64 = 32;

/// Rotating Chrome-trace writer behind `--trace-dir`: buffers drained
/// [`TraceEvent`]s and writes one complete Chrome Trace Event document
/// (`trace-NNNNN.json`) per epoch — each file loads standalone in
/// Perfetto. Rotation fires on the epoch timer or the per-file event
/// cap, whichever comes first; retention is bounded by
/// [`MAX_TRACE_FILES`].
struct TraceWriter {
    dir: PathBuf,
    buf: Vec<TraceEvent>,
    next_file: u64,
    epoch_start: Instant,
}

impl TraceWriter {
    fn new(dir: PathBuf, now: Instant) -> TraceWriter {
        TraceWriter {
            dir,
            buf: Vec::new(),
            next_file: 0,
            epoch_start: now,
        }
    }

    /// One reactor-cycle tick: pull whatever the sink holds, rotate if
    /// the epoch elapsed or the buffer hit the per-file cap.
    fn poll(&mut self, telemetry: &Telemetry, now: Instant) {
        if telemetry.has_events() {
            self.buf.extend(telemetry.drain());
        }
        if self.buf.len() >= TRACE_EVENTS_PER_FILE
            || (!self.buf.is_empty() && now.duration_since(self.epoch_start) >= TRACE_EPOCH)
        {
            self.rotate(now);
        }
    }

    /// Shutdown flush: whatever is buffered becomes the final epoch.
    fn finish(&mut self, telemetry: &Telemetry) {
        if telemetry.has_events() {
            self.buf.extend(telemetry.drain());
        }
        if !self.buf.is_empty() {
            self.rotate(Instant::now());
        }
    }

    fn rotate(&mut self, now: Instant) {
        let path = self.dir.join(format!("trace-{:05}.json", self.next_file));
        let doc = mmvc_bench::tracefmt::chrome_trace(&self.buf);
        // A failed write costs this epoch's trace, never availability.
        let _ = std::fs::write(&path, doc.render());
        self.buf.clear();
        if self.next_file >= MAX_TRACE_FILES {
            let stale = self.dir.join(format!(
                "trace-{:05}.json",
                self.next_file - MAX_TRACE_FILES
            ));
            let _ = std::fs::remove_file(stale);
        }
        self.next_file += 1;
        self.epoch_start = now;
    }
}

/// One worker-pool result routed back to its connection.
struct Completion {
    conn: usize,
    generation: u64,
    seq: u64,
    msg: OutMsg,
}

/// A response staged for writing: a freshly rendered head plus a shared
/// body, with write cursors so a partial write resumes where it left
/// off. The body is an `Arc<[u8]>` clone of the cached bytes — writing
/// it never copies the payload.
struct OutMsg {
    head: Vec<u8>,
    body: Arc<[u8]>,
    head_pos: usize,
    body_pos: usize,
    close_after: bool,
    /// An interim message (`100 Continue`): not a real answer, so it
    /// counts toward neither the request sequence nor the metrics.
    interim: bool,
    parsed_at: Instant,
    /// The `x-cache` disposition of the reply, carried here so the
    /// request span emitted at last-byte time can be tagged with the
    /// tier that served it.
    tier: Option<&'static str>,
}

impl OutMsg {
    fn interim_continue(parsed_at: Instant) -> OutMsg {
        OutMsg {
            head: http::CONTINUE_BYTES.to_vec(),
            body: Arc::from(&b""[..]),
            head_pos: 0,
            body_pos: 0,
            close_after: false,
            interim: true,
            parsed_at,
            tier: None,
        }
    }
}

/// Reactor-side connection state.
struct Conn {
    stream: TcpStream,
    /// Guards a recycled slot against accepting a stale completion.
    generation: u64,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// A parsed head whose body has not fully arrived.
    pending_head: Option<(http::Head, usize)>,
    sent_continue: bool,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence number eligible to move into `out`.
    promote_seq: u64,
    /// Responses fully written.
    written: u64,
    /// Finished responses waiting for an earlier sequence number —
    /// pipelined responses must leave in request order.
    ready: BTreeMap<u64, OutMsg>,
    /// In-order responses being written.
    out: VecDeque<OutMsg>,
    last_activity: Instant,
    /// No more requests will be parsed (quota, parse error,
    /// `Connection: close`, or shutdown).
    stop_parsing: bool,
    /// The peer half-closed; buffered complete requests still get
    /// answered.
    peer_eof: bool,
    /// The parser exhausted `buf`; skip parsing until more bytes arrive.
    need_more: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64, now: Instant) -> Conn {
        Conn {
            stream,
            generation,
            buf: Vec::new(),
            pending_head: None,
            sent_continue: false,
            next_seq: 0,
            promote_seq: 0,
            written: 0,
            ready: BTreeMap::new(),
            out: VecDeque::new(),
            last_activity: now,
            stop_parsing: false,
            peer_eof: false,
            need_more: false,
        }
    }

    /// Requests assigned a sequence number but not yet fully written.
    fn unanswered(&self) -> u64 {
        self.next_seq - self.written
    }
}

/// Moves finished worker results into their connections' reorder maps.
fn install_completions(
    completions: &Completions<Completion>,
    completed: &mut Vec<Completion>,
    conns: &mut [Option<Conn>],
    metrics: &Metrics,
    now: Instant,
) -> bool {
    if completions.is_empty() {
        return false;
    }
    completions.drain_into(completed);
    let mut any = false;
    for c in completed.drain(..) {
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(conn) = conns.get_mut(c.conn).and_then(Option::as_mut) {
            // A stale generation means the slot was recycled: the
            // original connection is gone, the result is dropped.
            if conn.generation == c.generation {
                conn.ready.insert(c.seq, c.msg);
                conn.last_activity = now;
                promote(conn);
                any = true;
            }
        }
    }
    any
}

/// Moves consecutive finished responses from `ready` into the write
/// queue.
fn promote(conn: &mut Conn) {
    while let Some(msg) = conn.ready.remove(&conn.promote_seq) {
        conn.out.push_back(msg);
        conn.promote_seq += 1;
    }
}

enum ReadOutcome {
    Progress,
    Blocked,
    Failed,
}

/// Pulls whatever the socket has ready into the connection buffer (a
/// few chunks at most, so one firehose client cannot starve the rest of
/// the cycle). EOF is recorded, not fatal: buffered requests still get
/// answered.
fn read_some(conn: &mut Conn, now: Instant) -> ReadOutcome {
    let mut chunk = [0u8; READ_CHUNK];
    let mut got = false;
    for _ in 0..4 {
        if conn.buf.len() >= MAX_CONN_BUF {
            break;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
                got = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Failed,
        }
    }
    if got {
        ReadOutcome::Progress
    } else {
        ReadOutcome::Blocked
    }
}

/// Writes as much of the queued responses as the socket accepts, head
/// and shared body in one vectored write. `Err(())` means the
/// connection is finished (write failure or a `Connection: close`
/// response fully sent) and must be dropped.
fn flush_out(conn: &mut Conn, state: &AppState) -> Result<bool, ()> {
    let mut progress = false;
    while let Some(front) = conn.out.front_mut() {
        let head_rest = &front.head[front.head_pos..];
        let body_rest = &front.body[front.body_pos..];
        match conn
            .stream
            .write_vectored(&[IoSlice::new(head_rest), IoSlice::new(body_rest)])
        {
            Ok(0) => return Err(()),
            Ok(mut n) => {
                progress = true;
                conn.last_activity = Instant::now();
                let head_take = n.min(head_rest.len());
                front.head_pos += head_take;
                n -= head_take;
                front.body_pos += n;
                if front.head_pos == front.head.len() && front.body_pos == front.body.len() {
                    let msg = conn.out.pop_front().expect("front exists");
                    if !msg.interim {
                        conn.written += 1;
                        state.metrics.bump(&state.metrics.requests);
                        state.metrics.add(
                            &state.metrics.bytes_served,
                            (msg.head.len() + msg.body.len()) as u64,
                        );
                        state.metrics.record_latency_ms(
                            Instant::now().duration_since(msg.parsed_at).as_secs_f64() * 1e3,
                        );
                        // The request span: parse-complete to last byte
                        // handed to the socket, tagged with the cache
                        // tier that served it.
                        state.telemetry.record_span(
                            "request",
                            msg.tier,
                            msg.parsed_at,
                            &[("bytes", (msg.head.len() + msg.body.len()) as u64)],
                        );
                        if msg.close_after {
                            return Err(());
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(progress)
}

/// Parses as many complete requests as the buffer holds, answering each
/// inline ([`route_fast`]) or dispatching it to the pool, bounded by
/// the pipeline cap and the per-connection request quota.
#[allow(clippy::too_many_arguments)] // the reactor's one dispatch point
fn parse_and_dispatch(
    conn: &mut Conn,
    idx: usize,
    state: &Arc<AppState>,
    pool: &WorkerPool,
    completions: &Arc<Completions<Completion>>,
    now: Instant,
    max_requests: u64,
    raw_memo: &mut RawMemo,
) {
    while !conn.stop_parsing && conn.unanswered() < MAX_PIPELINED {
        if let Some((head, head_len)) = conn.pending_head.take() {
            let total = head_len + head.content_length;
            if conn.buf.len() < total {
                // The body is still in flight. Acknowledge
                // `Expect: 100-continue` once, and only when nothing
                // else is queued ahead of it — an interim response must
                // not jump an earlier request's answer.
                if head.expect_continue
                    && !conn.sent_continue
                    && conn.unanswered() == 0
                    && conn.out.is_empty()
                {
                    conn.sent_continue = true;
                    conn.out.push_back(OutMsg::interim_continue(now));
                }
                conn.pending_head = Some((head, head_len));
                conn.need_more = true;
                break;
            }
            let body = conn.buf[head_len..total].to_vec();
            conn.buf.drain(..total);
            conn.sent_continue = false;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            if seq > 0 {
                state.metrics.bump(&state.metrics.keepalive_reuses);
            }
            let keep = head.keep_alive && seq + 1 < max_requests;
            if !keep {
                conn.stop_parsing = true;
            }
            let request = http::Request { head, body };
            match route_fast(&request, state, raw_memo) {
                Some(reply) => {
                    conn.ready
                        .insert(seq, build_msg(reply, keep, now, &state.metrics));
                }
                None => {
                    state.metrics.bump(&state.metrics.in_flight);
                    let state = Arc::clone(state);
                    let completions = Arc::clone(completions);
                    let generation = conn.generation;
                    pool.submit(move || {
                        let reply = handle_worker(&state, &request);
                        let msg = build_msg(reply, keep, now, &state.metrics);
                        completions.push(Completion {
                            conn: idx,
                            generation,
                            seq,
                            msg,
                        });
                    });
                }
            }
        } else {
            match http::parse_head(&conn.buf) {
                Ok(Some(pair)) => conn.pending_head = Some(pair),
                Ok(None) => {
                    conn.need_more = true;
                    break;
                }
                Err(e) => {
                    // The byte stream can no longer frame a next
                    // request: answer the error and close.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let reply = Reply::error(e.status(), &e.to_string());
                    conn.ready
                        .insert(seq, build_msg(reply, false, now, &state.metrics));
                    conn.stop_parsing = true;
                    conn.buf.clear();
                    break;
                }
            }
        }
    }
    promote(conn);
}

/// Renders a reply into a staged response message, accounting errors.
fn build_msg(reply: Reply, keep_alive: bool, parsed_at: Instant, metrics: &Metrics) -> OutMsg {
    if reply.status >= 400 {
        metrics.bump(&metrics.errors);
    }
    let mut extra: Vec<(&str, &str)> = Vec::new();
    if let Some(cache_state) = reply.x_cache {
        extra.push(("x-cache", cache_state));
    }
    let head = http::render_head(
        reply.status,
        reply.content_type,
        &extra,
        reply.body.len(),
        keep_alive,
    );
    OutMsg {
        head,
        body: reply.body,
        head_pos: 0,
        body_pos: 0,
        close_after: !keep_alive,
        interim: false,
        parsed_at,
        tier: reply.x_cache,
    }
}

/// A routed response: status, cache disposition, content type, shared
/// body bytes.
#[derive(Debug)]
struct Reply {
    status: u16,
    x_cache: Option<&'static str>,
    content_type: &'static str,
    body: Arc<[u8]>,
}

impl Reply {
    fn ok(body: Arc<[u8]>) -> Self {
        Reply {
            status: 200,
            x_cache: None,
            content_type: "application/json",
            body,
        }
    }

    /// A Prometheus text-exposition body (`GET /metrics?format=prom`).
    fn ok_prom(body: Arc<[u8]>) -> Self {
        Reply {
            status: 200,
            x_cache: None,
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Reply {
            status,
            x_cache: None,
            content_type: "application/json",
            body: Arc::from(
                Json::obj(vec![("error", Json::Str(message.to_string()))])
                    .render()
                    .into_bytes(),
            ),
        }
    }
}

/// Routes a parsed request on the reactor thread. `Some` is the answer
/// (static bodies, `/metrics`, errors, and in-memory cache hits — all
/// cheap); `None` means the request needs a worker (it executes a run
/// or touches the disk store). Every body except `/metrics` is a pure
/// function of the request — the worker-pool determinism contract.
///
/// The target is split at `?` before matching, so `GET /metrics` can
/// negotiate its format (`?format=prom`, or an `Accept: text/plain` /
/// OpenMetrics header, selects the Prometheus text exposition).
fn route_fast(request: &http::Request, state: &AppState, raw_memo: &mut RawMemo) -> Option<Reply> {
    let target = request.head.target.as_str();
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    match (request.head.method.as_str(), path) {
        ("POST", "/run") => {
            state.metrics.bump(&state.metrics.run_requests);
            fast_run(state, &request.body, raw_memo)
        }
        // Session creation builds a workload and updates rebuild a CSR —
        // both are worker-side work, never reactor-side.
        ("POST", "/session" | "/update") => None,
        ("GET", "/scenarios") => Some(Reply::ok(Arc::clone(&state.scenarios))),
        ("GET", "/algorithms") => Some(Reply::ok(Arc::clone(&state.algorithms))),
        ("GET", "/healthz") => Some(Reply::ok(Arc::clone(&state.healthz))),
        ("GET", "/metrics") => {
            let prom = query.split('&').any(|kv| kv == "format=prom")
                || request
                    .head
                    .accept
                    .as_deref()
                    .is_some_and(|a| a.contains("text/plain") || a.contains("openmetrics"));
            Some(if prom {
                Reply::ok_prom(Arc::from(prom_metrics_body(state)))
            } else {
                Reply::ok(Arc::from(metrics_body(state)))
            })
        }
        (
            method,
            "/run" | "/session" | "/update" | "/scenarios" | "/algorithms" | "/healthz"
            | "/metrics",
        ) => Some(Reply::error(
            405,
            &format!("method {method} not allowed here"),
        )),
        (_, target) => Some(Reply::error(404, &format!("no such endpoint `{target}`"))),
    }
}

/// The reactor-side `POST /run` fast path: answer from the raw-request
/// memo or the in-memory cache without touching the pool or the disk.
/// Returns `None` to dispatch to a worker (file workloads, memory
/// misses).
fn fast_run(state: &AppState, body: &[u8], raw_memo: &mut RawMemo) -> Option<Reply> {
    // Session-scoped runs are keyed by (id, generation), not by body
    // bytes: they must bypass the raw memo entirely — the same
    // `{"session": id}` bytes name *different* responses across
    // generations — and consult only the generation-folded LRU key.
    if let Some(session) = parse_session_ref(body) {
        return fast_session_run(state, session);
    }
    if let Some(memoized) = raw_memo.get(body) {
        state.metrics.bump(&state.metrics.cache_hits);
        return Some(Reply {
            status: 200,
            x_cache: Some("hit"),
            content_type: "application/json",
            body: Arc::clone(memoized),
        });
    }
    let mut spec = match parse_run_body(body) {
        Ok(spec) => spec,
        Err(message) => return Some(Reply::error(400, &message)),
    };
    if spec.graph_file.is_some() {
        return None; // file I/O belongs on a worker
    }
    if let Err(refusal) = admit(&mut spec, state) {
        return Some(refusal);
    }
    let key = cache_key(&spec, None);
    let hit = lock_cache(state).get(&key);
    match hit {
        Some(cached) => {
            state.metrics.bump(&state.metrics.cache_hits);
            raw_memo.insert(body, &cached);
            Some(Reply {
                status: 200,
                x_cache: Some("hit"),
                content_type: "application/json",
                body: cached,
            })
        }
        None => None,
    }
}

/// Shared admission: refuse oversized registry workloads, then fold the
/// daemon's cap into the spec's budget and attach the scratch arena.
///
/// Runs identically on the fast path and the worker path — in
/// particular the budget fold happens **before** [`cache_key`] is
/// computed (the key includes `budget.max_n`), so both paths address
/// the same cache entry for the same request bytes.
fn admit(spec: &mut RunSpec, state: &AppState) -> Result<(), Reply> {
    // Admission: resolve the *effective* workload size — the explicit
    // `n` or the scenario's default — and refuse specs above the
    // daemon's cap explicitly (the registry's scale tier lands here
    // unless the operator raised `--max-n`). File workloads are checked
    // after loading, when their vertex count is known.
    if spec.graph_file.is_none() {
        let effective_n = spec
            .n
            .or_else(|| scenarios::get(&spec.scenario).map(|sc| sc.default_n));
        if let Some(n) = effective_n {
            if n > state.max_n {
                return Err(Reply::error(
                    400,
                    &format!(
                        "invalid parameter `n`: this spec resolves to n = {n}, but served \
                         runs are capped at n = {} — restart with `mmvc serve --max-n {n}` \
                         to admit scale-tier workloads",
                        state.max_n
                    ),
                ));
            }
        }
    }
    // Backstop: fold the daemon's cap into the spec's admission budget
    // (`RunBudget::max_n`), so workloads whose size is only known later
    // — graph files in particular — are refused by the run driver
    // itself.
    spec.budget.max_n = Some(
        spec.budget
            .max_n
            .map_or(state.max_n, |m| m.min(state.max_n)),
    );
    // Served runs share the daemon's scratch arena and telemetry sink:
    // the cache key ignores the executor (it never changes a reported
    // number), so pooling and tracing are invisible to clients —
    // scratch stops repeat builds from allocating, telemetry gives
    // cache-miss runs build/round spans in the daemon's trace files.
    spec.executor = spec
        .executor
        .clone()
        .with_scratch(&state.scratch)
        .with_telemetry(&state.telemetry);
    Ok(())
}

/// The worker-side `POST /run` path: body → spec → memory cache →
/// persistent store → (on miss) execute → populate both tiers.
fn handle_run(state: &AppState, body: &[u8]) -> Reply {
    let mut spec = match parse_run_body(body) {
        Ok(spec) => spec,
        Err(message) => return Reply::error(400, &message),
    };
    if let Err(refusal) = admit(&mut spec, state) {
        return refusal;
    }

    // Resolve the workload's cache identity — and, for file workloads,
    // the bytes — *once*, so the hash in the key is the hash of exactly
    // what runs (no read-twice races with concurrent file edits).
    let file = match &spec.graph_file {
        Some(path) => {
            if spec.n.is_some() {
                return Reply::error(
                    400,
                    "invalid parameter `n`: a size override does not apply to a graph file \
                     workload",
                );
            }
            match std::fs::metadata(path) {
                Ok(meta) if meta.len() > MAX_GRAPH_FILE_BYTES => {
                    return Reply::error(
                        400,
                        &format!(
                            "cannot load graph file `{path}`: larger than \
                             {MAX_GRAPH_FILE_BYTES} bytes"
                        ),
                    );
                }
                _ => {}
            }
            match std::fs::read(path) {
                Ok(bytes) => Some((path.clone(), bytes)),
                Err(e) => {
                    return Reply::error(400, &format!("cannot load graph file `{path}`: {e}"))
                }
            }
        }
        None => None,
    };
    let key = cache_key(&spec, file.as_ref().map(|(_, bytes)| fnv1a(bytes)));

    // Memory tier (the fast path may have raced us into it).
    if let Some(body) = lock_cache(state).get(&key) {
        state.metrics.bump(&state.metrics.cache_hits);
        return Reply {
            status: 200,
            x_cache: Some("hit"),
            content_type: "application/json",
            body,
        };
    }
    // Disk tier: a restarted daemon finds yesterday's reports here and
    // skips the run entirely.
    if let Some(store) = &state.store {
        if let Some(body) = store.load(&key) {
            state.metrics.bump(&state.metrics.store_hits);
            lock_cache(state).insert(key, Arc::clone(&body));
            return Reply {
                status: 200,
                x_cache: Some("store"),
                content_type: "application/json",
                body,
            };
        }
    }

    let report = match &file {
        // The folded admission cap applies before the CSR arrays are
        // allocated: a tiny file declaring a huge vertex count is
        // refused by arithmetic, not by an OOM'd worker.
        Some((path, bytes)) => {
            mmvc_graph::io::read_edge_list_capped(bytes.as_slice(), spec.budget.max_n)
                .map_err(|source| CoreError::GraphFile {
                    path: path.clone(),
                    source,
                })
                .and_then(|g| run_on(&g, &format!("file:{path}"), &spec))
        }
        None => mmvc_core::run::run(&spec),
    };
    let report = match report {
        Ok(report) => report,
        // A graph-file failure is sanitized: the daemon reads
        // caller-named server-local paths, and `ReadError::Parse`
        // echoes the offending line verbatim — relaying that would
        // disclose the first line of any non-edge-list file a client
        // cares to probe.
        Err(CoreError::GraphFile { path, source }) => {
            use mmvc_graph::io::ReadError;
            let detail = match source {
                ReadError::Parse { line, .. } => {
                    format!("cannot parse line {line} as an edge list")
                }
                other => other.to_string(),
            };
            return Reply::error(400, &format!("cannot load graph file `{path}`: {detail}"));
        }
        Err(e) => return Reply::error(400, &e.to_string()),
    };

    let body: Arc<[u8]> = Arc::from(canonical_report_body(report));
    state.metrics.bump(&state.metrics.cache_misses);
    lock_cache(state).insert(key.clone(), Arc::clone(&body));
    if let Some(store) = &state.store {
        // A failed write costs durability, not availability.
        if store.save(&key, &body).is_err() {
            state.metrics.bump(&state.metrics.store_errors);
        }
    }
    Reply {
        status: 200,
        x_cache: Some("miss"),
        content_type: "application/json",
        body,
    }
}

/// Worker-side dispatch: routes a request the reactor handed off to its
/// handler by (method, path). `route_fast` only returns `None` for
/// these three paths, so the catch-all is unreachable in practice.
fn handle_worker(state: &AppState, request: &http::Request) -> Reply {
    let target = request.head.target.as_str();
    let path = target.split_once('?').map_or(target, |(path, _)| path);
    let _span = state.telemetry.span_tagged("serve.worker", path);
    match (request.head.method.as_str(), path) {
        ("POST", "/run") => match parse_session_ref(&request.body) {
            Some(session) => handle_session_run(state, session),
            None => handle_run(state, &request.body),
        },
        ("POST", "/session") => handle_session_create(state, &request.body),
        ("POST", "/update") => handle_session_update(state, &request.body),
        (method, target) => Reply::error(404, &format!("no handler for {method} {target}")),
    }
}

/// Recognizes a session-scoped `POST /run` body: a JSON object whose
/// only key is `session` (a non-negative integer). Anything else —
/// including malformed JSON — falls through to the ordinary spec path,
/// whose strict parser owns the error message.
fn parse_session_ref(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = Json::parse(text).ok()?;
    let fields = doc.as_obj()?;
    match fields {
        [(key, Json::Int(id))] if key == "session" && *id >= 0 => Some(*id as u64),
        _ => None,
    }
}

/// Looks up a live session handle.
fn session_handle(state: &AppState, id: u64) -> Option<Arc<Mutex<Session>>> {
    lock_sessions(state).map.get(&id).cloned()
}

/// Locks a session table / session, recovering from poisoning the same
/// way [`lock_cache`] does.
fn lock_sessions(state: &AppState) -> std::sync::MutexGuard<'_, SessionTable> {
    state
        .sessions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_session(session: &Mutex<Session>) -> std::sync::MutexGuard<'_, Session> {
    session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn no_such_session(id: u64) -> Reply {
    Reply::error(
        400,
        &format!("no such session {id} (sessions do not survive daemon restarts)"),
    )
}

/// The reactor-side fast path for a session-scoped run: answer from the
/// LRU under the generation-folded key without touching the pool. Uses
/// `try_lock` on the session — if a worker holds it (a run or update in
/// progress), the request queues behind it on the pool instead of
/// stalling the reactor.
fn fast_session_run(state: &AppState, id: u64) -> Option<Reply> {
    state.metrics.bump(&state.metrics.run_requests);
    let Some(handle) = session_handle(state, id) else {
        return Some(no_such_session(id));
    };
    let key = {
        let session = handle.try_lock().ok()?;
        session_cache_key(session.spec(), id, session.generation())
    };
    let cached = lock_cache(state).get(&key)?;
    state.metrics.bump(&state.metrics.cache_hits);
    Some(Reply {
        status: 200,
        x_cache: Some("hit"),
        content_type: "application/json",
        body: cached,
    })
}

/// Worker-side `POST /session`: spec in, resident warm session out. The
/// spec admits exactly like `POST /run` (same cap, same budget fold),
/// then the workload is built once and takes residence.
fn handle_session_create(state: &AppState, body: &[u8]) -> Reply {
    let mut spec = match parse_run_body(body) {
        Ok(spec) => spec,
        Err(message) => return Reply::error(400, &message),
    };
    if spec.graph_file.is_some() {
        // File workloads mutate out-of-band; a resident copy would
        // detach from the content hash that makes file keys sound.
        return Reply::error(
            400,
            "graph_file workloads cannot take session residence; POST /run serves them",
        );
    }
    if let Err(refusal) = admit(&mut spec, state) {
        return refusal;
    }
    // Refuse before the (possibly expensive) workload build when the
    // table is already full; the insert re-checks under the lock.
    if lock_sessions(state).map.len() >= MAX_SESSIONS {
        return session_table_full();
    }
    let session = match Session::new(&spec) {
        Ok(session) => session,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let n = session.graph().num_vertices();
    let num_edges = session.graph().num_edges();
    let label = session.label().to_string();
    let mut table = lock_sessions(state);
    if table.map.len() >= MAX_SESSIONS {
        return session_table_full();
    }
    let id = table.next_id;
    table.next_id += 1;
    table.map.insert(id, Arc::new(Mutex::new(session)));
    drop(table);
    state.metrics.bump(&state.metrics.sessions);
    Reply::ok(Arc::from(
        Json::obj(vec![
            ("session", Json::Int(id as i64)),
            ("generation", Json::Int(0)),
            ("n", Json::Int(n as i64)),
            ("num_edges", Json::Int(num_edges as i64)),
            ("scenario", Json::Str(label)),
        ])
        .render()
        .into_bytes(),
    ))
}

fn session_table_full() -> Reply {
    Reply::error(
        400,
        &format!("session table full ({MAX_SESSIONS} resident sessions)"),
    )
}

/// Worker-side `POST /update`: `{"session": id, "insert": [[u,v],...],
/// "delete": [[u,v],...]}` → delta-merge rebuild under the session's
/// lock, generation bump. Prior cache entries go stale by construction
/// (they are keyed under the old generation).
fn handle_session_update(state: &AppState, body: &[u8]) -> Reply {
    let (id, delta) = match parse_update_body(body) {
        Ok(parsed) => parsed,
        Err(message) => return Reply::error(400, &message),
    };
    let Some(handle) = session_handle(state, id) else {
        return no_such_session(id);
    };
    let mut session = lock_session(&handle);
    let outcome = match session.apply_update(&delta) {
        Ok(outcome) => outcome,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    drop(session);
    state.metrics.bump(&state.metrics.updates);
    Reply::ok(Arc::from(
        Json::obj(vec![
            ("session", Json::Int(id as i64)),
            ("generation", Json::Int(outcome.generation as i64)),
            ("num_edges", Json::Int(outcome.num_edges as i64)),
            ("inserted", Json::Int(outcome.inserted as i64)),
            ("deleted", Json::Int(outcome.deleted as i64)),
        ])
        .render()
        .into_bytes(),
    ))
}

/// Decodes a `POST /update` body. Endpoint pairs are `[u, v]` arrays;
/// self-loops and out-of-range vertices are refused (staging rejects the
/// former, apply rejects the latter).
fn parse_update_body(body: &[u8]) -> Result<(u64, GraphDelta), String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let Some(fields) = doc.as_obj() else {
        return Err("request body must be a JSON object".to_string());
    };
    let mut session: Option<u64> = None;
    let mut delta = GraphDelta::new();
    let stage = |value: &Json, field: &str, insert: bool, delta: &mut GraphDelta| {
        let Some(pairs) = value.as_arr() else {
            return Err(format!("field `{field}` must be an array of [u, v] pairs"));
        };
        for pair in pairs {
            let endpoints = pair
                .as_arr()
                .ok_or_else(|| format!("field `{field}` must contain [u, v] pairs, not scalars"))?;
            let [Json::Int(u), Json::Int(v)] = endpoints else {
                return Err(format!("field `{field}` pairs must be two integers"));
            };
            if *u < 0 || *v < 0 || *u > u32::MAX as i64 || *v > u32::MAX as i64 {
                return Err(format!("field `{field}` endpoints must fit in u32"));
            }
            let staged = if insert {
                delta.insert_edge(*u as u32, *v as u32)
            } else {
                delta.delete_edge(*u as u32, *v as u32)
            };
            staged.map_err(|e| format!("field `{field}`: {e}"))?;
        }
        Ok(())
    };
    for (key, value) in fields {
        match key.as_str() {
            "session" => match value {
                Json::Int(id) if *id >= 0 => session = Some(*id as u64),
                _ => return Err("field `session` must be a non-negative integer".to_string()),
            },
            "insert" => stage(value, "insert", true, &mut delta)?,
            "delete" => stage(value, "delete", false, &mut delta)?,
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    let id = session.ok_or_else(|| "field `session` is required".to_string())?;
    Ok((id, delta))
}

/// Worker-side session run: holds the session lock across the
/// incremental re-run (updates to this session queue behind it — which
/// is what makes generation-keyed caching sound), populates the LRU
/// under the current generation's key, and **never** touches the disk
/// store (generations restart with the daemon; a persisted body could
/// alias a future generation).
fn handle_session_run(state: &AppState, id: u64) -> Reply {
    let Some(handle) = session_handle(state, id) else {
        return no_such_session(id);
    };
    let mut session = lock_session(&handle);
    let key = session_cache_key(session.spec(), id, session.generation());
    // The fast path may have raced an identical request into the cache.
    if let Some(body) = lock_cache(state).get(&key) {
        state.metrics.bump(&state.metrics.cache_hits);
        return Reply {
            status: 200,
            x_cache: Some("hit"),
            content_type: "application/json",
            body,
        };
    }
    let report = match session.run_incremental() {
        Ok(report) => report,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    drop(session);
    let body: Arc<[u8]> = Arc::from(canonical_report_body(report));
    state.metrics.bump(&state.metrics.cache_misses);
    lock_cache(state).insert(key, Arc::clone(&body));
    Reply {
        status: 200,
        x_cache: Some("miss"),
        content_type: "application/json",
        body,
    }
}

/// Locks the report cache, recovering from poisoning: cached bodies are
/// immutable bytes and the LRU bookkeeping is always internally
/// consistent at lock release, so an unwinding holder cannot leave
/// anything worth discarding — and one poisoned lock must not turn
/// every later `/run` into a 500.
fn lock_cache(state: &AppState) -> std::sync::MutexGuard<'_, ReportCache> {
    state
        .cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decodes and validates a `POST /run` body into a spec ready to
/// execute: strict JSON, strict fields (via [`RunSpec::from_fields`]),
/// and the sequential executor (inside a worker thread, fanning out
/// further buys nothing — and by the round engine's contract the
/// executor never changes a reported number).
///
/// # Errors
///
/// A human-readable message describing the first problem found.
pub fn parse_run_body(body: &[u8]) -> Result<RunSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let Some(doc_fields) = doc.as_obj() else {
        return Err("request body must be a JSON object".to_string());
    };
    let mut fields: Vec<(String, SpecValue)> = Vec::with_capacity(doc_fields.len());
    for (key, value) in doc_fields {
        let value = match value {
            Json::Null => SpecValue::Null,
            Json::Bool(b) => SpecValue::Bool(*b),
            Json::Int(v) => SpecValue::Int(*v),
            Json::Float(v) => SpecValue::Float(*v),
            Json::Str(s) => SpecValue::Str(s.clone()),
            Json::Arr(_) | Json::Obj(_) => {
                return Err(format!("field `{key}` must be a scalar"));
            }
        };
        fields.push((key.clone(), value));
    }
    let mut spec = RunSpec::from_fields(&fields).map_err(|e| e.to_string())?;
    spec.executor = ExecutorConfig::sequential();
    Ok(spec)
}

/// The canonical served body for a report: `wall_ms` (the single
/// nondeterministic field) zeroed, then the deterministic JSON renderer
/// — exactly the bytes of `mmvc run --json --canonical`.
pub fn canonical_report_body(mut report: RunReport) -> Vec<u8> {
    report.wall_ms = 0.0;
    report_json(&report).render().into_bytes()
}

/// The content-addressed cache key: the compact canonical serialization
/// of everything a report depends on. Registry workloads are addressed
/// by spec alone (reports are pure functions of the spec); file
/// workloads also carry the FNV-1a hash of the edge-list bytes, so the
/// key names the *content* that ran, not the path. The executor is
/// deliberately excluded — by the round engine's contract it never
/// changes a report — and override knobs are not expressible in
/// `POST /run` bodies (every served spec carries the defaults). The
/// same key addresses both cache tiers (memory and [`store`]).
pub fn cache_key(spec: &RunSpec, graph_content_hash: Option<u64>) -> String {
    keyed(spec, graph_content_hash, None)
}

/// The cache key for a session-scoped run: the ordinary [`cache_key`]
/// with `(session id, generation)` folded into the workload object —
/// exactly how file keys fold content hashes. A `POST /update` bumps
/// the generation, so every pre-update entry is unreachable from then
/// on: invalidation by construction, not by eviction. Session keys
/// address only the in-memory tier (never the disk [`store`] — see
/// `handle_session_run`'s soundness note).
pub fn session_cache_key(spec: &RunSpec, session: u64, generation: u64) -> String {
    keyed(spec, None, Some((session, generation)))
}

fn keyed(spec: &RunSpec, graph_content_hash: Option<u64>, session: Option<(u64, u64)>) -> String {
    let workload = match (&spec.graph_file, graph_content_hash) {
        (Some(path), Some(hash)) => Json::obj(vec![
            ("graph_file", Json::Str(path.clone())),
            ("content_hash", Json::Str(format!("{hash:016x}"))),
        ]),
        // A file spec without a hash still keys on the path (with the
        // missing hash explicit) — it must never alias a scenario key
        // or another file's key.
        (Some(path), None) => Json::obj(vec![
            ("graph_file", Json::Str(path.clone())),
            ("content_hash", Json::Null),
        ]),
        (None, _) => match session {
            Some((id, generation)) => Json::obj(vec![
                ("scenario", Json::Str(spec.scenario.clone())),
                ("session", Json::Str(id.to_string())),
                ("generation", Json::Str(generation.to_string())),
            ]),
            None => Json::obj(vec![("scenario", Json::Str(spec.scenario.clone()))]),
        },
    };
    let opt_int = |v: Option<usize>| match v {
        Some(v) => Json::Int(v as i64),
        None => Json::Null,
    };
    Json::obj(vec![
        ("schema", Json::Str("mmvc-serve-spec/v2".to_string())),
        ("algorithm", Json::Str(spec.algorithm.name().to_string())),
        ("workload", workload),
        ("n", opt_int(spec.n)),
        ("eps", Json::Float(spec.eps.get())),
        ("seed", Json::Str(spec.seed.to_string())),
        (
            "budget",
            Json::obj(vec![
                ("max_rounds", opt_int(spec.budget.max_rounds)),
                ("max_load_words", opt_int(spec.budget.max_load_words)),
                ("max_n", opt_int(spec.budget.max_n)),
            ]),
        ),
    ])
    .render_compact()
}

/// 64-bit FNV-1a — the content hash for file workloads. Not
/// cryptographic; it addresses cache entries, it does not authenticate
/// them.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn healthz_body() -> Vec<u8> {
    Json::obj(vec![
        ("status", Json::Str("ok".to_string())),
        ("service", Json::Str("mmvc-serve".to_string())),
    ])
    .render()
    .into_bytes()
}

fn scenarios_body() -> Vec<u8> {
    Json::obj(vec![(
        "scenarios",
        Json::Arr(
            scenarios::all()
                .iter()
                .map(|sc| {
                    Json::obj(vec![
                        ("name", Json::Str(sc.name.to_string())),
                        ("default_n", Json::Int(sc.default_n as i64)),
                        ("description", Json::Str(sc.description.to_string())),
                    ])
                })
                .collect(),
        ),
    )])
    .render()
    .into_bytes()
}

fn algorithms_body() -> Vec<u8> {
    Json::obj(vec![(
        "algorithms",
        Json::Arr(
            AlgorithmKind::ALL
                .iter()
                .map(|kind| {
                    Json::obj(vec![
                        ("name", Json::Str(kind.name().to_string())),
                        ("description", Json::Str(kind.description().to_string())),
                    ])
                })
                .collect(),
        ),
    )])
    .render()
    .into_bytes()
}

fn metrics_body(state: &AppState) -> Vec<u8> {
    let m = &state.metrics;
    let snap = m.latency.snapshot();
    let (p50, p90, p99, p999) = snap.percentiles_ms();
    let scratch = state.scratch.stats();
    let cache = lock_cache(state);
    Json::obj(vec![
        ("requests", Json::Int(m.read(&m.requests) as i64)),
        ("run_requests", Json::Int(m.read(&m.run_requests) as i64)),
        ("errors", Json::Int(m.read(&m.errors) as i64)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::Int(m.read(&m.cache_hits) as i64)),
                ("misses", Json::Int(m.read(&m.cache_misses) as i64)),
                ("store_hits", Json::Int(m.read(&m.store_hits) as i64)),
                ("store_errors", Json::Int(m.read(&m.store_errors) as i64)),
                ("entries", Json::Int(cache.len() as i64)),
                ("capacity", Json::Int(cache.capacity() as i64)),
            ]),
        ),
        (
            "store_dir",
            match &state.store {
                Some(store) => Json::Str(store.root().display().to_string()),
                None => Json::Null,
            },
        ),
        ("sessions", Json::Int(m.read(&m.sessions) as i64)),
        ("updates", Json::Int(m.read(&m.updates) as i64)),
        ("in_flight", Json::Int(m.read(&m.in_flight) as i64)),
        ("connections", Json::Int(m.read(&m.connections) as i64)),
        (
            "keepalive_reuses",
            Json::Int(m.read(&m.keepalive_reuses) as i64),
        ),
        ("bytes_served", Json::Int(m.read(&m.bytes_served) as i64)),
        ("max_n", Json::Int(state.max_n as i64)),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::Float(p50)),
                ("p90", Json::Float(p90)),
                ("p99", Json::Float(p99)),
                ("p999", Json::Float(p999)),
                ("count", Json::Int(snap.count as i64)),
                ("sum", Json::Float(snap.sum_ms)),
                // Cumulative log2 buckets (Prometheus shape), trimmed
                // to the occupied range.
                (
                    "buckets",
                    Json::Arr(
                        snap.occupied()
                            .iter()
                            .map(|&(le, count)| {
                                Json::obj(vec![
                                    ("le", Json::Float(le)),
                                    ("count", Json::Int(count as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("overflow", Json::Int(snap.overflow as i64)),
            ]),
        ),
        (
            "scratch",
            Json::obj(vec![
                ("allocations", Json::Int(scratch.allocations as i64)),
                ("allocated_bytes", Json::Int(scratch.allocated_bytes as i64)),
                ("reuses", Json::Int(scratch.reuses as i64)),
                ("reused_bytes", Json::Int(scratch.reused_bytes as i64)),
            ]),
        ),
        ("workers", Json::Int(state.workers as i64)),
    ])
    .render()
    .into_bytes()
}

/// The Prometheus text-exposition rendering of `GET /metrics`
/// (`?format=prom` or an `Accept: text/plain` header): every counter as
/// a `mmvc_*_total` counter family, cache/session occupancy as gauges,
/// the scratch-arena stats, and the request latency histogram in native
/// Prometheus histogram shape — cumulative `_bucket{le="..."}` series
/// over the log2 bounds (seconds, per convention), `+Inf`, `_sum`,
/// `_count`.
fn prom_metrics_body(state: &AppState) -> Vec<u8> {
    use std::fmt::Write as _;
    let m = &state.metrics;
    let snap = m.latency.snapshot();
    let scratch = state.scratch.stats();
    let (cache_entries, cache_capacity) = {
        let cache = lock_cache(state);
        (cache.len(), cache.capacity())
    };
    let mut out = String::with_capacity(2048);
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "mmvc_requests_total",
        "Requests fully served (any endpoint, any status).",
        m.read(&m.requests),
    );
    counter(
        "mmvc_run_requests_total",
        "POST /run requests served.",
        m.read(&m.run_requests),
    );
    counter(
        "mmvc_errors_total",
        "Responses with a 4xx/5xx status.",
        m.read(&m.errors),
    );
    counter(
        "mmvc_cache_hits_total",
        "Responses answered from the in-memory report cache.",
        m.read(&m.cache_hits),
    );
    counter(
        "mmvc_cache_misses_total",
        "Responses that executed the algorithm.",
        m.read(&m.cache_misses),
    );
    counter(
        "mmvc_store_hits_total",
        "Responses answered from the persistent store.",
        m.read(&m.store_hits),
    );
    counter(
        "mmvc_store_errors_total",
        "Failed persistent-store writes.",
        m.read(&m.store_errors),
    );
    counter(
        "mmvc_connections_total",
        "Connections accepted.",
        m.read(&m.connections),
    );
    counter(
        "mmvc_keepalive_reuses_total",
        "Requests served on an already-used connection.",
        m.read(&m.keepalive_reuses),
    );
    counter(
        "mmvc_bytes_served_total",
        "Response bytes (heads + bodies) handed to sockets.",
        m.read(&m.bytes_served),
    );
    counter(
        "mmvc_sessions_total",
        "Sessions created via POST /session.",
        m.read(&m.sessions),
    );
    counter(
        "mmvc_updates_total",
        "Deltas applied via POST /update.",
        m.read(&m.updates),
    );
    counter(
        "mmvc_scratch_allocations_total",
        "Scratch-arena requests that needed fresh allocator memory.",
        scratch.allocations,
    );
    counter(
        "mmvc_scratch_allocated_bytes_total",
        "Fresh bytes the scratch arena requested from the allocator.",
        scratch.allocated_bytes,
    );
    counter(
        "mmvc_scratch_reuses_total",
        "Scratch-arena requests served from retained capacity.",
        scratch.reuses,
    );
    counter(
        "mmvc_scratch_reused_bytes_total",
        "Bytes of retained scratch capacity handed back out.",
        scratch.reused_bytes,
    );
    let mut gauge = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        "mmvc_in_flight",
        "Requests currently dispatched to the worker pool.",
        m.read(&m.in_flight),
    );
    gauge(
        "mmvc_cache_entries",
        "Entries resident in the in-memory report cache.",
        cache_entries as u64,
    );
    gauge(
        "mmvc_cache_capacity",
        "Configured in-memory report-cache capacity.",
        cache_capacity as u64,
    );
    gauge("mmvc_workers", "Worker threads.", state.workers as u64);

    let name = "mmvc_request_duration_seconds";
    let _ = writeln!(
        out,
        "# HELP {name} Request service time, parse-complete to last response byte."
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    for &(upper_ms, cumulative) in &snap.buckets {
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            upper_ms / 1e3
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {}", snap.sum_ms / 1e3);
    let _ = writeln!(out, "{name}_count {}", snap.count);
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_run_body_happy_and_sad() {
        let spec =
            parse_run_body(br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 96}"#)
                .unwrap();
        assert_eq!(spec.algorithm, AlgorithmKind::GreedyMis);
        assert_eq!(spec.n, Some(96));
        assert!(spec.executor.is_sequential(), "served runs are sequential");

        assert!(parse_run_body(b"not json").unwrap_err().contains("JSON"));
        assert!(parse_run_body(b"[1]").unwrap_err().contains("object"));
        assert!(parse_run_body(
            br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": [1]}"#
        )
        .unwrap_err()
        .contains("scalar"));
        assert!(parse_run_body(&[0xFF, 0xFE]).unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn cache_key_separates_every_dimension() {
        let base = {
            let mut s = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
            s.n = Some(96);
            s
        };
        let key = cache_key(&base, None);
        assert!(key.contains("\"scenario\":\"gnp-sparse\""));
        assert!(!key.contains('\n'), "compact form");
        assert_eq!(key, cache_key(&base.clone(), None), "stable");

        let mut other = base.clone();
        other.seed = 43;
        assert_ne!(cache_key(&other, None), key);
        let mut other = base.clone();
        other.n = None;
        assert_ne!(cache_key(&other, None), key);
        let mut other = base.clone();
        other.budget.max_rounds = Some(10);
        assert_ne!(cache_key(&other, None), key);

        let file = RunSpec::from_file(AlgorithmKind::GreedyMis, "g.txt");
        let a = cache_key(&file, Some(1));
        let b = cache_key(&file, Some(2));
        assert_ne!(a, b, "content hash is part of the address");
        assert!(a.contains("content_hash"));

        // A file spec without a hash must alias neither a scenario key
        // nor another file's key.
        let unhashed = cache_key(&file, None);
        let other_file = RunSpec::from_file(AlgorithmKind::GreedyMis, "h.txt");
        assert!(unhashed.contains("g.txt"));
        assert_ne!(unhashed, cache_key(&other_file, None));
        let mut empty_scenario = RunSpec::new(AlgorithmKind::GreedyMis, "");
        empty_scenario.n = file.n;
        assert_ne!(unhashed, cache_key(&empty_scenario, None));
    }

    #[test]
    fn fnv1a_reference_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn static_bodies_are_valid_json() {
        for body in [healthz_body(), scenarios_body(), algorithms_body()] {
            let text = String::from_utf8(body).unwrap();
            let doc = Json::parse(&text).unwrap();
            assert!(doc.as_obj().is_some());
        }
        let scenarios_doc = Json::parse(&String::from_utf8(scenarios_body()).unwrap()).unwrap();
        assert_eq!(
            scenarios_doc
                .get("scenarios")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            scenarios::all().len()
        );
        let algorithms_doc = Json::parse(&String::from_utf8(algorithms_body()).unwrap()).unwrap();
        assert_eq!(
            algorithms_doc
                .get("algorithms")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            AlgorithmKind::ALL.len()
        );
    }

    #[test]
    fn admission_folds_the_cap_before_the_key() {
        // The fast path and the worker path must address the same cache
        // entry: `admit` folds the daemon cap into `budget.max_n`
        // (which the key includes) for both.
        let state = AppState {
            cache: Mutex::new(ReportCache::new(4)),
            store: None,
            metrics: Metrics::new(),
            workers: 1,
            max_n: 1024,
            sessions: Mutex::new(SessionTable::default()),
            scratch: mmvc_substrate::ScratchPool::new(),
            telemetry: Telemetry::disabled(),
            healthz: Arc::from(healthz_body()),
            scenarios: Arc::from(scenarios_body()),
            algorithms: Arc::from(algorithms_body()),
        };
        let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
        spec.n = Some(96);
        let unfolded = cache_key(&spec, None);
        admit(&mut spec, &state).expect("admitted");
        assert_eq!(spec.budget.max_n, Some(1024), "cap folded into budget");
        assert_ne!(cache_key(&spec, None), unfolded);

        let mut tight = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
        tight.n = Some(96);
        tight.budget.max_n = Some(512);
        admit(&mut tight, &state).expect("admitted");
        assert_eq!(tight.budget.max_n, Some(512), "tighter budget survives");

        let mut huge = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
        huge.n = Some(4096);
        let refusal = admit(&mut huge, &state).expect_err("refused");
        assert_eq!(refusal.status, 400);
    }

    #[test]
    fn raw_memo_shortcuts_repeat_bodies_and_respects_the_cap() {
        let state = AppState {
            cache: Mutex::new(ReportCache::new(4)),
            store: None,
            metrics: Metrics::new(),
            workers: 1,
            max_n: 1024,
            sessions: Mutex::new(SessionTable::default()),
            scratch: mmvc_substrate::ScratchPool::new(),
            telemetry: Telemetry::disabled(),
            healthz: Arc::from(healthz_body()),
            scenarios: Arc::from(scenarios_body()),
            algorithms: Arc::from(algorithms_body()),
        };
        let body = br#"{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": 64, "seed": 3}"#;
        let mut spec = parse_run_body(body).unwrap();
        admit(&mut spec, &state).unwrap();
        let canonical: Arc<[u8]> = Arc::from(&b"canonical-bytes"[..]);
        lock_cache(&state).insert(cache_key(&spec, None), Arc::clone(&canonical));

        // First hit comes from the LRU and populates the memo ...
        let mut memo = RawMemo::new(4);
        let first = fast_run(&state, body, &mut memo).expect("hit");
        assert_eq!(first.x_cache, Some("hit"));
        assert_eq!(first.body.as_ref(), canonical.as_ref());
        assert_eq!(memo.map.len(), 1);

        // ... so a repeat of the same bytes answers even with the LRU
        // emptied: no parse, no key render, no lock.
        lock_cache(&state).insert("unrelated".into(), Arc::from(&b"x"[..]));
        let again = fast_run(&state, body, &mut memo).expect("memo hit");
        assert_eq!(again.body.as_ref(), canonical.as_ref());

        // Different bytes (even an equivalent spec spelled differently)
        // miss the memo and fall through to the canonical path.
        let respelled =
            br#"{"scenario": "gnp-sparse", "algorithm": "greedy-mis", "seed": 3, "n": 64}"#;
        let equivalent = fast_run(&state, respelled, &mut memo).expect("canonical hit");
        assert_eq!(equivalent.body.as_ref(), canonical.as_ref());
        assert_eq!(memo.map.len(), 2, "both spellings memoized");

        // A zero-capacity memo (cache disabled) never stores anything.
        let mut disabled = RawMemo::new(0);
        disabled.insert(body, &canonical);
        assert!(disabled.map.is_empty());
    }

    fn test_state() -> AppState {
        AppState {
            cache: Mutex::new(ReportCache::new(4)),
            store: None,
            metrics: Metrics::new(),
            workers: 1,
            max_n: 1024,
            sessions: Mutex::new(SessionTable::default()),
            scratch: mmvc_substrate::ScratchPool::new(),
            telemetry: Telemetry::disabled(),
            healthz: Arc::from(healthz_body()),
            scenarios: Arc::from(scenarios_body()),
            algorithms: Arc::from(algorithms_body()),
        }
    }

    #[test]
    fn metrics_body_exposes_histogram_and_scratch() {
        let state = test_state();
        state.metrics.record_latency_ms(0.5);
        state.metrics.record_latency_ms(4.0);
        let doc = Json::parse(&String::from_utf8(metrics_body(&state)).unwrap()).unwrap();
        let latency = doc.get("latency_ms").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_i64), Some(2));
        let buckets = latency.get("buckets").and_then(Json::as_arr).unwrap();
        assert!(!buckets.is_empty());
        assert_eq!(
            buckets.last().unwrap().get("count").and_then(Json::as_i64),
            Some(2),
            "cumulative buckets end at the total"
        );
        let scratch = doc.get("scratch").unwrap();
        assert!(scratch.get("allocations").and_then(Json::as_i64).is_some());
        assert!(scratch.get("reuses").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn prom_body_is_well_formed_text_exposition() {
        let state = test_state();
        state.metrics.bump(&state.metrics.requests);
        state.metrics.record_latency_ms(1.5);
        let text = String::from_utf8(prom_metrics_body(&state)).unwrap();
        assert!(text.contains("# TYPE mmvc_requests_total counter"));
        assert!(text.contains("mmvc_requests_total 1"));
        assert!(text.contains("# TYPE mmvc_request_duration_seconds histogram"));
        assert!(text.contains("mmvc_request_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mmvc_request_duration_seconds_count 1"));
        assert!(text.contains("# TYPE mmvc_scratch_allocations_total counter"));
        // Every non-comment line is `name{labels} value` with a numeric
        // value — the shape a Prometheus scraper requires.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line}");
        }
        // Histogram bucket counts are monotonically nondecreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("mmvc_request_duration_seconds_bucket"))
        {
            let count: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(count >= last, "cumulative counts must not decrease");
            last = count;
        }
    }

    #[test]
    fn trace_writer_rotates_and_caps_file_count() {
        let dir = std::env::temp_dir().join(format!("mmvc-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let telemetry = Telemetry::recording();
        let mut writer = TraceWriter::new(dir.clone(), Instant::now());
        // Each finish() call flushes one epoch file.
        for _ in 0..MAX_TRACE_FILES + 3 {
            telemetry.span("tick").arg("n", 1);
            writer.finish(&telemetry);
        }
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len() as u64, MAX_TRACE_FILES, "retention cap holds");
        assert!(
            !files.contains(&"trace-00000.json".to_string()),
            "oldest deleted"
        );
        // The newest file is a well-formed Chrome trace document.
        let newest = format!("trace-{:05}.json", MAX_TRACE_FILES + 2);
        let text = std::fs::read_to_string(dir.join(&newest)).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
