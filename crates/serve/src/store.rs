//! The disk-persistent content-addressed report store — the tier below
//! the in-memory LRU ([`cache`](crate::cache)), so a restarted daemon
//! keeps its hit rate.
//!
//! Layout: one file per cache key under a two-level directory,
//! `<root>/<hh>/<hash32>.rpt`, where the hash is a 128-bit FNV-1a pair
//! of the key and `hh` is its first byte (keeps any one directory
//! small). The *full* key is stored inside the file and verified on
//! load, so a (vanishingly unlikely) hash collision degrades to a miss,
//! never to wrong bytes.
//!
//! File format, all integers little-endian:
//!
//! ```text
//! magic    8 bytes  "MMVCRPT\0"
//! version  u32      STORE_VERSION (bump invalidates every old entry)
//! key_len  u32      length of the cache key
//! key      ..       the canonical cache key, verbatim
//! body_len u64      length of the body
//! body     ..       the canonical response bytes
//! checksum u64      FNV-1a of the body
//! ```
//!
//! **Crash-during-write story:** writers never touch the final path —
//! they write the whole record to a unique name under `<root>/tmp/` and
//! `rename` it into place. Rename is atomic on POSIX, so a reader sees
//! either no file or a complete record; a crash mid-write leaves only a
//! stale tmp file that the next [`ReportStore::open`] sweeps. Two
//! workers racing on the same cold key each write their own tmp file
//! and rename to the same destination: both records hold identical
//! bytes (report determinism), so last-rename-wins is still one valid
//! file. Loads validate magic, version, key, length, and checksum;
//! anything short, torn, or foreign is treated as a **miss and
//! repaired** — the bad file is removed so the next computed report
//! rewrites it cleanly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fnv1a;

/// The store's on-disk format version. Bumping it orphans every
/// existing entry: old files fail the version check on load, are
/// removed, and get rewritten from fresh runs. (Key *schema* changes —
/// `mmvc-serve-spec/vN` inside the key — already produce new addresses;
/// this guards changes to the record format itself.)
pub const STORE_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"MMVCRPT\0";

/// Distinguishes concurrent tmp-file writers within one process; the
/// process id distinguishes writers across processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed directory of canonical report bodies (see the
/// module docs for format and atomicity).
#[derive(Debug, Clone)]
pub struct ReportStore {
    root: PathBuf,
    version: u32,
}

impl ReportStore {
    /// Opens (creating if needed) a store rooted at `root`, and sweeps
    /// any tmp files a crashed writer left behind.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<ReportStore> {
        ReportStore::open_with_version(root, STORE_VERSION)
    }

    /// [`open`](Self::open) at an explicit format version — exists so
    /// tests can prove that a version bump invalidates old entries.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with_version(
        root: impl Into<PathBuf>,
        version: u32,
    ) -> std::io::Result<ReportStore> {
        let root = root.into();
        let tmp = root.join("tmp");
        std::fs::create_dir_all(&tmp)?;
        // Sweep stale tmp files: they are either debris from a crashed
        // writer or in-flight writes from another *live* process — but a
        // shared store dir across live daemons is not a supported
        // deployment (each daemon owns its --store-dir), so sweeping at
        // open is safe and keeps the directory from accumulating junk.
        if let Ok(entries) = std::fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(ReportStore { root, version })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The final path addressing `key`.
    fn path_for(&self, key: &str) -> PathBuf {
        // 128 address bits: FNV-1a of the key, and of the key with a
        // domain-separating prefix. Collisions are handled (full-key
        // check on load) but should never practically occur.
        let h1 = fnv1a(key.as_bytes());
        let mut salted = Vec::with_capacity(key.len() + 8);
        salted.extend_from_slice(b"mmvc/rpt");
        salted.extend_from_slice(key.as_bytes());
        let h2 = fnv1a(&salted);
        self.root
            .join(format!("{:02x}", (h1 >> 56) as u8))
            .join(format!("{h1:016x}{h2:016x}.rpt"))
    }

    /// Loads the body stored for `key`, or `None` — and a corrupt,
    /// truncated, foreign-version, or colliding file is removed on the
    /// way out (miss-and-repair), so the next insert rewrites it.
    pub fn load(&self, key: &str) -> Option<Arc<[u8]>> {
        let path = self.path_for(key);
        let bytes = std::fs::read(&path).ok()?;
        match decode(&bytes, key, self.version) {
            Some(body) => Some(body),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `body` under `key` atomically (tmp + rename). Failures
    /// are reported, not fatal: the daemon treats a failed save as
    /// "entry not persisted" and keeps serving from memory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, key: &str, body: &[u8]) -> std::io::Result<()> {
        let path = self.path_for(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut record = Vec::with_capacity(MAGIC.len() + 4 + 4 + key.len() + 8 + body.len() + 8);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&self.version.to_le_bytes());
        record.extend_from_slice(
            &(u32::try_from(key.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "key too long")
            })?)
            .to_le_bytes(),
        );
        record.extend_from_slice(key.as_bytes());
        record.extend_from_slice(&(body.len() as u64).to_le_bytes());
        record.extend_from_slice(body);
        record.extend_from_slice(&fnv1a(body).to_le_bytes());

        let tmp = self.root.join("tmp").join(format!(
            "{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &record)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Validates and decodes one record; `None` on any mismatch.
fn decode(bytes: &[u8], key: &str, version: u32) -> Option<Arc<[u8]>> {
    let rest = bytes.strip_prefix(MAGIC.as_slice())?;
    let (ver, rest) = split_u32(rest)?;
    if ver != version {
        return None;
    }
    let (key_len, rest) = split_u32(rest)?;
    let key_len = key_len as usize;
    if rest.len() < key_len || &rest[..key_len] != key.as_bytes() {
        return None;
    }
    let rest = &rest[key_len..];
    let (body_len, rest) = split_u64(rest)?;
    let body_len = usize::try_from(body_len).ok()?;
    if rest.len() != body_len + 8 {
        return None;
    }
    let (body, checksum) = rest.split_at(body_len);
    if u64::from_le_bytes(checksum.try_into().ok()?) != fnv1a(body) {
        return None;
    }
    Some(Arc::from(body))
}

fn split_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_at_checked(4)?;
    Some((u32::from_le_bytes(head.try_into().ok()?), rest))
}

fn split_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = bytes.split_at_checked(8)?;
    Some((u64::from_le_bytes(head.try_into().ok()?), rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ReportStore {
        let dir =
            std::env::temp_dir().join(format!("mmvc_store_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ReportStore::open(dir).unwrap()
    }

    #[test]
    fn roundtrip_and_miss() {
        let store = temp_store("roundtrip");
        assert!(store.load("k1").is_none());
        store.save("k1", b"body-bytes").unwrap();
        assert_eq!(store.load("k1").unwrap().as_ref(), b"body-bytes");
        assert!(store.load("k2").is_none(), "other keys still miss");
        // Re-opening (a restart) still finds the entry.
        let reopened = ReportStore::open(store.root()).unwrap();
        assert_eq!(reopened.load("k1").unwrap().as_ref(), b"body-bytes");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_and_truncated_files_are_missed_and_repaired() {
        let store = temp_store("corrupt");
        store.save("k", b"good").unwrap();
        let path = store.path_for("k");

        // Truncated mid-body.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();
        assert!(store.load("k").is_none());
        assert!(!path.exists(), "bad file removed (repaired to a miss)");

        // Flipped body byte fails the checksum.
        store.save("k", b"good").unwrap();
        let mut flipped = std::fs::read(&path).unwrap();
        let body_at = flipped.len() - 9;
        flipped[body_at] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(store.load("k").is_none());
        assert!(!path.exists());

        // Garbage that was never a record at all.
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not a record").unwrap();
        assert!(store.load("k").is_none());
        assert!(!path.exists());

        // And the key still works after repair.
        store.save("k", b"fresh").unwrap();
        assert_eq!(store.load("k").unwrap().as_ref(), b"fresh");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn version_bump_invalidates_old_entries() {
        let store = temp_store("version");
        store.save("k", b"v-old").unwrap();
        let bumped = ReportStore::open_with_version(store.root(), STORE_VERSION + 1).unwrap();
        assert!(bumped.load("k").is_none(), "old version is not served");
        // The invalidated file was swept; a rewrite at the new version
        // works, and the old-version store now (correctly) misses.
        bumped.save("k", b"v-new").unwrap();
        assert_eq!(bumped.load("k").unwrap().as_ref(), b"v-new");
        assert!(store.load("k").is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_writers_of_one_key_leave_one_valid_file() {
        let store = temp_store("race");
        // Identical bodies — the real daemon's case (report determinism).
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = store.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        store.save("hot", b"same-bytes").unwrap();
                    }
                });
            }
        });
        assert_eq!(store.load("hot").unwrap().as_ref(), b"same-bytes");

        // Divergent bodies (not the daemon's case, but atomicity must
        // still hold): the surviving file is one of them, intact.
        std::thread::scope(|scope| {
            for i in 0..8u8 {
                let store = store.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        store.save("contested", &[i; 64]).unwrap();
                    }
                });
            }
        });
        let got = store.load("contested").expect("some writer won");
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|&b| b == got[0]), "record is torn");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let store = temp_store("sweep");
        let stale = store.root().join("tmp").join("999-crashed.tmp");
        std::fs::write(&stale, b"half a rec").unwrap();
        let _ = ReportStore::open(store.root()).unwrap();
        assert!(!stale.exists());
        let _ = std::fs::remove_dir_all(store.root());
    }
}
