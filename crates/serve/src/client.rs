//! A tiny blocking HTTP/1.1 client for the daemon's own traffic: the
//! load generator, the integration tests, and the CI smoke script all
//! speak to `mmvc serve` through this one code path.
//!
//! [`Conn`] is the persistent form — one TCP connection carrying many
//! requests under keep-alive, reading each response by its
//! `Content-Length` frame (never `read_to_end`, which would block until
//! the server hangs up). The free [`request`]/[`get`] helpers keep the
//! old one-shot shape (they send `Connection: close`) for callers that
//! genuinely want a fresh connection per request.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server will keep the connection open for another
    /// request (`connection: keep-alive`).
    pub fn keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// A persistent keep-alive connection to the daemon.
///
/// ```no_run
/// let mut conn = mmvc_serve::client::Conn::connect("127.0.0.1:7411")?;
/// let a = conn.request("GET", "/healthz", b"")?;
/// let b = conn.request("GET", "/metrics", b"")?; // same TCP connection
/// assert_eq!(a.status, 200);
/// assert_eq!(b.status, 200);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Conn {
    stream: BufReader<TcpStream>,
    /// How many requests this connection has carried.
    sent: u64,
}

impl Conn {
    /// Opens a connection with 30-second read/write timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream: BufReader::new(stream),
            sent: 0,
        })
    }

    /// Requests carried by this connection so far.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    /// Sends one request and reads its framed response, leaving the
    /// connection open for the next call (as long as the server answered
    /// `connection: keep-alive` — check [`Response::keep_alive`]).
    ///
    /// # Errors
    ///
    /// I/O failures writing or reading, or an unparseable response. The
    /// connection should be dropped and reopened after any error — the
    /// stream position is no longer trustworthy.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let mut wire = Vec::with_capacity(128 + body.len());
        self.encode_request_into(&mut wire, method, path, body);
        let stream = self.stream.get_mut();
        stream.write_all(&wire)?;
        stream.flush()?;
        read_response(&mut self.stream)
    }

    /// Appends the wire bytes of one request to `buf` and counts it as
    /// sent — the pipelined form of [`request`](Self::request). The
    /// caller batches several encoded requests into a single write on
    /// [`stream_mut`](Self::stream_mut), then collects each framed
    /// response in order with
    /// [`read_next_response`](Self::read_next_response).
    pub fn encode_request_into(
        &mut self,
        buf: &mut Vec<u8>,
        method: &str,
        path: &str,
        body: &[u8],
    ) {
        buf.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: mmvc\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        buf.extend_from_slice(body);
        self.sent += 1;
    }

    /// The underlying socket, for writing batched pipelined requests.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.stream.get_mut()
    }

    /// Reads the next framed response off the connection — one per
    /// request previously encoded with
    /// [`encode_request_into`](Self::encode_request_into).
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request): after any error the connection
    /// should be dropped.
    pub fn read_next_response(&mut self) -> std::io::Result<Response> {
        read_response(&mut self.stream)
    }
}

/// Sends one request on a fresh connection (`Connection: close`) and
/// reads the full response.
///
/// # Errors
///
/// I/O failures connecting, writing, or reading; or a response that is
/// not parseable HTTP/1.1.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Convenience: `GET` with no body on a fresh connection.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, b"")
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("bad response: {what}"),
    )
}

/// Reads exactly one framed response from the stream: the head up to
/// `\r\n\r\n`, then `Content-Length` body bytes — no more, so the next
/// pipelined/keep-alive response stays in the stream.
///
/// # Errors
///
/// I/O failures or an unparseable head.
pub fn read_response<R: BufRead>(stream: &mut R) -> std::io::Result<Response> {
    let mut head = Vec::with_capacity(256);
    'collect: loop {
        // Scan the reader's internal buffer instead of issuing one
        // read() per byte; consume only up to the head terminator so
        // body bytes (and any pipelined next response) stay unread.
        let buf = stream.fill_buf()?;
        if buf.is_empty() {
            return Err(bad("connection closed mid-head"));
        }
        let mut taken = 0;
        for &byte in buf {
            head.push(byte);
            taken += 1;
            if head.ends_with(b"\r\n\r\n") {
                stream.consume(taken);
                break 'collect;
            }
        }
        stream.consume(taken);
        if head.len() > 64 * 1024 {
            return Err(bad("head too large"));
        }
    }
    let head = std::str::from_utf8(&head[..head.len() - 4]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    // Interim "100 Continue" responses are not sent by the daemon unless
    // asked for; this client never asks.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("content-length"))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn parses_a_response_without_consuming_past_its_frame() {
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 3\r\nx-cache: hit\r\nconnection: keep-alive\r\n\r\n{}\nNEXT";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let r = read_response(&mut cursor).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, b"{}\n");
        assert_eq!(r.text(), "{}\n");
        assert!(r.keep_alive());
        // The next response's bytes are still unread.
        let mut rest = Vec::new();
        cursor.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"NEXT");
    }

    #[test]
    fn reads_consecutive_framed_responses() {
        let raw: &[u8] =
            b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\n\r\naHTTP/1.1 404 Not Found\r\ncontent-length: 2\r\nconnection: close\r\n\r\nbc";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let first = read_response(&mut cursor).unwrap();
        assert_eq!((first.status, first.body.as_slice()), (200, &b"a"[..]));
        let second = read_response(&mut cursor).unwrap();
        assert_eq!((second.status, second.body.as_slice()), (404, &b"bc"[..]));
        assert!(!second.keep_alive());
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"garbage"[..],
            b"HTTP/1.1 abc\r\n\r\n",
            b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc",
            b"HTTP/1.1 200 OK\r\nbroken header\r\n\r\n",
        ] {
            let mut cursor = std::io::Cursor::new(raw.to_vec());
            assert!(
                read_response(&mut cursor).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }
}
