//! A tiny blocking HTTP/1.1 client for the daemon's own traffic: the
//! load generator, the integration tests, and the CI smoke script all
//! speak to `mmvc serve` through this one code path.
//!
//! One request per connection (the daemon answers `Connection: close`),
//! `Content-Length` framing only.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// I/O failures connecting, writing, or reading; or a response that is
/// not parseable HTTP/1.1.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience: `GET` with no body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, b"")
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("bad response: {what}"),
    )
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    // Interim "100 Continue" responses are not sent by the daemon unless
    // asked for; this client never asks.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| bad("content-length"))?);
        }
        headers.push((name, value));
    }
    let body_start = head_end + 4;
    let body = match content_length {
        Some(len) => {
            if raw.len() < body_start + len {
                return Err(bad("truncated body"));
            }
            raw[body_start..body_start + len].to_vec()
        }
        None => raw[body_start..].to_vec(),
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 3\r\nx-cache: hit\r\n\r\n{}\ntrailing-ignored";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body, b"{}\n");
        assert_eq!(r.text(), "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc").is_err());
    }
}
