//! Served-traffic counters and latency percentiles for `GET /metrics`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many of the most recent request latencies feed the percentile
/// estimates. A bounded window keeps `/metrics` O(1) memory no matter
/// how long the daemon runs. Sized so the p999 column rests on a few
/// tail samples even at modest traffic.
const LATENCY_WINDOW: usize = 8192;

/// Monotone counters (lock-free) plus a sliding latency window.
///
/// Counters are updated with relaxed atomics — they are statistics, not
/// synchronization — and every reader sees some consistent-enough
/// snapshot. The latency window sits behind a mutex touched once per
/// request for a push and once per `/metrics` render for a copy.
///
/// Under keep-alive, one connection carries many requests, so latency
/// is recorded **per request** — from the moment a complete request has
/// been parsed off the wire to the moment its response bytes have been
/// handed to the socket — never per connection (a per-connection timer
/// would smear every pipelined request's tail into one sample and hide
/// exactly the effects p999 exists to expose).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully served (any endpoint, any status).
    pub requests: AtomicU64,
    /// `POST /run` requests served.
    pub run_requests: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// `POST /run` responses answered from the in-memory report cache.
    pub cache_hits: AtomicU64,
    /// `POST /run` responses answered from the persistent store (a
    /// memory miss that skipped the run).
    pub store_hits: AtomicU64,
    /// `POST /run` responses that executed the algorithm.
    pub cache_misses: AtomicU64,
    /// Failed persistent-store writes (the daemon keeps serving; the
    /// entry is just not durable).
    pub store_errors: AtomicU64,
    /// Requests currently dispatched to the worker pool.
    pub in_flight: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served on an already-used connection (request ≥ 2 on
    /// its connection) — the keep-alive reuse counter: `reuses /
    /// requests` close to 1 means the handshake tax is almost gone.
    pub keepalive_reuses: AtomicU64,
    /// Total response bytes (heads + bodies) handed to sockets.
    pub bytes_served: AtomicU64,
    /// Sessions created via `POST /session`.
    pub sessions: AtomicU64,
    /// Deltas applied via `POST /update` (each bumps its session's
    /// generation, invalidating the session's cache entries by
    /// construction).
    pub updates: AtomicU64,
    latencies_ms: Mutex<VecDeque<f64>>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request's service time (parse-complete to
    /// response-written).
    pub fn record_latency_ms(&self, ms: f64) {
        let mut window = self
            .latencies_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(ms);
    }

    /// `(p50, p90, p99, p999)` over the latency window (zeros when
    /// empty).
    pub fn latency_percentiles_ms(&self) -> (f64, f64, f64, f64) {
        let snapshot: Vec<f64> = self
            .latencies_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect();
        percentiles(snapshot)
    }

    /// Relaxed read of a counter.
    pub fn read(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Relaxed increment of a counter.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add to a counter.
    pub fn add(&self, counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }
}

/// `(p50, p90, p99, p999)` of a sample by the nearest-rank method.
pub fn percentiles(mut samples: Vec<f64>) -> (f64, f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |p: f64| -> f64 {
        // The epsilon absorbs float residue: 0.999 × 1000 must rank as
        // 999, not drift to 999.0000000000001 and ceil to 1000.
        let idx = ((p / 100.0) * samples.len() as f64 - 1e-9).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    (rank(50.0), rank(90.0), rank(99.0), rank(99.9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let m = Metrics::new();
        m.bump(&m.requests);
        m.bump(&m.requests);
        m.bump(&m.cache_hits);
        m.add(&m.bytes_served, 1000);
        m.add(&m.bytes_served, 24);
        assert_eq!(m.read(&m.requests), 2);
        assert_eq!(m.read(&m.cache_hits), 1);
        assert_eq!(m.read(&m.cache_misses), 0);
        assert_eq!(m.read(&m.store_hits), 0);
        assert_eq!(m.read(&m.bytes_served), 1024);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let (p50, p90, p99, p999) = percentiles((1..=1000).map(|v| v as f64).collect());
        assert_eq!(p50, 500.0);
        assert_eq!(p90, 900.0);
        assert_eq!(p99, 990.0);
        assert_eq!(p999, 999.0);
        assert_eq!(percentiles(vec![]), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(percentiles(vec![7.5]), (7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn p999_sees_the_tail_p99_misses() {
        // Ten disasters among 1000 samples sit in the top 1%-but-not-top
        // -0.1% shadow: nearest-rank p99 (rank 990) still reads the fast
        // bulk, p999 (rank 999) lands inside the disaster tail.
        let mut samples: Vec<f64> = vec![1.0; 990];
        samples.extend(std::iter::repeat_n(500.0, 10));
        let (_, _, p99, p999) = percentiles(samples);
        assert_eq!(p99, 1.0);
        assert_eq!(p999, 500.0);
        // A single outlier in 1000 is below even p999's resolution —
        // rank 999 of 1000 — which is why the window is sized to hold
        // several tail samples.
        let mut samples: Vec<f64> = vec![1.0; 999];
        samples.push(500.0);
        let (_, _, p99, p999) = percentiles(samples);
        assert_eq!(p99, 1.0);
        assert_eq!(p999, 1.0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_latency_ms(i as f64);
        }
        let window = m.latencies_ms.lock().unwrap();
        assert_eq!(window.len(), LATENCY_WINDOW);
        assert_eq!(*window.front().unwrap(), 100.0, "oldest samples dropped");
    }
}
