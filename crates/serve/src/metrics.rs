//! Served-traffic counters and latency histograms for `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` has upper bound `2^i` µs,
/// so the range runs 1 µs .. `2^27` µs (~134 s) — wider than any
/// plausible request — with an overflow bucket above.
pub const LATENCY_BUCKETS: usize = 28;

/// A cumulative log2-bucketed latency histogram (lock-free).
///
/// This replaced a bounded sliding *window* of recent samples: a window
/// forgets, so a p999 read rested on whatever few tail samples happened
/// to still be in it. A cumulative histogram aggregates every request
/// since process start in fixed memory — `LATENCY_BUCKETS` relaxed
/// atomic counters — and one more request is one `fetch_add`, cheaper
/// than the mutex push it replaced. The price is resolution: a
/// percentile estimate is the *upper bound* of the bucket holding that
/// rank (a conservative over-estimate, never an under-estimate), which
/// at log2 grain means within 2× of the true value. Exact percentiles
/// over raw samples remain available to offline consumers (loadgen)
/// via [`percentiles`].
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// Upper bound of bucket `i`, in milliseconds (`2^i` µs).
pub fn bucket_upper_ms(i: usize) -> f64 {
    (1u64 << i) as f64 / 1e3
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let mut i = 0;
        while i < LATENCY_BUCKETS && ns > (1_000u64 << i) {
            i += 1;
        }
        if i < LATENCY_BUCKETS {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one sample, in (fractional) milliseconds.
    pub fn record_ms(&self, ms: f64) {
        self.record_ns((ms.max(0.0) * 1e6) as u64);
    }

    /// A consistent-enough snapshot (relaxed reads; each bucket is
    /// individually exact, the set may straddle in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(LATENCY_BUCKETS);
        let mut running = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            running += b.load(Ordering::Relaxed);
            cumulative.push((bucket_upper_ms(i), running));
        }
        HistogramSnapshot {
            buckets: cumulative,
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum_ms: self.sum_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], in Prometheus
/// shape: per-bucket counts are **cumulative** (`≤ upper bound`).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper_bound_ms, cumulative_count)` per bucket, ascending.
    pub buckets: Vec<(f64, u64)>,
    /// Samples above the last bucket's bound.
    pub overflow: u64,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, in milliseconds.
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate: the upper bound of the bucket
    /// holding rank `⌈p/100 · count⌉` (0 when empty; the last bound
    /// when the rank falls in the overflow bucket).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64 - 1e-9).ceil().max(1.0) as u64;
        for &(upper_ms, cum) in &self.buckets {
            if cum >= rank {
                return upper_ms;
            }
        }
        bucket_upper_ms(LATENCY_BUCKETS - 1)
    }

    /// `(p50, p90, p99, p999)` estimates (bucket upper bounds).
    pub fn percentiles_ms(&self) -> (f64, f64, f64, f64) {
        (
            self.percentile_ms(50.0),
            self.percentile_ms(90.0),
            self.percentile_ms(99.0),
            self.percentile_ms(99.9),
        )
    }

    /// Drops leading/trailing all-zero buckets for rendering: the
    /// `(upper_ms, cumulative)` pairs from the first non-empty bucket
    /// through the last one (empty when no samples landed in bounds).
    pub fn occupied(&self) -> &[(f64, u64)] {
        let total_in_bounds = self.count - self.overflow;
        if total_in_bounds == 0 {
            return &[];
        }
        let first = self.buckets.iter().position(|&(_, c)| c > 0).unwrap_or(0);
        let last = self
            .buckets
            .iter()
            .rposition(|&(_, c)| c < total_in_bounds)
            .map_or(first, |i| (i + 1).min(self.buckets.len() - 1));
        &self.buckets[first..=last.max(first)]
    }
}

/// Monotone counters (lock-free) plus the cumulative latency histogram.
///
/// Counters are updated with relaxed atomics — they are statistics, not
/// synchronization — and every reader sees some consistent-enough
/// snapshot.
///
/// Under keep-alive, one connection carries many requests, so latency
/// is recorded **per request** — from the moment a complete request has
/// been parsed off the wire to the moment its response bytes have been
/// handed to the socket — never per connection (a per-connection timer
/// would smear every pipelined request's tail into one sample and hide
/// exactly the effects p999 exists to expose).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully served (any endpoint, any status).
    pub requests: AtomicU64,
    /// `POST /run` requests served.
    pub run_requests: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// `POST /run` responses answered from the in-memory report cache.
    pub cache_hits: AtomicU64,
    /// `POST /run` responses answered from the persistent store (a
    /// memory miss that skipped the run).
    pub store_hits: AtomicU64,
    /// `POST /run` responses that executed the algorithm.
    pub cache_misses: AtomicU64,
    /// Failed persistent-store writes (the daemon keeps serving; the
    /// entry is just not durable).
    pub store_errors: AtomicU64,
    /// Requests currently dispatched to the worker pool.
    pub in_flight: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served on an already-used connection (request ≥ 2 on
    /// its connection) — the keep-alive reuse counter: `reuses /
    /// requests` close to 1 means the handshake tax is almost gone.
    pub keepalive_reuses: AtomicU64,
    /// Total response bytes (heads + bodies) handed to sockets.
    pub bytes_served: AtomicU64,
    /// Sessions created via `POST /session`.
    pub sessions: AtomicU64,
    /// Deltas applied via `POST /update` (each bumps its session's
    /// generation, invalidating the session's cache entries by
    /// construction).
    pub updates: AtomicU64,
    /// Per-request service-time histogram.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request's service time (parse-complete to
    /// response-written).
    pub fn record_latency_ms(&self, ms: f64) {
        self.latency.record_ms(ms);
    }

    /// `(p50, p90, p99, p999)` estimated from the histogram (zeros
    /// when empty). Estimates are bucket upper bounds — conservative
    /// to within the log2 bucket width.
    pub fn latency_percentiles_ms(&self) -> (f64, f64, f64, f64) {
        self.latency.snapshot().percentiles_ms()
    }

    /// Relaxed read of a counter.
    pub fn read(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Relaxed increment of a counter.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add to a counter.
    pub fn add(&self, counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }
}

/// `(p50, p90, p99, p999)` of a sample by the nearest-rank method —
/// exact, for consumers that hold raw samples (loadgen), unlike the
/// bucketed estimates the daemon serves.
pub fn percentiles(mut samples: Vec<f64>) -> (f64, f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |p: f64| -> f64 {
        // The epsilon absorbs float residue: 0.999 × 1000 must rank as
        // 999, not drift to 999.0000000000001 and ceil to 1000.
        let idx = ((p / 100.0) * samples.len() as f64 - 1e-9).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    (rank(50.0), rank(90.0), rank(99.0), rank(99.9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let m = Metrics::new();
        m.bump(&m.requests);
        m.bump(&m.requests);
        m.bump(&m.cache_hits);
        m.add(&m.bytes_served, 1000);
        m.add(&m.bytes_served, 24);
        assert_eq!(m.read(&m.requests), 2);
        assert_eq!(m.read(&m.cache_hits), 1);
        assert_eq!(m.read(&m.cache_misses), 0);
        assert_eq!(m.read(&m.store_hits), 0);
        assert_eq!(m.read(&m.bytes_served), 1024);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let (p50, p90, p99, p999) = percentiles((1..=1000).map(|v| v as f64).collect());
        assert_eq!(p50, 500.0);
        assert_eq!(p90, 900.0);
        assert_eq!(p99, 990.0);
        assert_eq!(p999, 999.0);
        assert_eq!(percentiles(vec![]), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(percentiles(vec![7.5]), (7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        h.record_ns(1); // → bucket 0 (≤ 1 µs)
        h.record_ns(1_000); // 1 µs, boundary inclusive → bucket 0
        h.record_ns(1_001); // → bucket 1 (≤ 2 µs)
        h.record_ms(1.0); // 1 ms → bucket 10 (2^10 µs = 1.024 ms)
        h.record_ms(1_000.0); // 1 s → bucket 20 (2^20 µs ≈ 1.05 s)
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.buckets[0], (bucket_upper_ms(0), 2));
        assert_eq!(s.buckets[1].1, 3, "cumulative");
        assert_eq!(s.buckets[10].1, 4);
        assert_eq!(s.buckets[20].1, 5);
        assert!((s.sum_ms - 1001.002002).abs() < 1e-6);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        // 990 fast samples (~0.5 ms) and 10 disasters (~500 ms): the
        // shape the sliding window could forget, held forever here.
        for _ in 0..990 {
            h.record_ms(0.5);
        }
        for _ in 0..10 {
            h.record_ms(500.0);
        }
        let s = h.snapshot();
        let (p50, _, p99, p999) = s.percentiles_ms();
        // 0.5 ms lands in the ≤ 512 µs bucket (upper bound 0.512 ms).
        assert_eq!(p50, bucket_upper_ms(9));
        assert_eq!(p99, bucket_upper_ms(9));
        // 500 ms lands in the ≤ 2^19 µs ≈ 524 ms bucket.
        assert_eq!(p999, bucket_upper_ms(19));
        // Conservative: the estimate never undershoots the true value.
        assert!(p999 >= 500.0);
    }

    #[test]
    fn histogram_overflow_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().percentile_ms(99.0), 0.0);
        assert!(h.snapshot().occupied().is_empty());
        h.record_ms(1e9); // far beyond the last bucket
        let s = h.snapshot();
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 1);
        assert_eq!(
            s.percentile_ms(50.0),
            bucket_upper_ms(LATENCY_BUCKETS - 1),
            "overflow ranks clamp to the last bound"
        );
    }

    #[test]
    fn occupied_trims_empty_tails() {
        let h = LatencyHistogram::new();
        h.record_ms(0.5);
        h.record_ms(0.5);
        h.record_ms(4.0);
        let s = h.snapshot();
        let occ = s.occupied();
        assert_eq!(occ.first().unwrap().1, 2, "starts at the first hit");
        assert_eq!(occ.last().unwrap().1, 3, "ends once all samples seen");
        assert!(occ.len() < LATENCY_BUCKETS);
    }
}
