//! Served-traffic counters and latency percentiles for `GET /metrics`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many of the most recent request latencies feed the percentile
/// estimates. A bounded window keeps `/metrics` O(1) memory no matter
/// how long the daemon runs.
const LATENCY_WINDOW: usize = 4096;

/// Monotone counters (lock-free) plus a sliding latency window.
///
/// Counters are updated with relaxed atomics — they are statistics, not
/// synchronization — and every reader sees some consistent-enough
/// snapshot. The latency window sits behind a mutex touched once per
/// request for a push and once per `/metrics` render for a copy.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully served (any endpoint, any status).
    pub requests: AtomicU64,
    /// `POST /run` requests served.
    pub run_requests: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// `POST /run` responses answered from the report cache.
    pub cache_hits: AtomicU64,
    /// `POST /run` responses that executed the algorithm.
    pub cache_misses: AtomicU64,
    /// Requests currently being handled by some worker.
    pub in_flight: AtomicU64,
    latencies_ms: Mutex<VecDeque<f64>>,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished request's wall time.
    pub fn record_latency_ms(&self, ms: f64) {
        let mut window = self
            .latencies_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(ms);
    }

    /// `(p50, p90, p99)` over the latency window (zeros when empty).
    pub fn latency_percentiles_ms(&self) -> (f64, f64, f64) {
        let snapshot: Vec<f64> = self
            .latencies_ms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect();
        percentiles(snapshot)
    }

    /// Relaxed read of a counter.
    pub fn read(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Relaxed increment of a counter.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// `(p50, p90, p99)` of a sample by the nearest-rank method.
pub fn percentiles(mut samples: Vec<f64>) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |p: f64| -> f64 {
        let idx = ((p / 100.0) * samples.len() as f64).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    (rank(50.0), rank(90.0), rank(99.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let m = Metrics::new();
        m.bump(&m.requests);
        m.bump(&m.requests);
        m.bump(&m.cache_hits);
        assert_eq!(m.read(&m.requests), 2);
        assert_eq!(m.read(&m.cache_hits), 1);
        assert_eq!(m.read(&m.cache_misses), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let (p50, p90, p99) = percentiles((1..=100).map(|v| v as f64).collect());
        assert_eq!(p50, 50.0);
        assert_eq!(p90, 90.0);
        assert_eq!(p99, 99.0);
        assert_eq!(percentiles(vec![]), (0.0, 0.0, 0.0));
        assert_eq!(percentiles(vec![7.5]), (7.5, 7.5, 7.5));
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_latency_ms(i as f64);
        }
        let window = m.latencies_ms.lock().unwrap();
        assert_eq!(window.len(), LATENCY_WINDOW);
        assert_eq!(*window.front().unwrap(), 100.0, "oldest samples dropped");
    }
}
