//! The content-addressed LRU report cache.
//!
//! Keys are canonical serialized specs (see
//! [`cache_key`](crate::cache_key)); values are complete response
//! bodies as shared `Arc<[u8]>` — the rendered bytes exist once, and
//! every hit (and every connection writing them) holds a cheap clone of
//! the same allocation, so serving a hot report copies the head only,
//! never the payload. The cache is *sound* — a hit is byte-identical to
//! a cold run — precisely because the run layer pins report
//! determinism: a `RunReport` (minus wall time, which the daemon
//! zeroes) is a pure function of its spec, and file workloads carry a
//! content hash in the key, so a changed input file can never alias a
//! stale entry. The disk-persistent tier below this one lives in
//! [`store`](crate::store).

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded least-recently-used map from canonical spec keys to cached
/// response bodies.
///
/// Recency is tracked with a monotone touch counter; eviction scans for
/// the minimum — `O(capacity)` on insert-when-full, which is exact and
/// plenty for report-sized capacities (hundreds of entries), and keeps
/// hits (the hot path) at one hash lookup.
#[derive(Debug)]
pub struct ReportCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry>,
}

#[derive(Debug)]
struct Entry {
    body: Arc<[u8]>,
    last_used: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` bodies (`0` disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.body)
        })
    }

    /// Inserts a body, evicting the least-recently-used entry when full.
    ///
    /// Re-inserting an existing key replaces the body (identical bytes
    /// by determinism — two threads racing on the same cold spec) and
    /// refreshes recency.
    pub fn insert(&mut self, key: String, body: Arc<[u8]>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            Entry {
                body,
                last_used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn hit_returns_inserted_bytes() {
        let mut c = ReportCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), body("alpha"));
        assert_eq!(c.get("a").unwrap().as_ref(), &b"alpha"[..]);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ReportCache::new(2);
        c.insert("a".into(), body("1"));
        c.insert("b".into(), body("2"));
        // Touch `a`, making `b` the LRU entry.
        assert!(c.get("a").is_some());
        c.insert("c".into(), body("3"));
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none(), "b was LRU and must be evicted");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = ReportCache::new(2);
        c.insert("a".into(), body("old"));
        c.insert("b".into(), body("2"));
        c.insert("a".into(), body("new"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().as_ref(), &b"new"[..]);
        assert!(c.get("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ReportCache::new(0);
        c.insert("a".into(), body("1"));
        assert!(c.get("a").is_none());
        assert_eq!(c.len(), 0);
    }
}
