//! `mmvc_loadgen` — deterministic load generation against `mmvc serve`,
//! the serving-performance counterpart of `bench_report`.
//!
//! Replays seeded request mixes and writes `BENCH_serve.json`
//! (throughput, latency percentiles, cache hit rate — one row per mix):
//!
//! * `uniform` — requests drawn uniformly from a fixed spec pool that
//!   fits the cache (the steady-state mix: everything hits after one
//!   cold pass);
//! * `hot-key` — the same pool under a Zipf-like skew, served with a
//!   cache *smaller than the pool* (the production-shaped mix: a few
//!   hot specs dominate and LRU keeps exactly those resident);
//! * `cache-bust` — every request a fresh seed (the adversarial mix:
//!   nothing can hit, measuring pure run throughput).
//!
//! ```text
//! cargo run --release -p mmvc-serve --bin mmvc_loadgen -- \
//!     [--addr HOST:PORT] [--smoke] [--out PATH] [--requests N]
//!     [--clients C] [--workers W] [--seed S]
//! ```
//!
//! Without `--addr`, a fresh in-process daemon is spawned per mix on an
//! ephemeral port (`--workers` sizes its pool) and shut down cleanly —
//! the zero-setup mode CI uses, and it keeps the rows independent: each
//! mix starts against a cold cache. With `--addr`, the external daemon's
//! cache persists across mixes (noted by `"server"` in the artifact).
//! The request *schedule* is a pure function of `--seed`; the measured
//! numbers are the only nondeterministic outputs.

use mmvc_bench::Json;
use mmvc_core::run::AlgorithmKind;
use mmvc_serve::{client, metrics, ServeConfig, Server};
use std::process::ExitCode;
use std::time::Instant;

/// A deterministic xorshift64* stream for request scheduling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One benchmark configuration.
struct Config {
    addr: Option<String>,
    smoke: bool,
    out: String,
    requests: usize,
    clients: usize,
    workers: usize,
    seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: None,
            smoke: false,
            out: "BENCH_serve.json".to_string(),
            requests: 400,
            clients: 4,
            workers: 4,
            seed: 0x10AD,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmvc_loadgen [--addr HOST:PORT] [--smoke] [--out PATH] [--requests N] \
         [--clients C] [--workers W] [--seed S]"
    );
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Option<Config> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).filter(|v| !v.starts_with("--"));
        match args[i].as_str() {
            "--smoke" => {
                cfg.smoke = true;
                i += 1;
            }
            "--addr" => {
                cfg.addr = Some(value(i)?.clone());
                i += 2;
            }
            "--out" => {
                cfg.out = value(i)?.clone();
                i += 2;
            }
            "--requests" => {
                cfg.requests = value(i)?.parse().ok()?;
                i += 2;
            }
            "--clients" => {
                cfg.clients = value(i)?.parse::<usize>().ok()?.max(1);
                i += 2;
            }
            "--workers" => {
                cfg.workers = value(i)?.parse::<usize>().ok()?.max(1);
                i += 2;
            }
            "--seed" => {
                cfg.seed = value(i)?.parse().ok()?;
                i += 2;
            }
            _ => return None,
        }
    }
    if cfg.smoke {
        cfg.requests = cfg.requests.min(60);
        cfg.clients = cfg.clients.min(2);
    }
    Some(cfg)
}

/// The fixed spec pool the `uniform` and `hot-key` mixes draw from:
/// every algorithm kind over a rotating scenario, at a size small
/// enough that a cold run is milliseconds.
fn spec_pool(smoke: bool, seed: u64) -> Vec<String> {
    let scenarios = [
        "gnp-sparse",
        "power-law",
        "bipartite",
        "geometric",
        "planted-matching",
        "gnm",
    ];
    let n = if smoke { 64 } else { 128 };
    let mut pool = Vec::new();
    for (i, kind) in AlgorithmKind::ALL.iter().enumerate() {
        for j in 0..2usize {
            let scenario = scenarios[(i + j) % scenarios.len()];
            pool.push(format!(
                r#"{{"algorithm": "{}", "scenario": "{scenario}", "n": {n}, "seed": {}}}"#,
                kind.name(),
                seed.wrapping_add(j as u64)
            ));
        }
    }
    pool
}

/// One mix's request schedule: the body of request `i`.
enum Mix {
    Uniform,
    HotKey,
    CacheBust,
}

impl Mix {
    fn name(&self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::HotKey => "hot-key",
            Mix::CacheBust => "cache-bust",
        }
    }

    /// The in-process daemon's cache capacity for this mix. `hot-key`
    /// deliberately runs with a cache smaller than the spec pool so the
    /// row measures skew under eviction pressure, not pool memoization.
    fn cache_capacity(&self, pool_len: usize) -> usize {
        match self {
            Mix::Uniform | Mix::CacheBust => 512,
            Mix::HotKey => (pool_len / 4).max(2),
        }
    }

    /// Builds the full request schedule for this mix, deterministically
    /// from the seed.
    fn schedule(&self, cfg: &Config, pool: &[String]) -> Vec<String> {
        let mut rng = Rng::new(cfg.seed ^ fnv(self.name().as_bytes()));
        match self {
            Mix::Uniform => (0..cfg.requests)
                .map(|_| pool[(rng.next_u64() as usize) % pool.len()].clone())
                .collect(),
            Mix::HotKey => {
                // Zipf-like weights w_k ∝ 1/(k+1)^1.2 over the pool.
                let weights: Vec<f64> = (0..pool.len())
                    .map(|k| 1.0 / ((k + 1) as f64).powf(1.2))
                    .collect();
                let total: f64 = weights.iter().sum();
                (0..cfg.requests)
                    .map(|_| {
                        let mut target = rng.next_f64() * total;
                        let mut idx = 0;
                        for (k, w) in weights.iter().enumerate() {
                            idx = k;
                            target -= w;
                            if target <= 0.0 {
                                break;
                            }
                        }
                        pool[idx].clone()
                    })
                    .collect()
            }
            Mix::CacheBust => {
                let n = if cfg.smoke { 64 } else { 128 };
                (0..cfg.requests)
                    .map(|i| {
                        let kind = AlgorithmKind::ALL[i % AlgorithmKind::ALL.len()];
                        format!(
                            r#"{{"algorithm": "{}", "scenario": "gnp-sparse", "n": {n}, "seed": {}}}"#,
                            kind.name(),
                            cfg.seed.wrapping_add(1000 + i as u64)
                        )
                    })
                    .collect()
            }
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    mmvc_serve::fnv1a(bytes)
}

/// Measured outcome of one mix.
struct MixResult {
    mix: &'static str,
    requests: usize,
    distinct_specs: usize,
    hits: u64,
    misses: u64,
    errors: u64,
    wall_s: f64,
    latencies_ms: Vec<f64>,
}

impl MixResult {
    /// `cache_capacity` is `None` when driving an external daemon: its
    /// cache is configured out of band, and reporting the in-process
    /// default would claim pressure that never applied.
    fn to_json(&self, clients: usize, cache_capacity: Option<usize>) -> Json {
        let (p50, p90, p99) = metrics::percentiles(self.latencies_ms.clone());
        let answered = self.hits + self.misses;
        Json::obj(vec![
            ("mix", Json::Str(self.mix.to_string())),
            ("requests", Json::Int(self.requests as i64)),
            ("clients", Json::Int(clients as i64)),
            ("distinct_specs", Json::Int(self.distinct_specs as i64)),
            (
                "cache_capacity",
                match cache_capacity {
                    Some(cap) => Json::Int(cap as i64),
                    None => Json::Null,
                },
            ),
            ("cache_hits", Json::Int(self.hits as i64)),
            ("cache_misses", Json::Int(self.misses as i64)),
            ("errors", Json::Int(self.errors as i64)),
            (
                "hit_rate",
                Json::Float(if answered > 0 {
                    self.hits as f64 / answered as f64
                } else {
                    0.0
                }),
            ),
            (
                "throughput_rps",
                Json::Float(self.requests as f64 / self.wall_s.max(1e-9)),
            ),
            (
                "latency_ms",
                Json::obj(vec![
                    ("p50", Json::Float(p50)),
                    ("p90", Json::Float(p90)),
                    ("p99", Json::Float(p99)),
                ]),
            ),
        ])
    }
}

/// Replays one schedule with `clients` threads (client `c` takes
/// requests `c, c+C, c+2C, …` — a deterministic partition).
fn drive(addr: &str, schedule: &[String], clients: usize) -> MixResult {
    let started = Instant::now();
    let outcomes: Vec<(u64, u64, u64, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
                    let mut latencies = Vec::new();
                    for body in schedule.iter().skip(c).step_by(clients) {
                        let t0 = Instant::now();
                        match client::request(addr, "POST", "/run", body.as_bytes()) {
                            Ok(resp) if resp.status == 200 => {
                                match resp.header("x-cache") {
                                    Some("hit") => hits += 1,
                                    _ => misses += 1,
                                }
                                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            _ => errors += 1,
                        }
                    }
                    (hits, misses, errors, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut result = MixResult {
        mix: "",
        requests: schedule.len(),
        distinct_specs: {
            let mut distinct: Vec<&String> = schedule.iter().collect();
            distinct.sort();
            distinct.dedup();
            distinct.len()
        },
        hits: 0,
        misses: 0,
        errors: 0,
        wall_s,
        latencies_ms: Vec::new(),
    };
    for (h, m, e, lat) in outcomes {
        result.hits += h;
        result.misses += m;
        result.errors += e;
        result.latencies_ms.extend(lat);
    }
    result
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cfg) = parse_args(&args) else {
        return usage();
    };

    let pool = spec_pool(cfg.smoke, cfg.seed);
    let mut rows = Vec::new();
    let mut total_errors = 0u64;
    for mix in [Mix::Uniform, Mix::HotKey, Mix::CacheBust] {
        // A fresh in-process daemon per mix (cold cache → independent
        // rows), unless pointed at an external one.
        let (addr, server_thread, handle) = match &cfg.addr {
            Some(addr) => (addr.clone(), None, None),
            None => {
                let server = match Server::bind(&ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: cfg.workers,
                    cache_capacity: mix.cache_capacity(pool.len()),
                    ..ServeConfig::default()
                }) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot bind in-process server: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let addr = server.local_addr().expect("bound socket has an address");
                let hd = server.handle().expect("bound socket has an address");
                let thread = std::thread::spawn(move || server.run());
                (addr.to_string(), Some(thread), Some(hd))
            }
        };

        let schedule = mix.schedule(&cfg, &pool);
        let mut result = drive(&addr, &schedule, cfg.clients);
        result.mix = mix.name();
        total_errors += result.errors;
        eprintln!(
            "{:<11} {} requests ({} distinct) in {:.2}s: {:.0} rps, {} hits / {} misses, {} errors",
            result.mix,
            result.requests,
            result.distinct_specs,
            result.wall_s,
            result.requests as f64 / result.wall_s.max(1e-9),
            result.hits,
            result.misses,
            result.errors
        );
        rows.push(result.to_json(
            cfg.clients,
            cfg.addr.is_none().then(|| mix.cache_capacity(pool.len())),
        ));

        if let Some(handle) = handle {
            handle.shutdown();
        }
        if let Some(thread) = server_thread {
            if thread.join().expect("server thread panicked").is_err() {
                eprintln!("warning: in-process server exited with an error");
            }
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("mmvc-serve-bench/v1".to_string())),
        (
            "mode",
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "server",
            Json::Str(match &cfg.addr {
                Some(addr) => addr.clone(),
                None => "in-process".to_string(),
            }),
        ),
        (
            // Unknown for an external daemon: --workers only sizes the
            // in-process one.
            "workers",
            match cfg.addr {
                Some(_) => Json::Null,
                None => Json::Int(cfg.workers as i64),
            },
        ),
        ("clients", Json::Int(cfg.clients as i64)),
        ("seed", Json::Int(cfg.seed as i64)),
        ("rows", Json::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&cfg.out, doc.render()) {
        eprintln!("cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", cfg.out);

    if total_errors > 0 {
        eprintln!("{total_errors} requests failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
