//! `mmvc_loadgen` — deterministic load generation against `mmvc serve`,
//! the serving-performance counterpart of `bench_report`.
//!
//! Replays seeded request mixes over **keep-alive connections** (each
//! client thread reuses one connection for `--reqs-per-conn` requests
//! before reconnecting, keeping up to `--pipeline` requests in flight
//! per connection — the wrk-style closed loop) and writes
//! `BENCH_serve.json` (throughput, latency percentiles *and* log2
//! latency histograms, cache/store hit rates, connection reuse — one
//! row per mix):
//!
//! * `uniform` — requests drawn uniformly from a fixed spec pool that
//!   fits the cache (the steady-state mix: everything hits after one
//!   cold pass);
//! * `hot-key` — the same pool under a Zipf-like skew, served with a
//!   cache *smaller than the pool* (the production-shaped mix: a few
//!   hot specs dominate and LRU keeps exactly those resident);
//! * `cache-bust` — every request a fresh seed (the adversarial mix:
//!   nothing can hit, measuring pure run throughput);
//! * `warm-restart` — half the schedule against a daemon with a
//!   persistent store, then a **daemon restart over the same store
//!   directory**, then the other half: the row proves a restarted
//!   daemon keeps its hit rate (`post_restart.hits` answered from disk
//!   without re-running);
//! * `session-churn` — the mixed read/write mix: one `POST /session`
//!   takes residence, then the schedule interleaves `POST /update`
//!   deltas (an `--update-frac` fraction of requests, default 10%)
//!   with session-scoped `POST /run`s. Every update bumps the session
//!   generation, so the row's hit rate and latency percentiles measure
//!   generation-keyed invalidation under churn: a run after an update
//!   misses and recomputes incrementally, repeats hit.
//!
//! ```text
//! cargo run --release -p mmvc-serve --bin mmvc_loadgen -- \
//!     [--addr HOST:PORT] [--smoke] [--out PATH] [--requests N]
//!     [--clients C] [--workers W] [--reqs-per-conn R] [--pipeline D]
//!     [--seed S] [--update-frac F]
//! ```
//!
//! Without `--addr`, a fresh in-process daemon is spawned per mix on an
//! ephemeral port (`--workers` sizes its pool) and shut down cleanly —
//! the zero-setup mode CI uses, and it keeps the rows independent: each
//! mix starts against a cold cache. With `--addr`, the external daemon's
//! cache persists across mixes (noted by `"server"` in the artifact) and
//! the `warm-restart` mix is skipped — the generator cannot restart a
//! server it does not own. The request *schedule* is a pure function of
//! `--seed`; the measured numbers are the only nondeterministic outputs.

use mmvc_bench::Json;
use mmvc_core::run::AlgorithmKind;
use mmvc_serve::{client, metrics, ServeConfig, Server};
use std::process::ExitCode;
use std::time::Instant;

/// A deterministic xorshift64* stream for request scheduling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A scheduled request: `(path, body)`. Most mixes only ever target
/// `/run`; `session-churn` interleaves `/update` writes.
type Req = (&'static str, String);

/// One benchmark configuration.
struct Config {
    addr: Option<String>,
    smoke: bool,
    out: String,
    requests: usize,
    clients: usize,
    workers: usize,
    reqs_per_conn: u64,
    pipeline: u64,
    seed: u64,
    update_frac: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: None,
            smoke: false,
            out: "BENCH_serve.json".to_string(),
            requests: 20_000,
            clients: 4,
            workers: 4,
            reqs_per_conn: 1000,
            pipeline: 8,
            seed: 0x10AD,
            update_frac: 0.1,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmvc_loadgen [--addr HOST:PORT] [--smoke] [--out PATH] [--requests N] \
         [--clients C] [--workers W] [--reqs-per-conn R] [--pipeline D] [--seed S] \
         [--update-frac F]"
    );
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Option<Config> {
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).filter(|v| !v.starts_with("--"));
        match args[i].as_str() {
            "--smoke" => {
                cfg.smoke = true;
                i += 1;
            }
            "--addr" => {
                cfg.addr = Some(value(i)?.clone());
                i += 2;
            }
            "--out" => {
                cfg.out = value(i)?.clone();
                i += 2;
            }
            "--requests" => {
                cfg.requests = value(i)?.parse().ok()?;
                i += 2;
            }
            "--clients" => {
                cfg.clients = value(i)?.parse::<usize>().ok()?.max(1);
                i += 2;
            }
            "--workers" => {
                cfg.workers = value(i)?.parse::<usize>().ok()?.max(1);
                i += 2;
            }
            "--reqs-per-conn" => {
                cfg.reqs_per_conn = value(i)?.parse::<u64>().ok()?.max(1);
                i += 2;
            }
            "--pipeline" => {
                // The server stops reading a connection at 64 unanswered
                // requests; a deeper client window would only stall.
                cfg.pipeline = value(i)?.parse::<u64>().ok()?.clamp(1, 64);
                i += 2;
            }
            "--seed" => {
                cfg.seed = value(i)?.parse().ok()?;
                i += 2;
            }
            "--update-frac" => {
                let frac = value(i)?.parse::<f64>().ok()?;
                if !(0.0..=1.0).contains(&frac) {
                    return None;
                }
                cfg.update_frac = frac;
                i += 2;
            }
            _ => return None,
        }
    }
    if cfg.smoke {
        cfg.requests = cfg.requests.min(60);
        cfg.clients = cfg.clients.min(2);
    }
    Some(cfg)
}

/// The fixed spec pool the `uniform`, `hot-key`, and `warm-restart`
/// mixes draw from: every algorithm kind over a rotating scenario, at a
/// size small enough that a cold run is milliseconds.
fn spec_pool(smoke: bool, seed: u64) -> Vec<String> {
    let scenarios = [
        "gnp-sparse",
        "power-law",
        "bipartite",
        "geometric",
        "planted-matching",
        "gnm",
    ];
    let n = if smoke { 64 } else { 128 };
    let mut pool = Vec::new();
    for (i, kind) in AlgorithmKind::ALL.iter().enumerate() {
        for j in 0..2usize {
            let scenario = scenarios[(i + j) % scenarios.len()];
            pool.push(format!(
                r#"{{"algorithm": "{}", "scenario": "{scenario}", "n": {n}, "seed": {}}}"#,
                kind.name(),
                seed.wrapping_add(j as u64)
            ));
        }
    }
    pool
}

/// One mix's request schedule: the `(path, body)` of request `i`.
#[derive(PartialEq, Eq)]
enum Mix {
    Uniform,
    HotKey,
    CacheBust,
    WarmRestart,
    SessionChurn,
}

impl Mix {
    fn name(&self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::HotKey => "hot-key",
            Mix::CacheBust => "cache-bust",
            Mix::WarmRestart => "warm-restart",
            Mix::SessionChurn => "session-churn",
        }
    }

    /// The in-process daemon's cache capacity for this mix. `hot-key`
    /// deliberately runs with a cache smaller than the spec pool so the
    /// row measures skew under eviction pressure, not pool memoization.
    fn cache_capacity(&self, pool_len: usize) -> usize {
        match self {
            Mix::Uniform | Mix::CacheBust | Mix::WarmRestart | Mix::SessionChurn => 512,
            Mix::HotKey => (pool_len / 4).max(2),
        }
    }

    /// Builds the full request schedule for this mix, deterministically
    /// from the seed.
    fn schedule(&self, cfg: &Config, pool: &[String]) -> Vec<Req> {
        let mut rng = Rng::new(cfg.seed ^ fnv(self.name().as_bytes()));
        match self {
            Mix::Uniform | Mix::WarmRestart => (0..cfg.requests)
                .map(|_| ("/run", pool[(rng.next_u64() as usize) % pool.len()].clone()))
                .collect(),
            Mix::HotKey => {
                // Zipf-like weights w_k ∝ 1/(k+1)^1.2 over the pool.
                let weights: Vec<f64> = (0..pool.len())
                    .map(|k| 1.0 / ((k + 1) as f64).powf(1.2))
                    .collect();
                let total: f64 = weights.iter().sum();
                (0..cfg.requests)
                    .map(|_| {
                        let mut target = rng.next_f64() * total;
                        let mut idx = 0;
                        for (k, w) in weights.iter().enumerate() {
                            idx = k;
                            target -= w;
                            if target <= 0.0 {
                                break;
                            }
                        }
                        ("/run", pool[idx].clone())
                    })
                    .collect()
            }
            Mix::CacheBust => {
                let n = if cfg.smoke { 64 } else { 128 };
                (0..cfg.requests)
                    .map(|i| {
                        let kind = AlgorithmKind::ALL[i % AlgorithmKind::ALL.len()];
                        (
                            "/run",
                            format!(
                                r#"{{"algorithm": "{}", "scenario": "gnp-sparse", "n": {n}, "seed": {}}}"#,
                                kind.name(),
                                cfg.seed.wrapping_add(1000 + i as u64)
                            ),
                        )
                    })
                    .collect()
            }
            // Built by `drive_session_churn` instead: the schedule needs
            // the live session id the daemon hands back.
            Mix::SessionChurn => Vec::new(),
        }
    }
}

/// The `session-churn` schedule: session-scoped runs with an
/// `update_frac` fraction of `POST /update` deltas interleaved, all
/// derived from the seed (only the session id comes from the daemon).
fn session_schedule(cfg: &Config, id: i64, n: u64) -> Vec<Req> {
    let mut rng = Rng::new(cfg.seed ^ fnv(Mix::SessionChurn.name().as_bytes()));
    let pair = |rng: &mut Rng| {
        let a = rng.next_u64() % n;
        let b = rng.next_u64() % n;
        let b = if a == b { (a + 1) % n } else { b };
        (a, b)
    };
    (0..cfg.requests)
        .map(|_| {
            if rng.next_f64() < cfg.update_frac {
                let (a, b) = pair(&mut rng);
                let (c, d) = pair(&mut rng);
                (
                    "/update",
                    format!(
                        r#"{{"session": {id}, "insert": [[{a}, {b}]], "delete": [[{c}, {d}]]}}"#
                    ),
                )
            } else {
                ("/run", format!(r#"{{"session": {id}}}"#))
            }
        })
        .collect()
}

fn fnv(bytes: &[u8]) -> u64 {
    mmvc_serve::fnv1a(bytes)
}

/// Post-restart accounting for the `warm-restart` mix: the second-half
/// phase served by the restarted daemon.
struct PostRestart {
    requests: usize,
    hits: u64,
}

/// Measured outcome of one mix.
struct MixResult {
    mix: &'static str,
    requests: usize,
    distinct_specs: usize,
    hits: u64,
    store_hits: u64,
    misses: u64,
    /// `POST /update` deltas acknowledged (only the `session-churn` mix
    /// schedules any). Updates carry no `x-cache` header and are kept
    /// out of the hit-rate denominator.
    updates: u64,
    errors: u64,
    connections: u64,
    keepalive_reuses: i64,
    bytes_served: i64,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    post_restart: Option<PostRestart>,
}

impl MixResult {
    fn merge(mut self, other: MixResult) -> MixResult {
        self.requests += other.requests;
        self.hits += other.hits;
        self.store_hits += other.store_hits;
        self.misses += other.misses;
        self.updates += other.updates;
        self.errors += other.errors;
        self.connections += other.connections;
        self.keepalive_reuses += other.keepalive_reuses;
        self.bytes_served += other.bytes_served;
        self.wall_s += other.wall_s;
        self.latencies_ms.extend(other.latencies_ms);
        self
    }

    /// `cache_capacity` is `None` when driving an external daemon: its
    /// cache is configured out of band, and reporting the in-process
    /// default would claim pressure that never applied.
    fn to_json(&self, clients: usize, reqs_per_conn: u64, cache_capacity: Option<usize>) -> Json {
        let (p50, p90, p99, p999) = metrics::percentiles(self.latencies_ms.clone());
        let answered = self.hits + self.store_hits + self.misses;
        Json::obj(vec![
            ("mix", Json::Str(self.mix.to_string())),
            ("requests", Json::Int(self.requests as i64)),
            ("clients", Json::Int(clients as i64)),
            ("reqs_per_conn", Json::Int(reqs_per_conn as i64)),
            ("distinct_specs", Json::Int(self.distinct_specs as i64)),
            (
                "cache_capacity",
                match cache_capacity {
                    Some(cap) => Json::Int(cap as i64),
                    None => Json::Null,
                },
            ),
            ("cache_hits", Json::Int(self.hits as i64)),
            ("store_hits", Json::Int(self.store_hits as i64)),
            ("cache_misses", Json::Int(self.misses as i64)),
            ("updates", Json::Int(self.updates as i64)),
            ("errors", Json::Int(self.errors as i64)),
            (
                "hit_rate",
                Json::Float(if answered > 0 {
                    (self.hits + self.store_hits) as f64 / answered as f64
                } else {
                    0.0
                }),
            ),
            ("connections", Json::Int(self.connections as i64)),
            ("keepalive_reuses", Json::Int(self.keepalive_reuses)),
            ("bytes_served", Json::Int(self.bytes_served)),
            (
                "throughput_rps",
                Json::Float(self.requests as f64 / self.wall_s.max(1e-9)),
            ),
            (
                "latency_ms",
                Json::obj(vec![
                    ("p50", Json::Float(p50)),
                    ("p90", Json::Float(p90)),
                    ("p99", Json::Float(p99)),
                    ("p999", Json::Float(p999)),
                ]),
            ),
            // The tail's *shape*, not just its p-points: the same
            // cumulative log2 buckets the daemon serves (`le` is the
            // bucket's upper bound in ms), trimmed to the occupied
            // range, so the bench trajectory can tell a fat tail from a
            // spike the percentiles happen to straddle.
            ("latency_histogram_ms", {
                let hist = metrics::LatencyHistogram::new();
                for &ms in &self.latencies_ms {
                    hist.record_ms(ms);
                }
                let snap = hist.snapshot();
                Json::obj(vec![
                    ("count", Json::Int(snap.count as i64)),
                    ("sum", Json::Float(snap.sum_ms)),
                    (
                        "buckets",
                        Json::Arr(
                            snap.occupied()
                                .iter()
                                .map(|&(le, count)| {
                                    Json::obj(vec![
                                        ("le", Json::Float(le)),
                                        ("count", Json::Int(count as i64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("overflow", Json::Int(snap.overflow as i64)),
                ])
            }),
            (
                "post_restart",
                match &self.post_restart {
                    Some(pr) => Json::obj(vec![
                        ("requests", Json::Int(pr.requests as i64)),
                        ("hits", Json::Int(pr.hits as i64)),
                        (
                            "hit_rate",
                            Json::Float(if pr.requests > 0 {
                                pr.hits as f64 / pr.requests as f64
                            } else {
                                0.0
                            }),
                        ),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Reads `(keepalive_reuses, bytes_served)` from the daemon's
/// `/metrics`, so rows can report server-side reuse (a delta of two
/// snapshots works for external daemons too).
fn server_stats(addr: &str) -> (i64, i64) {
    let Ok(resp) = client::get(addr, "/metrics") else {
        return (0, 0);
    };
    let Ok(doc) = Json::parse(&resp.text()) else {
        return (0, 0);
    };
    let int = |key: &str| doc.get(key).and_then(Json::as_i64).unwrap_or(0);
    (int("keepalive_reuses"), int("bytes_served"))
}

/// Replays one schedule with `clients` keep-alive threads (client `c`
/// takes requests `c, c+C, c+2C, …` — a deterministic partition). Each
/// thread keeps up to `pipeline` requests in flight on its connection
/// (batched into one write, responses drained in order — the wrk-style
/// closed loop that measures the server rather than the client's
/// round-trip context switches) and reuses the connection for up to
/// `reqs_per_conn` requests, reconnecting when the quota is reached,
/// the server answers `connection: close`, or an I/O error poisons the
/// stream. Latency is send-to-response for each request, so at depths
/// above 1 it includes time queued behind the window's earlier
/// requests.
fn drive(
    addr: &str,
    schedule: &[Req],
    clients: usize,
    reqs_per_conn: u64,
    pipeline: u64,
) -> MixResult {
    use std::collections::VecDeque;
    use std::io::Write;

    /// Per-client-thread accounting, folded into the `MixResult`.
    struct ClientTally {
        hits: u64,
        store_hits: u64,
        misses: u64,
        updates: u64,
        errors: u64,
        opened: u64,
        latencies: Vec<f64>,
    }

    let (reuses_before, bytes_before) = server_stats(addr);
    let started = Instant::now();
    let outcomes: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let my: Vec<&Req> = schedule.iter().skip(c).step_by(clients).collect();
                    let (mut hits, mut store_hits, mut misses, mut updates, mut errors) =
                        (0u64, 0u64, 0u64, 0u64, 0u64);
                    let mut opened = 0u64;
                    let mut latencies = Vec::with_capacity(my.len());
                    let mut conn: Option<client::Conn> = None;
                    // Send timestamp + is-update flag of requests written
                    // but not yet answered; `next` is the first unsent
                    // index. Invariant: next == answered + inflight.len().
                    let mut inflight: VecDeque<(Instant, bool)> = VecDeque::new();
                    let mut next = 0usize;
                    let mut answered = 0usize;
                    let mut wbuf = Vec::with_capacity(4096);
                    while answered < my.len() {
                        if conn.is_none() {
                            match client::Conn::connect(addr) {
                                Ok(cn) => {
                                    conn = Some(cn);
                                    opened += 1;
                                }
                                Err(_) => {
                                    // Spend one scheduled request on the
                                    // failure and try again for the rest.
                                    errors += 1;
                                    answered += 1;
                                    next += 1;
                                    continue;
                                }
                            }
                        }
                        let cn = conn.as_mut().expect("connection was just ensured");
                        // Fill the window: batch every sendable request
                        // into one write.
                        wbuf.clear();
                        while next < my.len()
                            && (inflight.len() as u64) < pipeline
                            && cn.requests_sent() < reqs_per_conn
                        {
                            let (path, body) = my[next];
                            cn.encode_request_into(&mut wbuf, "POST", path, body.as_bytes());
                            inflight.push_back((Instant::now(), *path == "/update"));
                            next += 1;
                        }
                        if inflight.is_empty() {
                            // Nothing in flight and the quota exhausted:
                            // rotate to a fresh connection.
                            conn = None;
                            continue;
                        }
                        let io = (|| {
                            if !wbuf.is_empty() {
                                cn.stream_mut().write_all(&wbuf)?;
                                cn.stream_mut().flush()?;
                            }
                            cn.read_next_response()
                        })();
                        match io {
                            Ok(resp) => {
                                let (t0, is_update) = inflight
                                    .pop_front()
                                    .expect("a response implies an in-flight request");
                                answered += 1;
                                if resp.status == 200 {
                                    if is_update {
                                        updates += 1;
                                    } else {
                                        match resp.header("x-cache") {
                                            Some("hit") => hits += 1,
                                            Some("store") => store_hits += 1,
                                            _ => misses += 1,
                                        }
                                    }
                                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                                } else {
                                    errors += 1;
                                }
                                if !resp.keep_alive() {
                                    // Requests pipelined past a closing
                                    // response are gone; count them.
                                    errors += inflight.len() as u64;
                                    answered += inflight.len();
                                    inflight.clear();
                                    conn = None;
                                }
                            }
                            Err(_) => {
                                errors += inflight.len() as u64;
                                answered += inflight.len();
                                inflight.clear();
                                conn = None;
                            }
                        }
                    }
                    ClientTally {
                        hits,
                        store_hits,
                        misses,
                        updates,
                        errors,
                        opened,
                        latencies,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let (reuses_after, bytes_after) = server_stats(addr);

    let mut result = MixResult {
        mix: "",
        requests: schedule.len(),
        distinct_specs: distinct_bodies(schedule),
        hits: 0,
        store_hits: 0,
        misses: 0,
        updates: 0,
        errors: 0,
        connections: 0,
        keepalive_reuses: reuses_after - reuses_before,
        bytes_served: bytes_after - bytes_before,
        wall_s,
        latencies_ms: Vec::new(),
        post_restart: None,
    };
    for t in outcomes {
        result.hits += t.hits;
        result.store_hits += t.store_hits;
        result.misses += t.misses;
        result.updates += t.updates;
        result.errors += t.errors;
        result.connections += t.opened;
        result.latencies_ms.extend(t.latencies);
    }
    result
}

/// Distinct request bodies in a schedule (the `distinct_specs` column).
fn distinct_bodies(schedule: &[Req]) -> usize {
    let mut distinct: Vec<&String> = schedule.iter().map(|(_, body)| body).collect();
    distinct.sort();
    distinct.dedup();
    distinct.len()
}

/// Spawns an in-process daemon, returning `(addr, join-thread, handle)`.
fn spawn_server(
    workers: usize,
    cache_capacity: usize,
    store_dir: Option<String>,
) -> Result<
    (
        String,
        std::thread::JoinHandle<std::io::Result<()>>,
        mmvc_serve::ServerHandle,
    ),
    std::io::Error,
> {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity,
        store_dir,
        ..ServeConfig::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let handle = server.handle()?;
    let thread = std::thread::spawn(move || server.run());
    Ok((addr, thread, handle))
}

fn stop_server(
    thread: std::thread::JoinHandle<std::io::Result<()>>,
    handle: &mmvc_serve::ServerHandle,
) {
    handle.shutdown();
    if thread.join().expect("server thread panicked").is_err() {
        eprintln!("warning: in-process server exited with an error");
    }
}

/// The `warm-restart` mix: first half of the schedule populates a
/// store-backed daemon, the daemon is shut down and restarted over the
/// same directory (cold memory, warm disk), and the second half proves
/// disk hits survive the restart.
fn drive_warm_restart(cfg: &Config, schedule: &[Req], cache_capacity: usize) -> Option<MixResult> {
    let store_dir = std::env::temp_dir().join(format!("mmvc-loadgen-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_dir_s = store_dir.display().to_string();
    let split = schedule.len() / 2;
    let (phase1, phase2) = schedule.split_at(split);

    let (addr, thread, handle) =
        match spawn_server(cfg.workers, cache_capacity, Some(store_dir_s.clone())) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind in-process server: {e}");
                return None;
            }
        };
    let warm = drive(&addr, phase1, cfg.clients, cfg.reqs_per_conn, cfg.pipeline);
    stop_server(thread, &handle);

    // Restart over the same store directory: memory cache cold, disk warm.
    let (addr, thread, handle) = match spawn_server(cfg.workers, cache_capacity, Some(store_dir_s))
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot restart in-process server: {e}");
            return None;
        }
    };
    let restarted = drive(&addr, phase2, cfg.clients, cfg.reqs_per_conn, cfg.pipeline);
    stop_server(thread, &handle);
    let _ = std::fs::remove_dir_all(&store_dir);

    let post = PostRestart {
        requests: restarted.requests,
        hits: restarted.hits + restarted.store_hits,
    };
    let mut merged = warm.merge(restarted);
    merged.post_restart = Some(post);
    merged.distinct_specs = distinct_bodies(schedule);
    Some(merged)
}

/// The `session-churn` mix: one `POST /session` takes residence, then
/// the seeded schedule interleaves `POST /update` deltas with
/// session-scoped runs. Works against an external daemon too — the
/// session lives exactly as long as the daemon, and this driver never
/// restarts anything.
fn drive_session_churn(cfg: &Config, cache_capacity: usize) -> Option<MixResult> {
    let (addr, server) = match &cfg.addr {
        Some(addr) => (addr.clone(), None),
        None => match spawn_server(cfg.workers, cache_capacity, None) {
            Ok((addr, thread, handle)) => (addr, Some((thread, handle))),
            Err(e) => {
                eprintln!("cannot bind in-process server: {e}");
                return None;
            }
        },
    };
    let n: u64 = if cfg.smoke { 64 } else { 128 };
    let spec = format!(
        r#"{{"algorithm": "greedy-mis", "scenario": "gnp-sparse", "n": {n}, "seed": {}}}"#,
        cfg.seed
    );
    let id = client::request(&addr, "POST", "/session", spec.as_bytes())
        .ok()
        .filter(|resp| resp.status == 200)
        .and_then(|resp| Json::parse(&resp.text()).ok())
        .and_then(|doc| doc.get("session").and_then(Json::as_i64));
    let Some(id) = id else {
        eprintln!("session-churn: POST /session refused");
        if let Some((thread, handle)) = server {
            stop_server(thread, &handle);
        }
        return None;
    };
    let schedule = session_schedule(cfg, id, n);
    let result = drive(
        &addr,
        &schedule,
        cfg.clients,
        cfg.reqs_per_conn,
        cfg.pipeline,
    );
    if let Some((thread, handle)) = server {
        stop_server(thread, &handle);
    }
    Some(result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cfg) = parse_args(&args) else {
        return usage();
    };

    let pool = spec_pool(cfg.smoke, cfg.seed);
    let mut rows = Vec::new();
    let mut total_errors = 0u64;
    for mix in [
        Mix::Uniform,
        Mix::HotKey,
        Mix::CacheBust,
        Mix::WarmRestart,
        Mix::SessionChurn,
    ] {
        let schedule = mix.schedule(&cfg, &pool);
        let capacity = mix.cache_capacity(pool.len());

        let mut result = if mix == Mix::WarmRestart {
            if cfg.addr.is_some() {
                eprintln!("warm-restart: skipped (cannot restart an external daemon)");
                continue;
            }
            match drive_warm_restart(&cfg, &schedule, capacity) {
                Some(r) => r,
                None => return ExitCode::FAILURE,
            }
        } else if mix == Mix::SessionChurn {
            match drive_session_churn(&cfg, capacity) {
                Some(r) => r,
                None => return ExitCode::FAILURE,
            }
        } else {
            // A fresh in-process daemon per mix (cold cache → independent
            // rows), unless pointed at an external one.
            let (addr, server) = match &cfg.addr {
                Some(addr) => (addr.clone(), None),
                None => match spawn_server(cfg.workers, capacity, None) {
                    Ok((addr, thread, handle)) => (addr, Some((thread, handle))),
                    Err(e) => {
                        eprintln!("cannot bind in-process server: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let r = drive(
                &addr,
                &schedule,
                cfg.clients,
                cfg.reqs_per_conn,
                cfg.pipeline,
            );
            if let Some((thread, handle)) = server {
                stop_server(thread, &handle);
            }
            r
        };
        result.mix = mix.name();
        total_errors += result.errors;
        eprintln!(
            "{:<13} {} requests ({} distinct) in {:.2}s: {:.0} rps, {} hits / {} store / \
             {} misses / {} updates, {} conns, {} errors",
            result.mix,
            result.requests,
            result.distinct_specs,
            result.wall_s,
            result.requests as f64 / result.wall_s.max(1e-9),
            result.hits,
            result.store_hits,
            result.misses,
            result.updates,
            result.connections,
            result.errors
        );
        rows.push(result.to_json(
            cfg.clients,
            cfg.reqs_per_conn,
            cfg.addr.is_none().then_some(capacity),
        ));
    }

    let doc = Json::obj(vec![
        // v3: rows gained `latency_histogram_ms` (log2 tail shape).
        ("schema", Json::Str("mmvc-serve-bench/v3".to_string())),
        (
            "mode",
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "server",
            Json::Str(match &cfg.addr {
                Some(addr) => addr.clone(),
                None => "in-process".to_string(),
            }),
        ),
        (
            // Unknown for an external daemon: --workers only sizes the
            // in-process one.
            "workers",
            match cfg.addr {
                Some(_) => Json::Null,
                None => Json::Int(cfg.workers as i64),
            },
        ),
        ("clients", Json::Int(cfg.clients as i64)),
        ("reqs_per_conn", Json::Int(cfg.reqs_per_conn as i64)),
        ("pipeline", Json::Int(cfg.pipeline as i64)),
        ("seed", Json::Int(cfg.seed as i64)),
        ("update_frac", Json::Float(cfg.update_frac)),
        ("rows", Json::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&cfg.out, doc.render()) {
        eprintln!("cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", cfg.out);

    if total_errors > 0 {
        eprintln!("{total_errors} requests failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
