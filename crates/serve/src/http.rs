//! A minimal, strict HTTP/1.1 reader and writer over any byte stream.
//!
//! Just enough of RFC 9112 for the serving daemon: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked transfer), bounded head and body sizes so a
//! hostile peer cannot balloon memory, and `Expect: 100-continue`
//! handling so stock clients (curl) work with larger bodies.
//!
//! Kept free of `TcpStream` specifics — everything is generic over
//! [`Read`]/[`Write`] — so the parser is unit-testable on in-memory
//! buffers.

use std::io::{Read, Write};

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: the method, the request target (path), and the
/// headers/body the daemon cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Request target, e.g. `/run`. Query strings are not split off —
    /// the daemon's routes are exact paths.
    pub target: String,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the client sent `Expect: 100-continue`.
    pub expect_continue: bool,
    /// The request body (read separately via [`read_body`]).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or body exceeded its size bound.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses the request head (request line and headers), up to
/// and including the blank line. The body is *not* read — call
/// [`read_body`] after optionally acknowledging `Expect: 100-continue`.
///
/// # Errors
///
/// [`HttpError`] on stream failure, a head larger than
/// [`MAX_HEAD_BYTES`], a declared body larger than [`MAX_BODY_BYTES`],
/// or anything that is not an HTTP/1.x request.
pub fn read_head<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    // Read byte-at-a-time until CRLFCRLF: the head is tiny and this
    // avoids buffering past the body boundary.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(HttpError::Malformed("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(HttpError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not HTTP/1.x"));
    }

    let mut content_length = 0usize;
    let mut expect_continue = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError::TooLarge("body"));
                }
            }
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            _ => {}
        }
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        content_length,
        expect_continue,
        body: Vec::new(),
    })
}

/// Reads the declared body into `request.body`.
///
/// # Errors
///
/// [`HttpError::Io`] on stream failure or a body shorter than declared.
pub fn read_body<R: Read>(stream: &mut R, request: &mut Request) -> Result<(), HttpError> {
    let mut body = vec![0u8; request.content_length];
    stream.read_exact(&mut body)?;
    request.body = body;
    Ok(())
}

/// The reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response: status line, standard headers
/// (`Content-Type: application/json`, `Content-Length`, `Connection:
/// close`), any extra headers, and the body.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the `100 Continue` interim response acknowledging an
/// `Expect: 100-continue` request.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_continue<W: Write>(stream: &mut W) -> std::io::Result<()> {
    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let mut req = read_head(&mut cursor)?;
        read_body(&mut cursor, &mut req)?;
        Ok(req)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.content_length, 0);
        assert!(req.body.is_empty());
        assert!(!req.expect_continue);
    }

    #[test]
    fn parses_post_with_body_and_case_insensitive_headers() {
        let req = parse(
            b"POST /run HTTP/1.1\r\nHost: x\r\nCONTENT-LENGTH: 4\r\nExpect: 100-Continue\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.content_length, 4);
        assert_eq!(req.body, b"{\"a\"");
        assert!(req.expect_continue);
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
            b"GET /x HTTP/1.1\r\n",
        ] {
            assert!(
                parse(raw).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_oversized_declarations() {
        let raw = format!(
            "POST /run HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
        let huge = format!(
            "GET /x HTTP/1.1\r\npad: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::TooLarge("head"))
        ));
    }

    #[test]
    fn short_body_is_an_io_error() {
        assert!(matches!(
            parse(b"POST /run HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn writes_responses_with_exact_framing() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &[("x-cache", "hit")], b"{}\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));

        let mut cont = Vec::new();
        write_continue(&mut cont).unwrap();
        assert_eq!(cont, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn error_display_and_source() {
        let e = HttpError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&HttpError::Malformed("x")).is_none());
    }
}
