//! A minimal, strict HTTP/1.1 request parser and response renderer.
//!
//! Just enough of RFC 9112 for the serving daemon, reshaped for the
//! readiness-driven reactor in `lib.rs`: parsing is **incremental and
//! buffer-based** — [`parse_head`] inspects whatever bytes have arrived
//! so far and either yields a complete head (plus how many bytes it
//! consumed) or asks for more — so one connection can carry many
//! pipelined requests, with heads split across arbitrary TCP segment
//! boundaries. Framing is `Content-Length` only (no chunked transfer),
//! head and body sizes are bounded so a hostile peer cannot balloon
//! memory, and `Connection`/version negotiation decides keep-alive per
//! request.
//!
//! Kept free of socket specifics — everything works on byte slices — so
//! the parser unit-tests on in-memory buffers and the reactor feeds it
//! straight from its per-connection read buffer.

use std::io::Write;

/// Largest accepted request head (request line + headers), in bytes.
/// Exceeding it is a `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body, in bytes. Exceeding it is a
/// `413 Content Too Large`.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request head: the request line plus the headers the daemon
/// cares about, including the negotiated framing decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Request target, e.g. `/run` or `/metrics?format=prom`. Query
    /// strings are not split off here — routing does that.
    pub target: String,
    /// The `Accept` header value, lowercased (`None` when absent).
    /// Routing uses it for content negotiation on `GET /metrics`.
    pub accept: Option<String>,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the client sent `Expect: 100-continue`.
    pub expect_continue: bool,
    /// Whether the connection may carry another request after this one:
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 defaults to close unless it sends
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// A complete request: the head plus its (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The parsed head.
    pub head: Head,
    /// The request body (`content_length` bytes).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed. Each variant maps to one response
/// status (see [`HttpError::status`]); all of them end the connection
/// after the error is written, because the byte stream can no longer be
/// trusted to frame a next request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes were not a parseable HTTP/1.1 request (`400`).
    Malformed(&'static str),
    /// The head exceeded [`MAX_HEAD_BYTES`] (`431`).
    HeadTooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`] (`413`).
    BodyTooLarge,
}

impl HttpError {
    /// The response status for this parse failure.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head larger than {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge => {
                write!(f, "request body larger than {MAX_BODY_BYTES} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Incrementally parses a request head from the front of `buf`.
///
/// Returns `Ok(Some((head, consumed)))` when `buf` starts with a
/// complete head (`consumed` covers it, terminator included — the body,
/// if any, starts at `buf[consumed..]`), and `Ok(None)` when more bytes
/// are needed. The caller re-invokes with the grown buffer; partial
/// heads across reads are the normal case, not an error.
///
/// # Errors
///
/// [`HttpError`] when the bytes can never become a valid request: no
/// terminator within [`MAX_HEAD_BYTES`], a malformed request line or
/// header, or a declared body over [`MAX_BODY_BYTES`].
pub fn parse_head(buf: &[u8]) -> Result<Option<(Head, usize)>, HttpError> {
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES)];
    let Some(end) = find_terminator(window) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    let consumed = end + 4;
    let head =
        std::str::from_utf8(&buf[..end]).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(HttpError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not HTTP/1.x"));
    }
    // HTTP/1.1 keep-alive is the default; HTTP/1.0 must opt in.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    let mut expect_continue = false;
    let mut accept: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line"));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
        } else if name.eq_ignore_ascii_case("expect") {
            expect_continue = value.eq_ignore_ascii_case("100-continue");
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value.to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    Ok(Some((
        Head {
            method: method.to_string(),
            target: target.to_string(),
            accept,
            content_length,
            expect_continue,
            keep_alive,
        },
        consumed,
    )))
}

/// Position of `\r\n\r\n` in `buf`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete response head: status line, standard headers
/// (`Content-Type`, `Content-Length`, and the negotiated `Connection`),
/// plus any extra headers. Almost every body is JSON; the Prometheus
/// variant of `GET /metrics` passes its text-exposition type instead.
///
/// The body is deliberately **not** part of the rendered bytes: cached
/// bodies are shared `Arc<[u8]>`s the reactor writes straight from, so
/// a response is always (fresh small head) + (shared body), with no
/// per-response copy of the payload.
pub fn render_head(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body_len: usize,
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = Vec::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {body_len}\r\nconnection: {}\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.extend_from_slice(b"\r\n");
    head
}

/// The `100 Continue` interim response acknowledging an
/// `Expect: 100-continue` request, as raw bytes.
pub const CONTINUE_BYTES: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_complete(raw: &[u8]) -> Result<(Head, usize), HttpError> {
        Ok(parse_head(raw)?.expect("head should be complete"))
    }

    #[test]
    fn parses_get_without_body() {
        let (head, consumed) = parse_complete(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert_eq!(head.accept, None);
        assert_eq!(head.content_length, 0);
        assert!(!head.expect_continue);
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_case_insensitive_headers() {
        let raw =
            b"POST /run HTTP/1.1\r\nHost: x\r\nCONTENT-LENGTH: 4\r\nExpect: 100-Continue\r\n\r\n{\"a\"";
        let (head, consumed) = parse_complete(raw).unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.content_length, 4);
        assert!(head.expect_continue);
        assert_eq!(&raw[consumed..], b"{\"a\"", "body starts after the head");
    }

    #[test]
    fn captures_accept_header_lowercased() {
        let (head, _) =
            parse_complete(b"GET /metrics HTTP/1.1\r\nAccept: Text/Plain\r\n\r\n").unwrap();
        assert_eq!(head.accept.as_deref(), Some("text/plain"));
    }

    #[test]
    fn keep_alive_negotiation_matrix() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true),
        ];
        for (raw, expected) in cases {
            let (head, _) = parse_complete(raw).unwrap();
            assert_eq!(
                head.keep_alive,
                *expected,
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn partial_heads_ask_for_more_bytes() {
        let raw = b"POST /run HTTP/1.1\r\ncontent-length: 2\r\n\r\nok";
        // Every proper prefix that lacks the terminator parses to None.
        for cut in 0..raw.len() - 4 {
            assert_eq!(parse_head(&raw[..cut]).unwrap(), None, "cut={cut}");
        }
        let (head, consumed) = parse_complete(raw).unwrap();
        assert_eq!(head.content_length, 2);
        assert_eq!(consumed, raw.len() - 2);
    }

    #[test]
    fn pipelined_heads_parse_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_complete(raw).unwrap();
        assert_eq!(first.target, "/a");
        let (second, rest) = parse_complete(&raw[consumed..]).unwrap();
        assert_eq!(second.target, "/b");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
            b"\xFF\xFE /x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_head(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn rejects_oversized_declarations_with_dedicated_statuses() {
        let body = format!(
            "POST /run HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_head(body.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
        assert_eq!(err.status(), 413);

        let huge = format!("GET /x HTTP/1.1\r\npad: {}", "y".repeat(MAX_HEAD_BYTES));
        let err = parse_head(huge.as_bytes()).unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);

        // A huge buffer whose terminator sits beyond the cap is rejected
        // even though a terminator exists somewhere.
        let late = format!(
            "GET /x HTTP/1.1\r\npad: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(
            parse_head(late.as_bytes()).unwrap_err(),
            HttpError::HeadTooLarge
        );
    }

    #[test]
    fn renders_heads_with_exact_framing() {
        let head = render_head(200, "application/json", &[("x-cache", "hit")], 3, true);
        let text = String::from_utf8(head).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n"));

        let closing =
            String::from_utf8(render_head(431, "application/json", &[], 0, false)).unwrap();
        assert!(closing.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"));
        assert!(closing.contains("connection: close\r\n"));

        let prom =
            String::from_utf8(render_head(200, "text/plain; version=0.0.4", &[], 0, true)).unwrap();
        assert!(prom.contains("content-type: text/plain; version=0.0.4\r\n"));
    }

    #[test]
    fn error_display_and_status() {
        assert!(HttpError::Malformed("x").to_string().contains("malformed"));
        assert!(HttpError::HeadTooLarge.to_string().contains("head"));
        assert!(HttpError::BodyTooLarge.to_string().contains("body"));
        assert_eq!(HttpError::Malformed("x").status(), 400);
    }
}
