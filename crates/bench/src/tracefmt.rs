//! Exporters for drained [`TraceEvent`]s: Chrome Trace Event JSON
//! (loadable in Perfetto / `chrome://tracing`) and a line-oriented JSONL
//! event log, both rendered through the workspace's hand-rolled
//! [`Json`] model — telemetry stays serde-free like every other
//! artifact.
//!
//! The Chrome format is the "JSON Array Format with metadata" variant:
//! a top-level object whose `traceEvents` array holds one *complete*
//! event (`"ph": "X"`, microsecond `ts`/`dur`) per span and one counter
//! event (`"ph": "C"`) per sample. Span ids and parents ride along in
//! `args` so the nesting recorded by the sink survives tools that
//! re-derive it from timestamps.

use crate::json::Json;
use mmvc_substrate::{EventKind, TraceEvent};

/// Nanoseconds → the fractional microseconds Chrome traces use.
fn us(ns: u64) -> Json {
    Json::Float(ns as f64 / 1e3)
}

/// Renders drained events as a Chrome Trace Event document. Events are
/// emitted sorted by `(tid, start_ns, id)` so identical runs produce
/// identical files.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.tid, e.start_ns, e.id));
    let trace_events = ordered
        .into_iter()
        .map(|e| match e.kind {
            EventKind::Span => {
                let mut args: Vec<(String, Json)> = vec![
                    ("id".to_string(), Json::Int(e.id as i64)),
                    ("parent".to_string(), Json::Int(e.parent as i64)),
                ];
                if let Some(tag) = &e.tag {
                    args.push(("tag".to_string(), Json::Str(tag.clone())));
                }
                for &(k, v) in &e.args {
                    args.push((k.to_string(), Json::Int(v as i64)));
                }
                Json::obj(vec![
                    ("name", Json::Str(e.name.to_string())),
                    ("cat", Json::Str("mmvc".to_string())),
                    ("ph", Json::Str("X".to_string())),
                    ("ts", us(e.start_ns)),
                    ("dur", us(e.dur_ns)),
                    ("pid", Json::Int(1)),
                    ("tid", Json::Int(e.tid as i64)),
                    ("args", Json::Obj(args)),
                ])
            }
            EventKind::Counter => Json::obj(vec![
                ("name", Json::Str(e.name.to_string())),
                ("cat", Json::Str("mmvc".to_string())),
                ("ph", Json::Str("C".to_string())),
                ("ts", us(e.start_ns)),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(e.tid as i64)),
                (
                    "args",
                    Json::Obj(vec![(e.name.to_string(), Json::Int(e.value as i64))]),
                ),
            ]),
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

/// Renders drained events as JSONL: one compact object per line, in
/// `(tid, start_ns, id)` order, newline-terminated. Field names mirror
/// [`TraceEvent`] so the log needs no schema beyond the type's docs.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.tid, e.start_ns, e.id));
    let mut out = String::new();
    for e in ordered {
        let mut fields = vec![
            (
                "kind",
                Json::Str(
                    match e.kind {
                        EventKind::Span => "span",
                        EventKind::Counter => "counter",
                    }
                    .to_string(),
                ),
            ),
            ("name", Json::Str(e.name.to_string())),
            ("start_ns", Json::Int(e.start_ns as i64)),
            ("tid", Json::Int(e.tid as i64)),
        ];
        match e.kind {
            EventKind::Span => {
                fields.push(("dur_ns", Json::Int(e.dur_ns as i64)));
                fields.push(("id", Json::Int(e.id as i64)));
                fields.push(("parent", Json::Int(e.parent as i64)));
            }
            EventKind::Counter => fields.push(("value", Json::Int(e.value as i64))),
        }
        if let Some(tag) = &e.tag {
            fields.push(("tag", Json::Str(tag.clone())));
        }
        if !e.args.is_empty() {
            fields.push((
                "args",
                Json::Obj(
                    e.args
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Int(v as i64)))
                        .collect(),
                ),
            ));
        }
        out.push_str(&Json::obj(fields).render_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_substrate::Telemetry;

    fn sample_events() -> Vec<TraceEvent> {
        let tel = Telemetry::recording();
        {
            let _outer = tel.span("outer");
            let _inner = tel.span_tagged("inner", "leaf").with_arg("n", 5);
        }
        tel.counter("bytes", 128);
        tel.drain()
    }

    #[test]
    fn chrome_trace_is_well_formed_and_parses_back() {
        let doc = chrome_trace(&sample_events());
        let parsed = Json::parse(&doc.render()).expect("renderer emits valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("ts").and_then(Json::as_f64).is_some());
            assert!(e.get("pid").and_then(Json::as_i64).is_some());
            assert!(e.get("tid").and_then(Json::as_i64).is_some());
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "X" || ph == "C");
            if ph == "X" {
                assert!(e.get("dur").and_then(Json::as_f64).is_some());
            }
        }
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
            .unwrap();
        let args = inner.get("args").unwrap();
        assert_eq!(args.get("tag").and_then(Json::as_str), Some("leaf"));
        assert_eq!(args.get("n").and_then(Json::as_i64), Some(5));
        // The recorded parent relation is preserved.
        let outer = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("outer"))
            .unwrap();
        assert_eq!(
            inner
                .get("args")
                .unwrap()
                .get("parent")
                .and_then(Json::as_i64),
            outer.get("args").unwrap().get("id").and_then(Json::as_i64)
        );
    }

    #[test]
    fn jsonl_emits_one_parsable_line_per_event() {
        let text = jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut kinds = Vec::new();
        for line in lines {
            let doc = Json::parse(line).expect("each line is standalone JSON");
            kinds.push(doc.get("kind").and_then(Json::as_str).unwrap().to_string());
        }
        assert_eq!(kinds.iter().filter(|k| *k == "span").count(), 2);
        assert_eq!(kinds.iter().filter(|k| *k == "counter").count(), 1);
    }

    #[test]
    fn empty_drain_renders_empty_documents() {
        let doc = chrome_trace(&[]);
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            0
        );
        assert_eq!(jsonl(&[]), "");
    }
}
