//! The report layer: tables for the experiment binaries, JSON documents
//! for machine-readable artifacts, and the algorithm×scenario sweep
//! behind `bench_report` and `mmvc bench`.
//!
//! Every experiment binary declares its sweep as [`RunSpec`]s, renders
//! rows through [`Table`] (one formatting code path, including the
//! substrate columns shared by every table), and — when `MMVC_JSON_DIR`
//! is set — writes a JSON sidecar of everything it printed via
//! [`write_experiment_sidecar`].

use crate::executor_from_env;
use crate::json::Json;
use mmvc_core::run::{run, AlgorithmKind, RunReport, RunSpec, SubstrateReport};
use mmvc_graph::scenarios;
use std::path::PathBuf;

/// Header labels for the substrate-derived columns every experiment
/// table shares, matching [`substrate_cells`].
pub const SUBSTRATE_COLUMNS: [&str; 4] =
    ["rounds", "claimed_rounds", "round_ratio", "max_load_words"];

/// The TSV cells for a substrate report, in [`SUBSTRATE_COLUMNS`] order.
pub fn substrate_cells(r: &SubstrateReport) -> Vec<String> {
    vec![
        r.rounds.to_string(),
        format!("{:.2}", r.claimed_rounds),
        format!("{:.2}", r.round_ratio()),
        r.max_load_words.to_string(),
    ]
}

/// One printable (and JSON-serializable) experiment table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table heading, printed as a `##` line and recorded in the sidecar.
    pub title: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table from a heading and column labels.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// A table whose columns are `before ++ SUBSTRATE_COLUMNS ++ after` —
    /// the shape of every claimed-vs-measured experiment table.
    pub fn with_substrate(title: &str, before: &[&str], after: &[&str]) -> Self {
        let mut columns: Vec<&str> = before.to_vec();
        columns.extend(SUBSTRATE_COLUMNS);
        columns.extend(after);
        Table::new(title, &columns)
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count disagrees with the column count — a
    /// declaration bug in the calling binary, caught loudly.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {} in table `{}`",
            cells.len(),
            self.columns.len(),
            self.title
        );
        self.rows.push(cells);
    }

    /// Prints the heading, TSV header, and rows to stdout.
    pub fn print(&self) {
        println!("## {}", self.title);
        println!("{}", self.columns.join("\t"));
        for row in &self.rows {
            println!("{}", row.join("\t"));
        }
    }

    /// The sidecar representation.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Arr(self.columns.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().cloned().map(Json::Str).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Serializes a [`RunReport`] (deterministic except `wall_ms`; zero it
/// first when byte-comparing).
pub fn report_json(r: &RunReport) -> Json {
    Json::obj(vec![
        ("algorithm", Json::Str(r.algorithm.name().to_string())),
        ("scenario", Json::Str(r.scenario.clone())),
        (
            "graph",
            Json::obj(vec![
                ("n", Json::Int(r.n as i64)),
                ("edges", Json::Int(r.num_edges as i64)),
                ("max_degree", Json::Int(r.max_degree as i64)),
            ]),
        ),
        ("eps", Json::Float(r.eps)),
        ("seed", Json::Int(r.seed as i64)),
        (
            "witnesses",
            Json::Arr(
                r.witnesses
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("kind", Json::Str(w.kind.to_string())),
                            ("size", Json::Int(w.size as i64)),
                            ("valid", Json::Bool(w.valid)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "substrate",
            Json::obj(vec![
                ("name", Json::Str(r.substrate.substrate.to_string())),
                ("rounds", Json::Int(r.substrate.rounds as i64)),
                ("claimed_rounds", Json::Float(r.substrate.claimed_rounds)),
                ("round_ratio", Json::Float(r.substrate.round_ratio())),
                (
                    "max_load_words",
                    Json::Int(r.substrate.max_load_words as i64),
                ),
                ("total_words", Json::Int(r.substrate.total_words as i64)),
                ("metered", Json::Bool(r.substrate.metered)),
            ]),
        ),
        (
            "metrics",
            Json::Obj(
                r.metrics
                    .iter()
                    .map(|(k, v)| (k.to_string(), metric_json(v)))
                    .collect(),
            ),
        ),
        (
            "trace",
            Json::Arr(
                r.trace
                    .per_round()
                    .iter()
                    .map(|s| {
                        Json::Arr(vec![
                            Json::Int(s.round as i64),
                            Json::Int(s.max_load_words as i64),
                            Json::Int(s.total_words as i64),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "budget_violations",
            Json::Arr(r.budget_violations.iter().cloned().map(Json::Str).collect()),
        ),
        ("wall_ms", Json::Float(r.wall_ms)),
    ])
}

fn metric_json(v: &mmvc_core::run::MetricValue) -> Json {
    use mmvc_core::run::MetricValue;
    match v {
        MetricValue::Int(x) => Json::Int(*x),
        MetricValue::Float(x) => Json::Float(*x),
        MetricValue::Flag(x) => Json::Bool(*x),
        MetricValue::Text(x) => Json::Str(x.clone()),
    }
}

/// The sidecar directory, from `MMVC_JSON_DIR` (unset = no sidecars).
pub fn sidecar_dir() -> Option<PathBuf> {
    std::env::var_os("MMVC_JSON_DIR").map(PathBuf::from)
}

/// Writes `<MMVC_JSON_DIR>/<stem>.json` capturing an experiment binary's
/// tables; a no-op returning `Ok(None)` when the variable is unset.
///
/// # Errors
///
/// Propagates filesystem errors (missing directory is created).
pub fn write_experiment_sidecar(stem: &str, tables: &[Table]) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = sidecar_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let doc = Json::obj(vec![
        ("experiment", Json::Str(stem.to_string())),
        (
            "tables",
            Json::Arr(tables.iter().map(Table::to_json).collect()),
        ),
    ]);
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, doc.render())?;
    Ok(Some(path))
}

/// Prints the tables and writes the sidecar — the tail of every
/// experiment binary.
///
/// # Panics
///
/// Panics if the sidecar write fails (an experiment run with
/// `MMVC_JSON_DIR` set must not silently drop its artifact).
pub fn finish_experiment(stem: &str, tables: &[Table]) {
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            println!();
        }
        t.print();
    }
    if let Some(path) = write_experiment_sidecar(stem, tables).expect("sidecar write failed") {
        eprintln!("wrote {}", path.display());
    }
}

/// One row of the algorithm×scenario sweep.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// The report, or the error string for configurations the substrate
    /// rejected (a finding, recorded rather than hidden).
    pub result: Result<RunReport, String>,
}

/// Sweep size used by `--smoke` (CI) runs.
const SMOKE_N: usize = 96;

/// The size cap applied to a scenario's default in the full sweep, per
/// algorithm family, keeping the whole sweep to CI-friendly minutes.
fn full_n_cap(kind: AlgorithmKind) -> usize {
    match kind {
        // Quadratic-ish tails (augmentation passes, per-iteration scans).
        AlgorithmKind::Central | AlgorithmKind::OnePlusEpsMatching => 2048,
        _ => 4096,
    }
}

/// Runs every [`AlgorithmKind`] against every **base-tier** scenario.
///
/// The scale tier (`scale-*`) is deliberately excluded — at its default
/// sizes it belongs to `bench_scale`, and re-running it capped to base
/// sizes would only duplicate base rows. Smoke mode shrinks all workloads
/// to tiny sizes (for CI); the full mode uses scenario defaults capped per
/// algorithm family. The executor comes from `MMVC_EXECUTOR` (see
/// [`executor_from_env`]).
pub fn bench_sweep(smoke: bool) -> Vec<SweepEntry> {
    let executor = executor_from_env();
    let mut entries = Vec::new();
    for kind in AlgorithmKind::ALL {
        for sc in scenarios::base() {
            let mut spec = RunSpec::new(kind, sc.name);
            spec.seed = 0xBE9C;
            spec.executor = executor.clone();
            spec.n = Some(if smoke {
                SMOKE_N
            } else {
                sc.default_n.min(full_n_cap(kind))
            });
            if smoke {
                // At n ~ 100 the `8n`-word budget is not meaningfully
                // "O(n)" and dense stress blocks can brush against it;
                // smoke checks the pipeline, not the asymptotic budget.
                spec.overrides.space_factor = Some(32.0);
            }
            let result = run(&spec).map_err(|e| e.to_string());
            entries.push(SweepEntry {
                algorithm: kind.name(),
                scenario: sc.name,
                result,
            });
        }
    }
    entries
}

/// Totals of one [`execute_sweep`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Reports produced (one per algorithm × scenario pair).
    pub reports: usize,
    /// Runs that errored or failed validation/budget. In smoke mode any
    /// failure should fail the caller; in the full mode a
    /// substrate-rejected pairing at scale is a finding to record, not
    /// an error — both `bench_report` and `mmvc bench` follow that rule.
    pub failures: usize,
}

/// Runs the sweep, logs one line per entry to stderr, writes the JSON
/// document to `out_path`, and returns the totals — the one code path
/// behind both `bench_report` and `mmvc bench`.
///
/// # Errors
///
/// Returns a message if the output file cannot be written.
pub fn execute_sweep(smoke: bool, out_path: &str) -> Result<SweepSummary, String> {
    let entries = bench_sweep(smoke);
    let mut failures = 0usize;
    for e in &entries {
        match &e.result {
            Ok(report) => {
                eprintln!(
                    "{:<18} {:<16} n={:<6} rounds={:<5} wall={:.1}ms{}",
                    e.algorithm,
                    e.scenario,
                    report.n,
                    report.substrate.rounds,
                    report.wall_ms,
                    if report.ok() {
                        ""
                    } else {
                        "  FAILED VALIDATION"
                    }
                );
                if !report.ok() {
                    failures += 1;
                }
            }
            Err(msg) => {
                eprintln!("{:<18} {:<16} ERROR: {msg}", e.algorithm, e.scenario);
                failures += 1;
            }
        }
    }
    let mode = if smoke { "smoke" } else { "full" };
    let doc = sweep_json(&entries, mode);
    std::fs::write(out_path, doc.render()).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!(
        "wrote {out_path} ({} reports, {failures} failures)",
        entries.len()
    );
    Ok(SweepSummary {
        reports: entries.len(),
        failures,
    })
}

/// Serializes a sweep into the `BENCH_run.json` document.
pub fn sweep_json(entries: &[SweepEntry], mode: &str) -> Json {
    Json::obj(vec![
        ("schema", Json::Str("mmvc-bench-run/v1".to_string())),
        ("mode", Json::Str(mode.to_string())),
        (
            "reports",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| match &e.result {
                        Ok(report) => report_json(report),
                        Err(msg) => Json::obj(vec![
                            ("algorithm", Json::Str(e.algorithm.to_string())),
                            ("scenario", Json::Str(e.scenario.to_string())),
                            ("error", Json::Str(msg.clone())),
                        ]),
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_substrate::{ExecutionTrace, RoundSummary};

    #[test]
    fn substrate_cells_match_columns() {
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 7,
            total_words: 20,
        });
        t.record(RoundSummary {
            round: 2,
            max_load_words: 3,
            total_words: 4,
        });
        let r = SubstrateReport::measure(&t, 4.0);
        assert_eq!(r.substrate, "trace");
        assert_eq!(r.rounds, 2);
        assert_eq!(r.max_load_words, 7);
        assert_eq!(r.total_words, 24);
        let cells = substrate_cells(&r);
        assert_eq!(cells.len(), SUBSTRATE_COLUMNS.len());
        assert_eq!(cells[0], "2");
        assert_eq!(cells[2], "0.50");
    }

    #[test]
    fn table_shapes_and_json() {
        let mut t = Table::with_substrate("demo", &["n"], &["extra"]);
        assert_eq!(t.columns.len(), 6);
        t.push(vec!["1".into(); 6]);
        let json = t.to_json().render();
        assert!(json.contains("\"demo\""));
        assert!(json.contains("\"claimed_rounds\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn report_json_is_deterministic_modulo_wall() {
        let spec = {
            let mut s = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-sparse");
            s.n = Some(96);
            s.seed = 5;
            s
        };
        let mut a = run(&spec).unwrap();
        let mut b = run(&spec).unwrap();
        a.wall_ms = 0.0;
        b.wall_ms = 0.0;
        assert_eq!(report_json(&a).render(), report_json(&b).render());
        let doc = report_json(&a).render();
        assert!(doc.contains("\"algorithm\": \"greedy-mis\""));
        assert!(doc.contains("\"witnesses\""));
        assert!(doc.contains("\"trace\""));
    }

    #[test]
    fn sweep_entry_and_json_shape() {
        // One cheap kind across all scenarios, built without bench_sweep:
        // that function reads MMVC_EXECUTOR, which executor_env_parsing
        // mutates concurrently in this test binary (the full sweep itself
        // is exercised by bench_report and the CI smoke job).
        let entries: Vec<SweepEntry> = scenarios::all()
            .iter()
            .map(|sc| {
                let mut spec = RunSpec::new(AlgorithmKind::LubyMis, sc.name);
                spec.n = Some(96);
                spec.seed = 0xBE9C;
                SweepEntry {
                    algorithm: AlgorithmKind::LubyMis.name(),
                    scenario: sc.name,
                    result: run(&spec).map_err(|e| e.to_string()),
                }
            })
            .collect();
        assert_eq!(entries.len(), scenarios::all().len());
        for e in &entries {
            let report = e.result.as_ref().expect("smoke run failed");
            assert!(report.ok(), "{} on {}", e.algorithm, e.scenario);
        }
        let doc = sweep_json(&entries, "smoke").render();
        assert!(doc.contains("\"schema\": \"mmvc-bench-run/v1\""));
        assert!(doc.contains("\"metered\""));
    }
}
