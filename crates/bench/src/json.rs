//! A minimal hand-rolled JSON document model, deterministic writer, and
//! strict reader.
//!
//! The vendored dependency shims carry no serde, so the harness writes
//! its machine-readable artifacts (`BENCH_run.json`, the per-experiment
//! sidecars, `mmvc run --json`) through this module instead. Rendering
//! is fully deterministic: objects keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats (which
//! JSON cannot represent) become `null`.
//!
//! [`Json::parse`] is the matching reader — a strict recursive-descent
//! parser over the same document model, used by `mmvc-serve` to decode
//! `POST /run` bodies and by the load generator to read responses. It
//! accepts exactly RFC 8259 documents (no trailing commas, no comments),
//! keeps object keys in document order (so `parse(render(x))` preserves
//! structure), and bounds nesting depth so adversarial request bodies
//! cannot overflow the stack.

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON numbers are decimal anyway).
    Int(i64),
    /// A float, rendered shortest-round-trip; non-finite renders `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for byte-stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders as a pretty-printed document (2-space indent, trailing
    /// newline) — byte-identical for equal values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders as a single-line document with no whitespace — the form
    /// used for content-addressed cache keys, where one value must map
    /// to exactly one byte string.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Int(_) | Json::Float(_) | Json::Str(_) => {
                self.write(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict RFC 8259: a single value followed
    /// only by whitespace).
    ///
    /// Numbers without a fraction or exponent that fit `i64` become
    /// [`Json::Int`]; every other number becomes [`Json::Float`]. Object
    /// keys keep document order and duplicates are rejected — a cache
    /// key must not have two spellings of the same document.
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] (with a byte offset) on any syntax error,
    /// nesting deeper than 128 levels, duplicate object keys, invalid
    /// escapes, or trailing garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use mmvc_bench::Json;
    /// let doc = Json::parse(r#"{"algorithm": "greedy-mis", "n": 256}"#)?;
    /// assert_eq!(doc.get("n").and_then(Json::as_i64), Some(256));
    /// # Ok::<(), mmvc_bench::json::JsonParseError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` ([`Json::Int`] only — floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (accepts [`Json::Int`] too, exactly as JSON
    /// offers one number type).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, in document/insertion order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips; ensure it
                    // still parses as a JSON number (no bare `1e5` issues:
                    // Rust emits `1e5` style only via {:e}, never {}).
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Deepest allowed nesting; request bodies come from the network, so the
/// parser must fail gracefully instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain bytes are copied as validated UTF-8.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is &str, so every byte run is valid UTF-8"),
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')
                                        .map_err(|_| self.err("expected low surrogate"))?;
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("unpaired low surrogate"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // A raw control byte (< 0x20) inside a string.
                Some(_) => return Err(self.err("unescaped control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII digits and punctuation");
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("unparseable number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Float(0.5).render(), "0.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\"\n"
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"\n");
    }

    #[test]
    fn renders_nested_deterministically() {
        let doc = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let expect = "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    null\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(doc.render(), expect);
        assert_eq!(doc.render(), doc.clone().render(), "byte stable");
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1, 1.0 / 3.0, 1e-9, 123456.789, -0.0] {
            let rendered = Json::Float(v).render();
            let parsed: f64 = rendered.trim().parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} did not round trip");
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("2E-2").unwrap(), Json::Float(0.02));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"a": [1, {"b": null}, 2.5], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(arr[2].as_f64(), Some(2.5));
        assert_eq!(doc.as_obj().unwrap().len(), 2);
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\tA\/""#).unwrap(),
            Json::Str("a\"b\\c\nd\tA/".into())
        );
        // Surrogate pair: 🎉 (U+1F389).
        assert_eq!(Json::parse(r#""🎉""#).unwrap(), Json::Str("🎉".into()));
        assert!(Json::parse(r#""\ud83c""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "invalid escape");
        assert!(Json::parse("\"raw\ncontrol\"").is_err(), "raw control");
        assert!(Json::parse("\"open").is_err(), "unterminated");
    }

    #[test]
    fn render_parse_round_trips() {
        let doc = Json::obj(vec![
            ("ints", Json::Arr(vec![Json::Int(i64::MAX), Json::Int(-1)])),
            ("f", Json::Float(1.0 / 3.0)),
            ("s", Json::Str("tab\there \u{1} 🎉".into())),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("nested", Json::obj(vec![("empty", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
    }

    #[test]
    fn compact_rendering_is_single_line_and_stable() {
        let doc = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(doc.render_compact(), r#"{"b":1,"a":[2,null]}"#);
        assert!(!doc.render_compact().contains('\n'));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "nul",
            "tru",
            "01",
            "1.",
            "1e",
            "-",
            "+1",
            "[1,]",
            "{\"a\":1,}",
            "\u{7f}",
            "1 2",
            "[1] x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn rejects_duplicate_keys_and_deep_nesting() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        // One past i64::MAX is still a valid JSON number.
        let v = Json::parse("9223372036854775808").unwrap();
        assert_eq!(v, Json::Float(9.223372036854776e18));
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
    }

    #[test]
    fn parse_error_reports_offset() {
        let err = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
