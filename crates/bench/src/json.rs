//! A minimal hand-rolled JSON document model and deterministic writer.
//!
//! The vendored dependency shims carry no serde, so the harness writes
//! its machine-readable artifacts (`BENCH_run.json`, the per-experiment
//! sidecars, `mmvc run --json`) through this module instead. Rendering
//! is fully deterministic: objects keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats (which
//! JSON cannot represent) become `null`.

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON numbers are decimal anyway).
    Int(i64),
    /// A float, rendered shortest-round-trip; non-finite renders `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for byte-stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders as a pretty-printed document (2-space indent, trailing
    /// newline) — byte-identical for equal values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips; ensure it
                    // still parses as a JSON number (no bare `1e5` issues:
                    // Rust emits `1e5` style only via {:e}, never {}).
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Float(0.5).render(), "0.5\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\"\n"
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"\n");
    }

    #[test]
    fn renders_nested_deterministically() {
        let doc = Json::obj(vec![
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let expect = "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    null\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(doc.render(), expect);
        assert_eq!(doc.render(), doc.clone().render(), "byte stable");
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1, 1.0 / 3.0, 1e-9, 123456.789, -0.0] {
            let rendered = Json::Float(v).render();
            let parsed: f64 = rendered.trim().parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} did not round trip");
        }
    }
}
