//! E10 — Theorem 1.1 in CONGESTED-CLIQUE + the Lenzen routing budget.
//!
//! Sweeps `n`, reporting total clique rounds against `log₂ log₂ Δ` and
//! the per-round inbound word maximum, which must stay at or below `n`
//! (the precondition of Lenzen's routing scheme — violating it would
//! abort the simulation). The budget is declared on the spec, so the
//! driver itself fails the run if routing ever exceeds `n` words.

use mmvc_bench::{executor_from_env, finish_experiment, substrate_cells, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::generators;

fn main() {
    println!("# E10: Theorem 1.1 in CONGESTED-CLIQUE (G(n, deg 64))");
    let mut table = Table::with_substrate(
        "sweep n",
        &["n", "maxdeg", "phases", "local_rounds"],
        &["inflow_budget"],
    );
    let executor = executor_from_env();
    for k in 9..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 64.0 / n as f64, k as u64).expect("valid p");
        let mut spec = RunSpec::new(AlgorithmKind::CliqueMis, "gnp");
        spec.seed = k as u64;
        spec.executor = executor.clone();
        spec.budget.max_load_words = Some(n);
        let report = run_on(&g, "gnp", &spec).expect("feasible routing");
        assert!(report.ok(), "witness or Lenzen budget failure");
        let mut cells = vec![
            n.to_string(),
            report.max_degree.to_string(),
            report.metric("prefix_phases").expect("emitted").to_string(),
            report.metric("local_rounds").expect("emitted").to_string(),
        ];
        cells.extend(substrate_cells(&report.substrate));
        cells.push(n.to_string());
        table.push(cells);
    }
    finish_experiment("exp_e10", &[table]);
}
