//! E10 — Theorem 1.1 in CONGESTED-CLIQUE + the Lenzen routing budget.
//!
//! Sweeps `n`, reporting total clique rounds against `log₂ log₂ Δ` and
//! the per-round inbound word maximum, which must stay at or below `n`
//! (the precondition of Lenzen's routing scheme — violating it would
//! abort the simulation).

use mmvc_bench::{executor_from_env, header, log_log2, row, SubstrateReport};
use mmvc_core::mis::{clique_mis, CliqueMisConfig};
use mmvc_graph::generators;

fn main() {
    println!("# E10: Theorem 1.1 in CONGESTED-CLIQUE (G(n, deg 64))");
    let mut cols = vec!["n", "maxdeg", "phases", "local_rounds"];
    cols.extend(SubstrateReport::COLUMNS);
    cols.push("inflow_budget");
    header(&cols);
    let executor = executor_from_env();
    for k in 9..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 64.0 / n as f64, k as u64).expect("valid p");
        let mut cfg = CliqueMisConfig::new(k as u64);
        cfg.executor = executor;
        let out = clique_mis(&g, &cfg).expect("feasible routing");
        assert!(out.mis.is_maximal(&g));
        let report = SubstrateReport::measure(&out.trace, log_log2(g.max_degree().max(4)));
        assert!(report.max_load_words <= n);
        let mut cells = vec![
            n.to_string(),
            g.max_degree().to_string(),
            out.prefix_phases.to_string(),
            out.local_rounds.to_string(),
        ];
        cells.extend(report.cells());
        cells.push(n.to_string());
        row(&cells);
    }
}
