//! E7 — Baseline comparison (paper §1.2): the paper's `O(log log)`
//! algorithms against the classical `O(log n)` baselines on shared
//! graphs.
//!
//! MIS: Theorem 1.1 simulation vs Luby. Matching: `MPC-Simulation` +
//! rounding rounds vs LMSV filtering rounds vs `Central`'s iteration
//! count (each `Central` iteration is at best one MPC round). Every
//! contender is one driver run on the shared graph.

use mmvc_bench::{ascii_chart, Table};
use mmvc_core::matching::ThresholdMode;
use mmvc_core::run::{run_on, AlgorithmKind, RunReport, RunSpec};
use mmvc_graph::{scenarios, Graph};

fn driver_run(g: &Graph, kind: AlgorithmKind, seed: u64, fixed_central: bool) -> RunReport {
    let mut spec = RunSpec::new(kind, "gnp-dense");
    spec.seed = seed;
    if fixed_central {
        spec.overrides.threshold_mode = Some(ThresholdMode::Fixed);
    }
    let report = run_on(g, "gnp-dense", &spec).expect("fits budget");
    assert!(report.ok(), "{kind} failed validation");
    report
}

fn main() {
    let scenario = scenarios::get("gnp-dense").expect("registered");

    println!("# E7a: MIS rounds — Theorem 1.1 vs Luby [Lub86]");
    let mut mis_table = Table::new(
        "MIS rounds vs n on gnp-dense",
        &["n", "maxdeg", "ours_rounds", "luby_rounds"],
    );
    let mut labels = Vec::new();
    let mut ours_series = Vec::new();
    let mut luby_series = Vec::new();
    for k in 10..=15 {
        let n = 1usize << k;
        let g = scenario.build_with(n, k as u64).expect("valid scenario");
        let ours = driver_run(&g, AlgorithmKind::GreedyMis, k as u64, false);
        let luby = driver_run(&g, AlgorithmKind::LubyMis, k as u64, false);
        mis_table.push(vec![
            n.to_string(),
            g.max_degree().to_string(),
            ours.substrate.rounds.to_string(),
            luby.substrate.rounds.to_string(),
        ]);
        labels.push(format!("2^{k}"));
        ours_series.push(ours.substrate.rounds as f64);
        luby_series.push(luby.substrate.rounds as f64);
    }
    mis_table.print();
    println!();
    println!("## Figure E7a: rounds vs n");
    print!(
        "{}",
        ascii_chart(
            &labels,
            &[("thm1.1", ours_series), ("luby", luby_series)],
            10,
        )
    );
    println!();

    println!("# E7b: matching rounds — Theorem 1.2 vs LMSV filtering vs Central iterations");
    let mut match_table = Table::new(
        "matching rounds vs n on gnp-dense",
        &[
            "n",
            "edges",
            "thm12_rounds",
            "filtering_rounds",
            "central_iterations",
        ],
    );
    for k in 10..=13 {
        let n = 1usize << k;
        let g = scenario
            .build_with(n, 70 + k as u64)
            .expect("valid scenario");
        let ours = driver_run(&g, AlgorithmKind::IntegralMatching, k as u64, false);
        let filt = driver_run(&g, AlgorithmKind::Filtering, k as u64, false);
        let cen = driver_run(&g, AlgorithmKind::Central, k as u64, true);
        match_table.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            ours.substrate.rounds.to_string(),
            filt.substrate.rounds.to_string(),
            cen.substrate.rounds.to_string(),
        ]);
    }
    match_table.print();
    // Tables were already printed interleaved with the figure; only the
    // sidecar remains.
    if let Some(path) =
        mmvc_bench::report::write_experiment_sidecar("exp_e7", &[mis_table, match_table])
            .expect("sidecar write failed")
    {
        eprintln!("wrote {}", path.display());
    }
}
