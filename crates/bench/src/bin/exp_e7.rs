//! E7 — Baseline comparison (paper §1.2): the paper's `O(log log)`
//! algorithms against the classical `O(log n)` baselines on shared
//! graphs.
//!
//! MIS: Theorem 1.1 simulation vs Luby. Matching: `MPC-Simulation` +
//! rounding rounds vs LMSV filtering rounds vs `Central`'s iteration
//! count (each `Central` iteration is at best one MPC round).

use mmvc_bench::{ascii_chart, header, row};
use mmvc_core::baselines::luby_mis;
use mmvc_core::filtering::{filtering_maximal_matching, FilteringConfig};
use mmvc_core::matching::{central, integral_matching, IntegralMatchingConfig};
use mmvc_core::mis::{greedy_mpc_mis, GreedyMisConfig};
use mmvc_core::Epsilon;
use mmvc_graph::generators;

fn main() {
    let eps = Epsilon::new(0.1).expect("valid eps");

    println!("# E7a: MIS rounds — Theorem 1.1 vs Luby [Lub86]");
    header(&["n", "maxdeg", "ours_rounds", "luby_rounds"]);
    let mut labels = Vec::new();
    let mut ours_series = Vec::new();
    let mut luby_series = Vec::new();
    for k in 10..=15 {
        let n = 1usize << k;
        let g = generators::gnp(n, 0.125, k as u64).expect("valid p");
        let ours = greedy_mpc_mis(&g, &GreedyMisConfig::new(k as u64)).expect("fits");
        let luby = luby_mis(&g, k as u64);
        row(&[
            n.to_string(),
            g.max_degree().to_string(),
            ours.trace.rounds().to_string(),
            luby.rounds.to_string(),
        ]);
        labels.push(format!("2^{k}"));
        ours_series.push(ours.trace.rounds() as f64);
        luby_series.push(luby.rounds as f64);
    }
    println!();
    println!("## Figure E7a: rounds vs n");
    print!(
        "{}",
        ascii_chart(
            &labels,
            &[("thm1.1", ours_series), ("luby", luby_series)],
            10,
        )
    );

    println!();
    println!("# E7b: matching rounds — Theorem 1.2 vs LMSV filtering vs Central iterations");
    header(&[
        "n",
        "edges",
        "thm12_rounds",
        "filtering_rounds",
        "central_iterations",
    ]);
    for k in 10..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 0.125, 70 + k as u64).expect("valid p");
        let ours = integral_matching(&g, &IntegralMatchingConfig::new(eps, k as u64))
            .expect("fits budget");
        let filt = filtering_maximal_matching(&g, &FilteringConfig::new(k as u64)).expect("fits");
        let cen = central(&g, eps);
        row(&[
            n.to_string(),
            g.num_edges().to_string(),
            ours.total_rounds.to_string(),
            filt.trace.rounds().to_string(),
            cen.iterations.to_string(),
        ]);
    }
}
