//! `bench_scale` — the million-vertex scale-tier benchmark.
//!
//! For every `scale-*` scenario in the registry, measures graph
//! construction (generator + counting-sort CSR build) under `Sequential`,
//! `Threaded{2}`, and `Threaded{4}` executors, **verifies the three graphs
//! are byte-identical** (the determinism contract of the parallel
//! builder), then times one `greedy-mis` run on the built graph. Results
//! go to stdout as a table and to `BENCH_scale.json`:
//!
//! ```text
//! cargo run --release -p mmvc-bench --bin bench_scale -- [--smoke] [--out PATH]
//! ```
//!
//! All four builds of a scenario share one [`ScratchPool`], and the run
//! reports the arena's allocation counters: `arena_cold_*` is what the
//! first (cold) build allocated, `arena_warm_*` is what a fourth, warm
//! rebuild allocated after the pool was primed — the scratch-arena
//! contract is that the warm numbers are ~0 (every counting/bucket/mark
//! buffer is reused), which is what makes repeated builds and the
//! serving daemon allocation-free after warm-up.
//!
//! In full mode the run also asserts the Theorem 1.1 shape at the 2²⁴
//! tier: greedy-MIS rounds at `scale-gnp-16m` must stay within a small
//! additive slack of the 2²⁰–2²¹ baselines (`O(log log Δ)` is flat in
//! `n` at fixed average degree).
//!
//! `--smoke` shrinks every scenario to `n = 2^17` (`2^18` for the `-16m`
//! tier, so its rows still exercise the chunked u32-packed paths in CI).
//! Unlike `bench_report`, *any* failure — construction divergence across
//! executors, a failed witness, a warm build that allocates like a cold
//! one — exits nonzero in both modes: a determinism break at scale is a
//! bug, never a finding to record.

use mmvc_bench::{Json, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::scenarios;
use mmvc_graph::Graph;
use mmvc_substrate::{ExecutorConfig, ScratchPool};
use std::process::ExitCode;
use std::time::Instant;

/// The smoke-mode size override (CI): big enough to exercise every
/// chunked code path, small enough for debug-friendly wall times.
const SMOKE_N: usize = 1 << 17;

/// Seed for every scale measurement (the tier is deterministic in it).
const SEED: u64 = 0x5CA1E;

/// Additive slack for the flat-rounds assertion: greedy-MIS substrate
/// rounds at the 2²⁴ tier may exceed the 2²⁰–2²¹ baseline by at most
/// this much (the sparsified stage's round cap grows with `log log n`).
const FLAT_ROUNDS_SLACK: usize = 3;

struct ScaleRow {
    scenario: &'static str,
    n: usize,
    edges: usize,
    max_degree: usize,
    build_ms_seq: f64,
    build_ms_t2: f64,
    build_ms_t4: f64,
    build_ms_warm: f64,
    speedup_t4: f64,
    byte_identical: bool,
    graph_mib: f64,
    arena_cold_allocs: u64,
    arena_cold_bytes: u64,
    arena_warm_allocs: u64,
    arena_warm_bytes: u64,
    arena_warm_reuses: u64,
    arena_warm_reused_bytes: u64,
    algorithm: &'static str,
    algo_wall_ms: f64,
    algo_rounds: usize,
    algo_ok: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_scale [--smoke] [--out PATH]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_scale.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out_path = v.clone();
                    i += 2;
                }
                _ => {
                    eprintln!("error: --out requires a path value");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut failed = false;

    for sc in scenarios::scale_tier() {
        let n = if smoke {
            // The 16M tier keeps a larger smoke size so CI still drives
            // the multi-chunk u32-packed paths it exists to cover.
            if sc.name.ends_with("-16m") {
                SMOKE_N * 2
            } else {
                SMOKE_N
            }
        } else {
            sc.default_n
        };
        // All builds of this scenario share one arena: the first build is
        // the cold measurement, the later ones run against a primed pool.
        let pool = ScratchPool::new();
        let executors = [
            ("seq", ExecutorConfig::sequential().with_scratch(&pool)),
            ("t2", ExecutorConfig::with_threads(2).with_scratch(&pool)),
            ("t4", ExecutorConfig::with_threads(4).with_scratch(&pool)),
        ];
        // Build under each executor; keep the sequential graph as the
        // reference, compare the others byte-for-byte (CSR arrays).
        let mut reference: Option<Graph> = None;
        let mut build_ms = [0.0f64; 3];
        let mut byte_identical = true;
        let mut cold = (0u64, 0u64);
        for (slot, (label, exec)) in executors.iter().enumerate() {
            let start = Instant::now();
            let g = match sc.build_with_exec(n, SEED, exec) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{}: build failed under {label}: {e}", sc.name);
                    return ExitCode::FAILURE;
                }
            };
            build_ms[slot] = start.elapsed().as_secs_f64() * 1e3;
            if slot == 0 {
                let s = pool.stats();
                cold = (s.allocations, s.allocated_bytes);
            }
            match &reference {
                None => reference = Some(g),
                Some(r) => {
                    if g != *r {
                        eprintln!(
                            "{}: graph diverged under {label} — determinism break",
                            sc.name
                        );
                        byte_identical = false;
                        failed = true;
                    }
                }
            }
        }
        // Warm rebuild against the primed arena: the allocation counters
        // of this build are the scratch-pool headline (~0 fresh bytes).
        pool.reset_stats();
        let start = Instant::now();
        let warm_graph = sc
            .build_with_exec(n, SEED, &executors[0].1)
            .expect("warm rebuild of a graph that just built");
        let build_ms_warm = start.elapsed().as_secs_f64() * 1e3;
        let warm = pool.stats();
        let g = reference.expect("sequential build recorded");
        if warm_graph != g {
            eprintln!("{}: warm rebuild diverged — determinism break", sc.name);
            byte_identical = false;
            failed = true;
        }
        drop(warm_graph);

        // One algorithm pass on the built graph: the headline MIS kind,
        // on the widest executor measured above (sharing the arena).
        let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, sc.name);
        spec.seed = SEED;
        spec.executor = ExecutorConfig::with_threads(4).with_scratch(&pool);
        let (algo_wall_ms, algo_rounds, algo_ok) = match run_on(&g, sc.name, &spec) {
            Ok(report) => (report.wall_ms, report.substrate.rounds, report.ok()),
            Err(e) => {
                eprintln!("{}: greedy-mis failed: {e}", sc.name);
                (f64::NAN, 0, false)
            }
        };
        if !algo_ok {
            failed = true;
        }

        let row = ScaleRow {
            scenario: sc.name,
            n: g.num_vertices(),
            edges: g.num_edges(),
            max_degree: g.max_degree(),
            build_ms_seq: build_ms[0],
            build_ms_t2: build_ms[1],
            build_ms_t4: build_ms[2],
            build_ms_warm,
            speedup_t4: build_ms[0] / build_ms[2].max(1e-9),
            byte_identical,
            graph_mib: g.memory_bytes() as f64 / (1024.0 * 1024.0),
            arena_cold_allocs: cold.0,
            arena_cold_bytes: cold.1,
            arena_warm_allocs: warm.allocations,
            arena_warm_bytes: warm.allocated_bytes,
            arena_warm_reuses: warm.reuses,
            arena_warm_reused_bytes: warm.reused_bytes,
            algorithm: "greedy-mis",
            algo_wall_ms,
            algo_rounds,
            algo_ok,
        };
        // The arena contract: a warm rebuild must allocate at least 10×
        // less than the cold build did (in practice it allocates ~0).
        if row.arena_cold_allocs > 0 && 10 * row.arena_warm_allocs > row.arena_cold_allocs {
            eprintln!(
                "{}: warm rebuild allocated {} buffers vs {} cold — arena not reused",
                sc.name, row.arena_warm_allocs, row.arena_cold_allocs
            );
            failed = true;
        }
        eprintln!(
            "{:<20} n={:<8} m={:<9} build seq={:.0}ms t4={:.0}ms warm={:.0}ms \
             arena cold={}B warm={}B mis={:.0}ms",
            row.scenario,
            row.n,
            row.edges,
            row.build_ms_seq,
            row.build_ms_t4,
            row.build_ms_warm,
            row.arena_cold_bytes,
            row.arena_warm_bytes,
            row.algo_wall_ms
        );
        rows.push(row);
    }

    // Flat-rounds assertion (full mode): Theorem 1.1 rounds are
    // O(log log Δ) — at fixed average degree the 2²⁴ tier must sit within
    // additive slack of the 2²⁰–2²¹ baseline.
    if !smoke {
        let rounds_of = |name: &str| {
            rows.iter()
                .find(|r| r.scenario == name && r.algo_ok)
                .map(|r| r.algo_rounds)
        };
        match (
            rounds_of("scale-gnp-16m"),
            rounds_of("scale-gnp-1m"),
            rounds_of("scale-gnp-2m"),
        ) {
            (Some(big), Some(base1), Some(base2)) => {
                let baseline = base1.max(base2);
                if big > baseline + FLAT_ROUNDS_SLACK {
                    eprintln!(
                        "flat-rounds violation: scale-gnp-16m took {big} rounds vs \
                         baseline {baseline} (+{FLAT_ROUNDS_SLACK} slack)"
                    );
                    failed = true;
                } else {
                    eprintln!("flat-rounds ok: scale-gnp-16m {big} rounds vs baseline {baseline}");
                }
            }
            _ => {
                eprintln!("flat-rounds assertion skipped: missing a gnp tier row");
                failed = true;
            }
        }
    }

    let mut table = Table::new(
        if smoke {
            "scale tier (smoke, n = 2^17 / 2^18)"
        } else {
            "scale tier"
        },
        &[
            "scenario",
            "n",
            "edges",
            "max_degree",
            "build_ms_seq",
            "build_ms_t2",
            "build_ms_t4",
            "build_ms_warm",
            "speedup_t4",
            "byte_identical",
            "graph_mib",
            "arena_cold_bytes",
            "arena_warm_bytes",
            "algo_wall_ms",
            "algo_rounds",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.to_string(),
            r.n.to_string(),
            r.edges.to_string(),
            r.max_degree.to_string(),
            format!("{:.1}", r.build_ms_seq),
            format!("{:.1}", r.build_ms_t2),
            format!("{:.1}", r.build_ms_t4),
            format!("{:.1}", r.build_ms_warm),
            format!("{:.2}", r.speedup_t4),
            r.byte_identical.to_string(),
            format!("{:.1}", r.graph_mib),
            r.arena_cold_bytes.to_string(),
            r.arena_warm_bytes.to_string(),
            format!("{:.1}", r.algo_wall_ms),
            r.algo_rounds.to_string(),
        ]);
    }
    table.print();

    let doc = Json::obj(vec![
        ("schema", Json::Str("mmvc-bench-scale/v2".to_string())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "host_parallelism",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|p| p.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::Str(r.scenario.to_string())),
                            ("n", Json::Int(r.n as i64)),
                            ("edges", Json::Int(r.edges as i64)),
                            ("max_degree", Json::Int(r.max_degree as i64)),
                            ("build_ms_seq", Json::Float(r.build_ms_seq)),
                            ("build_ms_t2", Json::Float(r.build_ms_t2)),
                            ("build_ms_t4", Json::Float(r.build_ms_t4)),
                            ("build_ms_warm", Json::Float(r.build_ms_warm)),
                            ("speedup_t4", Json::Float(r.speedup_t4)),
                            ("byte_identical", Json::Bool(r.byte_identical)),
                            ("graph_mib", Json::Float(r.graph_mib)),
                            ("arena_cold_allocs", Json::Int(r.arena_cold_allocs as i64)),
                            ("arena_cold_bytes", Json::Int(r.arena_cold_bytes as i64)),
                            ("arena_warm_allocs", Json::Int(r.arena_warm_allocs as i64)),
                            ("arena_warm_bytes", Json::Int(r.arena_warm_bytes as i64)),
                            ("arena_warm_reuses", Json::Int(r.arena_warm_reuses as i64)),
                            (
                                "arena_warm_reused_bytes",
                                Json::Int(r.arena_warm_reused_bytes as i64),
                            ),
                            ("algorithm", Json::Str(r.algorithm.to_string())),
                            ("algo_wall_ms", Json::Float(r.algo_wall_ms)),
                            ("algo_rounds", Json::Int(r.algo_rounds as i64)),
                            ("algo_ok", Json::Bool(r.algo_ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());

    if failed {
        eprintln!("error: scale tier had failures (see above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
