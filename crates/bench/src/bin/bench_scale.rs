//! `bench_scale` — the million-vertex scale-tier benchmark.
//!
//! For every `scale-*` scenario in the registry, measures graph
//! construction (generator + counting-sort CSR build) under `Sequential`,
//! `Threaded{2}`, and `Threaded{4}` executors, **verifies the three graphs
//! are byte-identical** (the determinism contract of the parallel
//! builder), then times one `greedy-mis` run on the built graph. Results
//! go to stdout as a table and to `BENCH_scale.json`:
//!
//! ```text
//! cargo run --release -p mmvc-bench --bin bench_scale -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks every scenario to `n = 2^17` (the CI mode). Unlike
//! `bench_report`, *any* failure — construction divergence across
//! executors, a failed witness — exits nonzero in both modes: a
//! determinism break at scale is a bug, never a finding to record.

use mmvc_bench::{Json, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::scenarios;
use mmvc_graph::Graph;
use mmvc_substrate::ExecutorConfig;
use std::process::ExitCode;
use std::time::Instant;

/// The smoke-mode size override (CI): big enough to exercise every
/// chunked code path, small enough for debug-friendly wall times.
const SMOKE_N: usize = 1 << 17;

/// Seed for every scale measurement (the tier is deterministic in it).
const SEED: u64 = 0x5CA1E;

struct ScaleRow {
    scenario: &'static str,
    n: usize,
    edges: usize,
    max_degree: usize,
    build_ms_seq: f64,
    build_ms_t2: f64,
    build_ms_t4: f64,
    speedup_t4: f64,
    byte_identical: bool,
    graph_mib: f64,
    algorithm: &'static str,
    algo_wall_ms: f64,
    algo_rounds: usize,
    algo_ok: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_scale [--smoke] [--out PATH]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_scale.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out_path = v.clone();
                    i += 2;
                }
                _ => {
                    eprintln!("error: --out requires a path value");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let executors = [
        ("seq", ExecutorConfig::sequential()),
        ("t2", ExecutorConfig::with_threads(2)),
        ("t4", ExecutorConfig::with_threads(4)),
    ];
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut failed = false;

    for sc in scenarios::scale_tier() {
        let n = if smoke { SMOKE_N } else { sc.default_n };
        // Build under each executor; keep the sequential graph as the
        // reference, compare the others byte-for-byte (CSR arrays).
        let mut reference: Option<Graph> = None;
        let mut build_ms = [0.0f64; 3];
        let mut byte_identical = true;
        for (slot, (label, exec)) in executors.iter().enumerate() {
            let start = Instant::now();
            let g = match sc.build_with_exec(n, SEED, exec) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{}: build failed under {label}: {e}", sc.name);
                    return ExitCode::FAILURE;
                }
            };
            build_ms[slot] = start.elapsed().as_secs_f64() * 1e3;
            match &reference {
                None => reference = Some(g),
                Some(r) => {
                    if g != *r {
                        eprintln!(
                            "{}: graph diverged under {label} — determinism break",
                            sc.name
                        );
                        byte_identical = false;
                        failed = true;
                    }
                }
            }
        }
        let g = reference.expect("sequential build recorded");

        // One algorithm pass on the built graph: the headline MIS kind,
        // on the widest executor measured above.
        let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, sc.name);
        spec.seed = SEED;
        spec.executor = ExecutorConfig::with_threads(4);
        let (algo_wall_ms, algo_rounds, algo_ok) = match run_on(&g, sc.name, &spec) {
            Ok(report) => (report.wall_ms, report.substrate.rounds, report.ok()),
            Err(e) => {
                eprintln!("{}: greedy-mis failed: {e}", sc.name);
                (f64::NAN, 0, false)
            }
        };
        if !algo_ok {
            failed = true;
        }

        let row = ScaleRow {
            scenario: sc.name,
            n: g.num_vertices(),
            edges: g.num_edges(),
            max_degree: g.max_degree(),
            build_ms_seq: build_ms[0],
            build_ms_t2: build_ms[1],
            build_ms_t4: build_ms[2],
            speedup_t4: build_ms[0] / build_ms[2].max(1e-9),
            byte_identical,
            graph_mib: g.memory_bytes() as f64 / (1024.0 * 1024.0),
            algorithm: "greedy-mis",
            algo_wall_ms,
            algo_rounds,
            algo_ok,
        };
        eprintln!(
            "{:<20} n={:<8} m={:<9} build seq={:.0}ms t4={:.0}ms (x{:.2}) mis={:.0}ms",
            row.scenario,
            row.n,
            row.edges,
            row.build_ms_seq,
            row.build_ms_t4,
            row.speedup_t4,
            row.algo_wall_ms
        );
        rows.push(row);
    }

    let mut table = Table::new(
        if smoke {
            "scale tier (smoke, n = 2^17)"
        } else {
            "scale tier"
        },
        &[
            "scenario",
            "n",
            "edges",
            "max_degree",
            "build_ms_seq",
            "build_ms_t2",
            "build_ms_t4",
            "speedup_t4",
            "byte_identical",
            "graph_mib",
            "algo_wall_ms",
            "algo_rounds",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.to_string(),
            r.n.to_string(),
            r.edges.to_string(),
            r.max_degree.to_string(),
            format!("{:.1}", r.build_ms_seq),
            format!("{:.1}", r.build_ms_t2),
            format!("{:.1}", r.build_ms_t4),
            format!("{:.2}", r.speedup_t4),
            r.byte_identical.to_string(),
            format!("{:.1}", r.graph_mib),
            format!("{:.1}", r.algo_wall_ms),
            r.algo_rounds.to_string(),
        ]);
    }
    table.print();

    let doc = Json::obj(vec![
        ("schema", Json::Str("mmvc-bench-scale/v1".to_string())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "host_parallelism",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|p| p.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::Str(r.scenario.to_string())),
                            ("n", Json::Int(r.n as i64)),
                            ("edges", Json::Int(r.edges as i64)),
                            ("max_degree", Json::Int(r.max_degree as i64)),
                            ("build_ms_seq", Json::Float(r.build_ms_seq)),
                            ("build_ms_t2", Json::Float(r.build_ms_t2)),
                            ("build_ms_t4", Json::Float(r.build_ms_t4)),
                            ("speedup_t4", Json::Float(r.speedup_t4)),
                            ("byte_identical", Json::Bool(r.byte_identical)),
                            ("graph_mib", Json::Float(r.graph_mib)),
                            ("algorithm", Json::Str(r.algorithm.to_string())),
                            ("algo_wall_ms", Json::Float(r.algo_wall_ms)),
                            ("algo_rounds", Json::Int(r.algo_rounds as i64)),
                            ("algo_ok", Json::Bool(r.algo_ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());

    if failed {
        eprintln!("error: scale tier had failures (see above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
