//! E8 — Lemmas 4.11/4.15: how far the distributed estimates stray from
//! the coupled `Central-Rand` reference.
//!
//! Reports the bad-vertex fraction (Definition 4.9, measured at phase
//! ends), the maximum observed `|y − ỹ|`, and the fraction of vertices
//! removed for exceeding weight 1 (line (i) — the escape hatch for
//! estimate failures). The estimate noise scales like `~0.7·d^(-1/4)`,
//! so all three should shrink as the graphs grow. One driver run per
//! size with the diagnostics override.

use mmvc_bench::{finish_experiment, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::generators;

fn main() {
    println!("# E8: estimate fidelity vs scale (eps = 0.1, G(n, 0.2))");
    let mut table = Table::new(
        "sweep n",
        &[
            "n",
            "maxdeg",
            "phases",
            "compared",
            "bad_fraction",
            "max_est_error",
            "noise_model",
            "removed_fraction",
        ],
    );
    for k in 9..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 0.2, k as u64).expect("valid p");
        let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp");
        spec.seed = k as u64;
        spec.overrides.diagnostics = true;
        let report = run_on(&g, "gnp", &spec).expect("fits budget");
        assert!(report.ok(), "cover must cover");
        let d = report.max_degree as f64;
        let removed = report.metric_f64("removed").expect("emitted");
        table.push(vec![
            n.to_string(),
            report.max_degree.to_string(),
            report.metric("phases").expect("emitted").to_string(),
            report
                .metric("compared_vertices")
                .expect("diagnostics requested")
                .to_string(),
            format!("{:.4}", report.metric_f64("bad_fraction").expect("emitted")),
            format!(
                "{:.4}",
                report.metric_f64("max_estimate_error").expect("emitted")
            ),
            format!("{:.4}", 0.7 * d.powf(-0.25)),
            format!("{:.4}", removed / n as f64),
        ]);
    }
    finish_experiment("exp_e8", &[table]);
}
