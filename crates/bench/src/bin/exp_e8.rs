//! E8 — Lemmas 4.11/4.15: how far the distributed estimates stray from
//! the coupled `Central-Rand` reference.
//!
//! Reports the bad-vertex fraction (Definition 4.9, measured at phase
//! ends), the maximum observed `|y − ỹ|`, and the fraction of vertices
//! removed for exceeding weight 1 (line (i) — the escape hatch for
//! estimate failures). The estimate noise scales like `~0.7·d^(-1/4)`,
//! so all three should shrink as the graphs grow.

use mmvc_bench::{header, row};
use mmvc_core::matching::{mpc_simulation, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::generators;

fn main() {
    println!("# E8: estimate fidelity vs scale (eps = 0.1, G(n, 0.2))");
    header(&[
        "n",
        "maxdeg",
        "phases",
        "compared",
        "bad_fraction",
        "max_est_error",
        "noise_model",
        "removed_fraction",
    ]);
    let eps = Epsilon::new(0.1).expect("valid eps");
    for k in 9..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 0.2, k as u64).expect("valid p");
        let mut cfg = MpcMatchingConfig::new(eps, k as u64);
        cfg.diagnostics = true;
        let out = mpc_simulation(&g, &cfg).expect("fits budget");
        let diag = out.diagnostics.expect("requested");
        let removed = out.removed.iter().filter(|&&r| r).count();
        let d = g.max_degree() as f64;
        row(&[
            n.to_string(),
            g.max_degree().to_string(),
            out.phases.to_string(),
            diag.compared_vertices.to_string(),
            format!("{:.4}", diag.bad_fraction()),
            format!("{:.4}", diag.max_estimate_error),
            format!("{:.4}", 0.7 * d.powf(-0.25)),
            format!("{:.4}", removed as f64 / n as f64),
        ]);
    }
}
