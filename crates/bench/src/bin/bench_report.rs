//! `bench_report` — the algorithm×scenario sweep behind the perf
//! trajectory.
//!
//! Runs every [`mmvc_core::run::AlgorithmKind`] against every registered
//! scenario through the run driver and writes the reports (including
//! wall-time) as `BENCH_run.json`:
//!
//! ```text
//! cargo run --release -p mmvc-bench --bin bench_report -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks every workload to tiny sizes (the CI mode; exits
//! nonzero if any run fails validation or errors). The full mode records
//! substrate-rejected configurations as error rows instead of failing —
//! an infeasible (algorithm, scenario) pairing at scale is a finding to
//! keep, not to hide. `mmvc bench` drives the same
//! [`mmvc_bench::execute_sweep`] code path with the same semantics.

use mmvc_bench::execute_sweep;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_report [--smoke] [--out PATH]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_run.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out_path = v.clone();
                    i += 2;
                }
                _ => {
                    eprintln!("error: --out requires a path value");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let summary = match execute_sweep(smoke, &out_path) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if smoke && summary.failures > 0 {
        eprintln!(
            "error: smoke sweep must be clean, got {} failures",
            summary.failures
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
