//! E6 — Corollary 1.3: `(1+ε)`-approximate maximum matching.
//!
//! Sweeps `ε` on bipartite and general graphs through the run driver,
//! reporting the measured ratio against the exact optimum (Hopcroft–Karp
//! / blossom) and the augmentation effort.

use mmvc_bench::{approx_ratio, finish_experiment, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching, Graph};

fn run_row(table: &mut Table, label: &str, g: &Graph, opt: f64, eps_v: f64, seed: u64) {
    let mut spec = RunSpec::new(AlgorithmKind::OnePlusEpsMatching, label);
    spec.eps = Epsilon::new(eps_v).expect("valid eps");
    spec.seed = seed;
    let report = run_on(g, label, &spec).expect("runs");
    assert!(report.ok(), "matching must validate");
    let matched = report.witnesses[0].size;
    table.push(vec![
        label.to_string(),
        g.num_vertices().to_string(),
        format!("{eps_v}"),
        report.metric("path_limit").expect("emitted").to_string(),
        matched.to_string(),
        format!("{opt:.0}"),
        format!("{:.4}", approx_ratio(opt, matched as f64)),
        format!("{:.2}", 1.0 + eps_v),
        report.metric("passes").expect("emitted").to_string(),
    ]);
}

fn main() {
    println!("# E6: Corollary 1.3 — (1+eps) matching vs exact optimum");
    let mut table = Table::new(
        "sweep eps on bipartite and general graphs",
        &[
            "graph",
            "n",
            "eps",
            "path_limit",
            "matched",
            "optimum",
            "ratio",
            "claimed",
            "passes",
        ],
    );
    for (i, eps_v) in [0.1, 0.05, 0.02].into_iter().enumerate() {
        let seed = 60 + i as u64;

        let bip = generators::bipartite_gnp(1024, 1024, 12.0 / 1024.0, seed).expect("valid p");
        let opt = matching::hopcroft_karp(&bip).expect("bipartite").len() as f64;
        run_row(&mut table, "bipartite", &bip, opt, eps_v, seed);

        let gen = generators::gnp(1500, 14.0 / 1500.0, seed ^ 0xF00).expect("valid p");
        let opt = matching::blossom(&gen).len() as f64;
        run_row(&mut table, "general", &gen, opt, eps_v, seed);
    }
    finish_experiment("exp_e6", &[table]);
}
