//! E6 — Corollary 1.3: `(1+ε)`-approximate maximum matching.
//!
//! Sweeps `ε` on bipartite and general graphs, reporting the measured
//! ratio against the exact optimum (Hopcroft–Karp / blossom) and the
//! augmentation effort.

use mmvc_bench::{approx_ratio, header, row};
use mmvc_core::matching::{one_plus_eps_matching, AugmentConfig};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn main() {
    println!("# E6: Corollary 1.3 — (1+eps) matching vs exact optimum");
    header(&[
        "graph",
        "n",
        "eps",
        "path_limit",
        "matched",
        "optimum",
        "ratio",
        "claimed",
        "passes",
    ]);
    for (i, eps_v) in [0.1, 0.05, 0.02].into_iter().enumerate() {
        let eps = Epsilon::new(eps_v).expect("valid eps");
        let seed = 60 + i as u64;

        let bip = generators::bipartite_gnp(1024, 1024, 12.0 / 1024.0, seed).expect("valid p");
        let out = one_plus_eps_matching(&bip, &AugmentConfig::new(eps, seed)).expect("runs");
        let opt = matching::hopcroft_karp(&bip).expect("bipartite").len() as f64;
        row(&[
            "bipartite".into(),
            bip.num_vertices().to_string(),
            format!("{eps_v}"),
            out.path_limit.to_string(),
            out.matching.len().to_string(),
            format!("{opt:.0}"),
            format!("{:.4}", approx_ratio(opt, out.matching.len() as f64)),
            format!("{:.2}", 1.0 + eps_v),
            out.passes.to_string(),
        ]);

        let gen = generators::gnp(1500, 14.0 / 1500.0, seed ^ 0xF00).expect("valid p");
        let out = one_plus_eps_matching(&gen, &AugmentConfig::new(eps, seed)).expect("runs");
        let opt = matching::blossom(&gen).len() as f64;
        row(&[
            "general".into(),
            gen.num_vertices().to_string(),
            format!("{eps_v}"),
            out.path_limit.to_string(),
            out.matching.len().to_string(),
            format!("{opt:.0}"),
            format!("{:.4}", approx_ratio(opt, out.matching.len() as f64)),
            format!("{:.2}", 1.0 + eps_v),
            out.passes.to_string(),
        ]);
    }
}
