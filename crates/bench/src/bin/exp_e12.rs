//! E12 (ablation) — the `m = √d` machine count.
//!
//! The paper partitions each phase over `m = √d` machines so that every
//! machine's induced subgraph has `O(n)` edges (Lemma 4.7). The estimate
//! noise scales like `√(m/deg)`, so more machines mean cheaper memory but
//! noisier estimates. This ablation sweeps a multiplier `c` in
//! `m = c·√d` (the `machine_factor` override), reporting estimate
//! fidelity and the per-machine memory high-water mark — the two sides
//! of the trade-off the paper's choice balances.

use mmvc_bench::{finish_experiment, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::generators;

fn main() {
    println!("# E12: machine-count ablation, m = c·sqrt(d)  (n = 4096, G(n, 0.2))");
    let mut table = Table::new(
        "machine-count ablation",
        &[
            "c",
            "bad_fraction",
            "max_est_error",
            "removed",
            "max_load_words",
            "budget",
            "frac_weight",
        ],
    );
    let n = 4096;
    let g = generators::gnp(n, 0.2, 12).expect("valid p");
    for c in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp");
        spec.seed = 12;
        spec.overrides.diagnostics = true;
        spec.overrides.machine_factor = Some(c);
        // Give the small-m settings the memory they need so the ablation
        // isolates the noise effect.
        let space_factor = 64.0 / c.min(1.0);
        spec.overrides.space_factor = Some(space_factor);
        let report = run_on(&g, "gnp", &spec).expect("fits budget");
        assert!(report.ok(), "cover must cover");
        table.push(vec![
            format!("{c}"),
            format!("{:.4}", report.metric_f64("bad_fraction").expect("emitted")),
            format!(
                "{:.4}",
                report.metric_f64("max_estimate_error").expect("emitted")
            ),
            report.metric("removed").expect("emitted").to_string(),
            report.substrate.max_load_words.to_string(),
            ((space_factor * n as f64) as usize).to_string(),
            format!("{:.1}", report.metric_f64("frac_weight").expect("emitted")),
        ]);
    }
    finish_experiment("exp_e12", &[table]);
}
