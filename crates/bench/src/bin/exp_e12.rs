//! E12 (ablation) — the `m = √d` machine count.
//!
//! The paper partitions each phase over `m = √d` machines so that every
//! machine's induced subgraph has `O(n)` edges (Lemma 4.7). The estimate
//! noise scales like `√(m/deg)`, so more machines mean cheaper memory but
//! noisier estimates. This ablation sweeps a multiplier `c` in
//! `m = c·√d`, reporting estimate fidelity and the per-machine memory
//! high-water mark — the two sides of the trade-off the paper's choice
//! balances.

use mmvc_bench::{header, row};
use mmvc_core::matching::{mpc_simulation, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::generators;

fn main() {
    println!("# E12: machine-count ablation, m = c·sqrt(d)  (n = 4096, G(n, 0.2))");
    header(&[
        "c",
        "bad_fraction",
        "max_est_error",
        "removed",
        "max_load_words",
        "budget",
        "frac_weight",
    ]);
    let eps = Epsilon::new(0.1).expect("valid eps");
    let n = 4096;
    let g = generators::gnp(n, 0.2, 12).expect("valid p");
    for c in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = MpcMatchingConfig::new(eps, 12);
        cfg.diagnostics = true;
        cfg.machine_factor = c;
        // Give the small-m settings the memory they need so the ablation
        // isolates the noise effect.
        cfg.space_factor = 64.0 / c.min(1.0);
        let out = mpc_simulation(&g, &cfg).expect("fits budget");
        let diag = out.diagnostics.expect("requested");
        let removed = out.removed.iter().filter(|&&r| r).count();
        row(&[
            format!("{c}"),
            format!("{:.4}", diag.bad_fraction()),
            format!("{:.4}", diag.max_estimate_error),
            removed.to_string(),
            out.trace.max_load_words().to_string(),
            ((cfg.space_factor * n as f64) as usize).to_string(),
            format!("{:.1}", out.fractional.weight()),
        ]);
    }
}
