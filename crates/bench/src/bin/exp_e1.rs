//! E1 — Theorem 1.1: MIS in `O(log log Δ)` MPC rounds.
//!
//! Sweeps `n` at (roughly) fixed average degree and sweeps `Δ` at fixed
//! `n`, reporting prefix phases, sparsified-stage rounds, and total MPC
//! rounds against the `log₂ log₂ Δ` reference curve.

use mmvc_bench::{executor_from_env, header, log_log2, row, SubstrateReport};
use mmvc_core::mis::{greedy_mpc_mis, GreedyMisConfig};
use mmvc_graph::generators;

fn run(n: usize, avg_deg: f64, seed: u64) {
    let p = (avg_deg / (n as f64 - 1.0)).min(1.0);
    let g = generators::gnp(n, p, seed).expect("valid p");
    let mut cfg = GreedyMisConfig::new(seed);
    cfg.executor = executor_from_env();
    let out = greedy_mpc_mis(&g, &cfg).expect("simulation fits budget");
    assert!(out.mis.is_maximal(&g));
    let report = SubstrateReport::measure(&out.trace, log_log2(g.max_degree().max(4)));
    let mut cells = vec![
        n.to_string(),
        g.num_edges().to_string(),
        g.max_degree().to_string(),
        out.prefix_phases.to_string(),
        out.local_rounds.to_string(),
    ];
    cells.extend(report.cells());
    cells.push(out.mis.len().to_string());
    row(&cells);
}

fn sweep_header() {
    let mut cols = vec!["n", "edges", "maxdeg", "phases", "local_rounds"];
    cols.extend(SubstrateReport::COLUMNS);
    cols.push("mis");
    header(&cols);
}

fn main() {
    println!("# E1: Theorem 1.1 — MIS rounds vs n and Δ (MPC, practical schedule)");
    println!("## sweep n at average degree 64");
    sweep_header();
    for k in 10..=16 {
        run(1 << k, 64.0, k as u64);
    }
    println!();
    println!("## sweep Δ at n = 16384");
    sweep_header();
    for (i, deg) in [16.0, 64.0, 256.0, 1024.0, 4096.0].into_iter().enumerate() {
        run(16384, deg, 100 + i as u64);
    }
}
