//! E1 — Theorem 1.1: MIS in `O(log log Δ)` MPC rounds.
//!
//! Sweeps `n` at (roughly) fixed average degree and sweeps `Δ` at fixed
//! `n`, reporting prefix phases, sparsified-stage rounds, and total MPC
//! rounds against the `log₂ log₂ Δ` reference curve. Both sweeps are
//! declarations over the run driver; the first is the registry scenario
//! `gnp-mid` at increasing sizes.

use mmvc_bench::{executor_from_env, finish_experiment, substrate_cells, Table};
use mmvc_core::run::{run, run_on, AlgorithmKind, RunReport, RunSpec};
use mmvc_graph::generators;

fn spec(scenario: &str, seed: u64) -> RunSpec {
    let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, scenario);
    spec.seed = seed;
    spec.executor = executor_from_env();
    spec
}

fn cells(report: &RunReport) -> Vec<String> {
    assert!(report.ok(), "witness or budget failure");
    let mut cells = vec![
        report.n.to_string(),
        report.num_edges.to_string(),
        report.max_degree.to_string(),
        report.metric("prefix_phases").expect("emitted").to_string(),
        report.metric("local_rounds").expect("emitted").to_string(),
    ];
    cells.extend(substrate_cells(&report.substrate));
    cells.push(report.witnesses[0].size.to_string());
    cells
}

const BEFORE: [&str; 5] = ["n", "edges", "maxdeg", "phases", "local_rounds"];

fn main() {
    println!("# E1: Theorem 1.1 — MIS rounds vs n and Δ (MPC, practical schedule)");
    // Sweep 1 is the registry scenario itself (gnp-mid = average degree
    // 64), so the table can never drift from the family it is named for.
    let mut by_n =
        Table::with_substrate("sweep n at average degree 64 (gnp-mid)", &BEFORE, &["mis"]);
    for k in 10..=16 {
        let mut s = spec("gnp-mid", k as u64);
        s.n = Some(1 << k);
        let report = run(&s).expect("simulation fits budget");
        by_n.push(cells(&report));
    }
    // Sweep 2 varies the degree at fixed n — an ad-hoc parameter sweep
    // outside the registry, driven through run_on.
    let mut by_deg = Table::with_substrate("sweep Δ at n = 16384", &BEFORE, &["mis"]);
    for (i, deg) in [16.0, 64.0, 256.0, 1024.0, 4096.0].into_iter().enumerate() {
        let n = 16384usize;
        let seed = 100 + i as u64;
        let p = (deg / (n as f64 - 1.0)).min(1.0);
        let g = generators::gnp(n, p, seed).expect("valid p");
        let report = run_on(&g, "gnp", &spec("gnp", seed)).expect("simulation fits budget");
        by_deg.push(cells(&report));
    }
    finish_experiment("exp_e1", &[by_n, by_deg]);
}
