//! E5 — Lemma 5.1: rounding a fractional matching yields an integral one
//! of size `≥ |C̃|/50` with probability `≥ 1 − 2·exp(−|C̃|/5000)`.
//!
//! Runs `MPC-Simulation` once, then rounds the same fractional matching
//! under many independent seeds, reporting the distribution of
//! `|M| / |C̃|` and the number of trials below the lemma's 1/50 bound.

use mmvc_bench::{header, max, mean, min, row};
use mmvc_core::matching::{mpc_simulation, round_fractional, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::generators;

fn main() {
    println!("# E5: Lemma 5.1 — rounded matching size vs |C~| over 200 seeds");
    header(&[
        "n",
        "candidates",
        "mean_ratio",
        "min_ratio",
        "max_ratio",
        "lemma_bound",
        "below_bound",
        "fail_prob_bound",
    ]);
    let eps = Epsilon::new(0.1).expect("valid eps");
    for k in 10..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 32.0 / n as f64, k as u64).expect("valid p");
        let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps, k as u64)).expect("fits budget");
        let candidates = out.heavy_certificate.clone();
        if candidates.is_empty() {
            continue;
        }
        let ratios: Vec<f64> = (0..200u64)
            .map(|s| {
                let m = round_fractional(&g, &out.fractional, &candidates, s ^ 0xE5)
                    .expect("valid candidates");
                m.len() as f64 / candidates.len() as f64
            })
            .collect();
        let below = ratios.iter().filter(|&&r| r < 1.0 / 50.0).count();
        row(&[
            n.to_string(),
            candidates.len().to_string(),
            format!("{:.4}", mean(&ratios)),
            format!("{:.4}", min(&ratios)),
            format!("{:.4}", max(&ratios)),
            format!("{:.4}", 1.0 / 50.0),
            below.to_string(),
            format!("{:.2e}", 2.0 * (-(candidates.len() as f64) / 5000.0).exp()),
        ]);
    }
}
