//! E5 — Lemma 5.1: rounding a fractional matching yields an integral one
//! of size `≥ |C̃|/50` with probability `≥ 1 − 2·exp(−|C̃|/5000)`.
//!
//! Runs `MPC-Simulation` once through the driver, then rounds the same
//! fractional matching (from the run artifacts) under many independent
//! seeds, reporting the distribution of `|M| / |C̃|` and the number of
//! trials below the lemma's 1/50 bound.

use mmvc_bench::{finish_experiment, max, mean, min, Table};
use mmvc_core::matching::round_fractional;
use mmvc_core::run::{run_detailed, AlgorithmKind, RunArtifacts, RunSpec};
use mmvc_graph::generators;

fn main() {
    println!("# E5: Lemma 5.1 — rounded matching size vs |C~| over 200 seeds");
    let mut table = Table::new(
        "sweep n (eps = 0.1, G(n, 32/n))",
        &[
            "n",
            "candidates",
            "mean_ratio",
            "min_ratio",
            "max_ratio",
            "lemma_bound",
            "below_bound",
            "fail_prob_bound",
        ],
    );
    for k in 10..=13 {
        let n = 1usize << k;
        let g = generators::gnp(n, 32.0 / n as f64, k as u64).expect("valid p");
        let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp");
        spec.seed = k as u64;
        let (report, artifacts) = run_detailed(&g, "gnp", &spec).expect("fits budget");
        assert!(report.ok(), "cover must cover");
        let RunArtifacts::MpcMatching(out) = artifacts else {
            panic!("driver returned wrong artifacts");
        };
        let candidates = out.heavy_certificate;
        if candidates.is_empty() {
            continue;
        }
        let ratios: Vec<f64> = (0..200u64)
            .map(|s| {
                let m = round_fractional(&g, &out.fractional, &candidates, s ^ 0xE5)
                    .expect("valid candidates");
                m.len() as f64 / candidates.len() as f64
            })
            .collect();
        let below = ratios.iter().filter(|&&r| r < 1.0 / 50.0).count();
        table.push(vec![
            n.to_string(),
            candidates.len().to_string(),
            format!("{:.4}", mean(&ratios)),
            format!("{:.4}", min(&ratios)),
            format!("{:.4}", max(&ratios)),
            format!("{:.4}", 1.0 / 50.0),
            below.to_string(),
            format!("{:.2e}", 2.0 * (-(candidates.len() as f64) / 5000.0).exp()),
        ]);
    }
    finish_experiment("exp_e5", &[table]);
}
