//! E2 — Section 3.3 / Lemma 3.1 / Eq. (1): each rank-prefix phase ships
//! `O(n)` edges to a single machine.
//!
//! Reports, per graph, the largest number of words any phase shipped and
//! its ratio to `n` — the paper's claim is that this ratio is bounded by
//! a constant independent of `n` and `Δ`.

use mmvc_bench::{header, row};
use mmvc_core::mis::{greedy_mpc_mis, GreedyMisConfig};
use mmvc_graph::generators;

fn main() {
    println!("# E2: per-phase shipped words vs n (claim: O(n), i.e. bounded ratio)");
    header(&[
        "n",
        "edges",
        "maxdeg",
        "phases",
        "max_phase_words",
        "words_over_n",
        "budget_8n",
    ]);
    for k in 10..=15 {
        let n = 1usize << k;
        // Dense regime: average degree n/8 keeps Δ growing with n, the
        // stress case for Lemma 3.1.
        let p = 1.0 / 8.0;
        let g = generators::gnp(n, p, k as u64).expect("valid p");
        let out = greedy_mpc_mis(&g, &GreedyMisConfig::new(k as u64)).expect("fits budget");
        let max_words = out.phase_edge_words.iter().copied().max().unwrap_or(0);
        row(&[
            n.to_string(),
            g.num_edges().to_string(),
            g.max_degree().to_string(),
            out.prefix_phases.to_string(),
            max_words.to_string(),
            format!("{:.3}", max_words as f64 / n as f64),
            (8 * n).to_string(),
        ]);
    }
}
