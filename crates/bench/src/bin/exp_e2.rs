//! E2 — Section 3.3 / Lemma 3.1 / Eq. (1): each rank-prefix phase ships
//! `O(n)` edges to a single machine.
//!
//! Reports, per graph, the largest number of words any phase shipped and
//! its ratio to `n` — the paper's claim is that this ratio is bounded by
//! a constant independent of `n` and `Δ`. Declared over the run driver
//! on the registry's dense family (`gnp-dense`, average degree `n/8`,
//! the stress case for Lemma 3.1).

use mmvc_bench::{executor_from_env, finish_experiment, Table};
use mmvc_core::run::{run, AlgorithmKind, RunSpec};

fn main() {
    println!("# E2: per-phase shipped words vs n (claim: O(n), i.e. bounded ratio)");
    let mut table = Table::new(
        "sweep n on gnp-dense",
        &[
            "n",
            "edges",
            "maxdeg",
            "phases",
            "max_phase_words",
            "words_over_n",
            "budget_8n",
        ],
    );
    for k in 10..=15 {
        let n = 1usize << k;
        let mut spec = RunSpec::new(AlgorithmKind::GreedyMis, "gnp-dense");
        spec.n = Some(n);
        spec.seed = k as u64;
        spec.executor = executor_from_env();
        let report = run(&spec).expect("fits budget");
        assert!(report.ok(), "witness or budget failure");
        let max_words = report.metric_f64("max_phase_words").expect("emitted") as usize;
        table.push(vec![
            report.n.to_string(),
            report.num_edges.to_string(),
            report.max_degree.to_string(),
            report.metric("prefix_phases").expect("emitted").to_string(),
            max_words.to_string(),
            format!("{:.3}", max_words as f64 / n as f64),
            (8 * n).to_string(),
        ]);
    }
    finish_experiment("exp_e2", &[table]);
}
