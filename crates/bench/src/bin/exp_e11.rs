//! E11 (ablation) — why random thresholds? (paper §4.2 vs §4.3)
//!
//! Section 4.2 argues that simulating `Central` with a *fixed* threshold
//! is fragile: any estimation error near the single threshold `1−2ε`
//! flips freeze decisions for many vertices at once, and the deviations
//! compound. Section 4.3's random thresholds `T(v,t) ~ U[1−4ε, 1−2ε]`
//! make a flip probability proportional to the estimate error
//! (Lemma 4.11). This ablation runs `MPC-Simulation` both ways with the
//! coupled-reference diagnostics and compares the bad-vertex fraction and
//! the removal (weight > 1) escape-hatch usage.

use mmvc_bench::{header, row};
use mmvc_core::matching::{mpc_simulation, MpcMatchingConfig, ThresholdMode};
use mmvc_core::Epsilon;
use mmvc_graph::generators;

fn main() {
    println!("# E11: threshold ablation — fixed (naive §4.2) vs random (§4.3)");
    header(&[
        "n",
        "mode",
        "bad_fraction",
        "max_est_error",
        "removed",
        "frac_weight",
        "cover",
    ]);
    let eps = Epsilon::new(0.1).expect("valid eps");
    for k in [10usize, 11, 12] {
        let n = 1 << k;
        let g = generators::gnp(n, 0.2, k as u64).expect("valid p");
        for mode in [ThresholdMode::Random, ThresholdMode::Fixed] {
            let mut cfg = MpcMatchingConfig::new(eps, k as u64);
            cfg.diagnostics = true;
            cfg.threshold_mode = mode;
            let out = mpc_simulation(&g, &cfg).expect("fits budget");
            let diag = out.diagnostics.expect("requested");
            let removed = out.removed.iter().filter(|&&r| r).count();
            row(&[
                n.to_string(),
                format!("{mode:?}"),
                format!("{:.4}", diag.bad_fraction()),
                format!("{:.4}", diag.max_estimate_error),
                removed.to_string(),
                format!("{:.1}", out.fractional.weight()),
                out.cover.len().to_string(),
            ]);
        }
    }
}
