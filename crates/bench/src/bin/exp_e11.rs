//! E11 (ablation) — why random thresholds? (paper §4.2 vs §4.3)
//!
//! Section 4.2 argues that simulating `Central` with a *fixed* threshold
//! is fragile: any estimation error near the single threshold `1−2ε`
//! flips freeze decisions for many vertices at once, and the deviations
//! compound. Section 4.3's random thresholds `T(v,t) ~ U[1−4ε, 1−2ε]`
//! make a flip probability proportional to the estimate error
//! (Lemma 4.11). This ablation runs the driver both ways (the
//! `threshold_mode` override) with coupled-reference diagnostics and
//! compares the bad-vertex fraction and the removal (weight > 1)
//! escape-hatch usage.

use mmvc_bench::{finish_experiment, Table};
use mmvc_core::matching::ThresholdMode;
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::generators;

fn main() {
    println!("# E11: threshold ablation — fixed (naive §4.2) vs random (§4.3)");
    let mut table = Table::new(
        "threshold ablation (eps = 0.1, G(n, 0.2))",
        &[
            "n",
            "mode",
            "bad_fraction",
            "max_est_error",
            "removed",
            "frac_weight",
            "cover",
        ],
    );
    for k in [10usize, 11, 12] {
        let n = 1 << k;
        let g = generators::gnp(n, 0.2, k as u64).expect("valid p");
        for mode in [ThresholdMode::Random, ThresholdMode::Fixed] {
            let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp");
            spec.seed = k as u64;
            spec.overrides.diagnostics = true;
            spec.overrides.threshold_mode = Some(mode);
            let report = run_on(&g, "gnp", &spec).expect("fits budget");
            assert!(report.ok(), "cover must cover");
            table.push(vec![
                n.to_string(),
                format!("{mode:?}"),
                format!("{:.4}", report.metric_f64("bad_fraction").expect("emitted")),
                format!(
                    "{:.4}",
                    report.metric_f64("max_estimate_error").expect("emitted")
                ),
                report.metric("removed").expect("emitted").to_string(),
                format!("{:.1}", report.metric_f64("frac_weight").expect("emitted")),
                report.witnesses[0].size.to_string(),
            ]);
        }
    }
    finish_experiment("exp_e11", &[table]);
}
