//! `bench_update` — the incremental-engine benchmark and its gate.
//!
//! For each measured workload the binary opens a [`Session`], times a
//! cold run, then applies a seeded **≤0.1% edge-churn** delta and times
//! the warm path (`apply_update` + `run_incremental`). Results go to
//! stdout as a table and to `BENCH_update.json`:
//!
//! ```text
//! cargo run --release -p mmvc-bench --bin bench_update -- [--smoke] [--out PATH]
//! ```
//!
//! The exit code is the PR's headline gate. It is nonzero unless, on
//! every measured row:
//!
//! * the delta-merge rebuild ([`Graph::apply_delta_with`]) is
//!   **byte-identical** to a from-scratch build of the mutated edge
//!   list, under `Sequential` and `Threaded{2,4}` alike;
//! * the incremental report passes the **same witness validation** a
//!   cold run does (and really ran incrementally — a silent cold
//!   fallback would invalidate the measurement);
//! * a follow-up generation survives [`Session::run_incremental_with`]'s
//!   `verify_cold` cross-check against a fresh cold run;
//!
//! and, on the headline `scale-gnp-1m` row, the warm re-run is at least
//! [`MIN_SPEEDUP`]× faster than the cold run. `--smoke` shrinks the
//! scale row to `n = 2^17` for CI; every gate still applies.

use mmvc_bench::{Json, Table};
use mmvc_core::run::{AlgorithmKind, MetricValue, RunSpec};
use mmvc_core::session::Session;
use mmvc_graph::rng::hash2;
use mmvc_graph::{Edge, Graph, GraphBuilder, GraphDelta, VertexId};
use mmvc_substrate::ExecutorConfig;
use std::collections::HashSet;
use std::process::ExitCode;
use std::time::Instant;

/// The smoke-mode size for the scale row (CI): large enough that the
/// chunked delta-merge path does real work, small enough for CI wall
/// times.
const SMOKE_N: usize = 1 << 17;

/// Seed for every measurement (workloads and churn are deterministic
/// in it).
const SEED: u64 = 0xD317A;

/// The headline gate: warm re-run after ≤0.1% churn on `scale-gnp-1m`
/// must beat the cold run by at least this factor.
const MIN_SPEEDUP: f64 = 5.0;

/// Churn size as a fraction of the edge count: 1 op per 1000 edges.
const CHURN_PER_MILLE: usize = 1000;

struct RowPlan {
    scenario: &'static str,
    algorithm: AlgorithmKind,
    n: usize,
    /// Whether the ≥[`MIN_SPEEDUP`]× gate applies to this row.
    gated: bool,
}

struct UpdateRow {
    scenario: &'static str,
    algorithm: &'static str,
    n: usize,
    edges: usize,
    churn_ops: usize,
    cold_ms: f64,
    update_ms: f64,
    incr_ms: f64,
    speedup: f64,
    byte_identical: bool,
    witness_ok: bool,
    incremental: bool,
    verify_cold_ok: bool,
    gated: bool,
}

impl UpdateRow {
    /// Warm path total: delta apply + incremental re-run.
    fn warm_ms(&self) -> f64 {
        self.update_ms + self.incr_ms
    }
}

fn pack(e: &Edge) -> u64 {
    ((e.u() as u64) << 32) | e.v() as u64
}

/// A seeded churn delta: alternating deletes of present edges and
/// inserts of fresh pairs, all chosen by stateless hashing so every
/// mode and executor sees the same batch.
fn churn_delta(g: &Graph, ops: usize, salt: u64) -> GraphDelta {
    let n = g.num_vertices() as u64;
    let mut delta = GraphDelta::new();
    let mut staged = 0usize;
    let mut probe = 0u64;
    let budget = 64 * ops as u64 + 64;
    while staged < ops && probe < budget {
        let h = hash2(salt, probe);
        probe += 1;
        if staged.is_multiple_of(2) && g.num_edges() > 0 {
            // Delete: probe a vertex with neighbors, drop one incident
            // edge.
            let v = (h % n) as VertexId;
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let w = nbrs[(h >> 32) as usize % nbrs.len()];
            delta
                .delete_edge(v, w)
                .expect("neighbors are not self-loops");
            staged += 1;
        } else {
            let a = (h % n) as VertexId;
            let b = ((h >> 32) % n) as VertexId;
            if a == b {
                continue;
            }
            delta.insert_edge(a, b).expect("a != b");
            staged += 1;
        }
    }
    delta
}

/// Byte-identity of the delta-merge against a from-scratch build of the
/// mutated edge list, across `Sequential` and `Threaded{2,4}`.
fn merge_is_byte_identical(g: &Graph, delta: &GraphDelta) -> Result<bool, String> {
    let (ins, del) = delta
        .normalized(g.num_vertices())
        .map_err(|e| format!("delta normalization failed: {e}"))?;
    let del_set: HashSet<u64> = del.iter().map(pack).collect();
    let mut edges: Vec<Edge> = g
        .edges()
        .iter()
        .filter(|e| !del_set.contains(&pack(e)))
        .collect();
    edges.extend(ins.iter().copied());
    let mut builder = GraphBuilder::with_capacity(g.num_vertices(), edges.len());
    builder
        .extend_edges(edges.iter().copied())
        .map_err(|e| format!("from-scratch build staged a bad edge: {e}"))?;
    let reference = builder.build();
    for (label, exec) in [
        ("seq", ExecutorConfig::sequential()),
        ("t2", ExecutorConfig::with_threads(2)),
        ("t4", ExecutorConfig::with_threads(4)),
    ] {
        let merged = g
            .apply_delta_with(delta, &exec)
            .map_err(|e| format!("apply_delta under {label} failed: {e}"))?;
        if merged != reference {
            eprintln!("delta-merge diverged from the from-scratch build under {label}");
            return Ok(false);
        }
    }
    Ok(true)
}

/// Runs one workload row end to end; `Err` aborts the whole bench.
fn run_row(plan: &RowPlan) -> Result<UpdateRow, String> {
    let mut spec = RunSpec::new(plan.algorithm, plan.scenario);
    spec.n = Some(plan.n);
    spec.seed = SEED;
    spec.executor = ExecutorConfig::with_threads(4);
    let mut session =
        Session::new(&spec).map_err(|e| format!("{}: session refused: {e}", plan.scenario))?;

    // Cold baseline: best of two, so the first-touch noise of a fresh
    // arena cannot inflate the speedup.
    let mut cold_ms = f64::INFINITY;
    let mut cold_ok = true;
    for _ in 0..2 {
        let start = Instant::now();
        let report = session
            .run_cold()
            .map_err(|e| format!("{}: cold run failed: {e}", plan.scenario))?;
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
        cold_ok &= report.ok();
    }
    if !cold_ok {
        return Err(format!(
            "{}: cold run failed its own witnesses",
            plan.scenario
        ));
    }

    let edges = session.graph().num_edges();
    let churn_ops = (edges / CHURN_PER_MILLE).max(4);
    let delta = churn_delta(session.graph(), churn_ops, SEED ^ 0x5A17);
    let byte_identical = merge_is_byte_identical(session.graph(), &delta)?;

    // The timed warm path: apply the batched delta, re-run from warm
    // witness state.
    let start = Instant::now();
    session
        .apply_update(&delta)
        .map_err(|e| format!("{}: update refused: {e}", plan.scenario))?;
    let update_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let warm = session
        .run_incremental()
        .map_err(|e| format!("{}: incremental run failed: {e}", plan.scenario))?;
    let incr_ms = start.elapsed().as_secs_f64() * 1e3;
    let witness_ok = warm.ok();
    let incremental = warm.metric("incremental") == Some(&MetricValue::Flag(true));

    // Cross-check generation (un-timed): another small delta, then the
    // `verify_cold` knob compares incremental witness validity against
    // a fresh cold run of the mutated graph.
    let check = churn_delta(session.graph(), churn_ops.clamp(2, 32), SEED ^ 0xC0DE);
    session
        .apply_update(&check)
        .map_err(|e| format!("{}: cross-check update refused: {e}", plan.scenario))?;
    let verify_cold_ok = match session.run_incremental_with(true) {
        Ok(report) => report.ok(),
        Err(e) => {
            eprintln!("{}: verify_cold cross-check failed: {e}", plan.scenario);
            false
        }
    };

    let row = UpdateRow {
        scenario: plan.scenario,
        algorithm: plan.algorithm.name(),
        n: session.graph().num_vertices(),
        edges,
        churn_ops,
        cold_ms,
        update_ms,
        incr_ms,
        speedup: cold_ms / (update_ms + incr_ms).max(1e-9),
        byte_identical,
        witness_ok,
        incremental,
        verify_cold_ok,
        gated: plan.gated,
    };
    eprintln!(
        "{:<16} {:<12} n={:<8} m={:<9} churn={:<6} cold={:.1}ms warm={:.1}ms ({:.1}+{:.1}) speedup={:.1}x",
        row.scenario,
        row.algorithm,
        row.n,
        row.edges,
        row.churn_ops,
        row.cold_ms,
        row.warm_ms(),
        row.update_ms,
        row.incr_ms,
        row.speedup
    );
    Ok(row)
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_update [--smoke] [--out PATH]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_update.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out_path = v.clone();
                    i += 2;
                }
                _ => {
                    eprintln!("error: --out requires a path value");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return usage();
            }
        }
    }

    let plans = [
        RowPlan {
            scenario: "gnp-sparse",
            algorithm: AlgorithmKind::GreedyMis,
            n: 1 << 15,
            gated: false,
        },
        RowPlan {
            scenario: "gnp-sparse",
            algorithm: AlgorithmKind::OnePlusEpsMatching,
            n: 1 << 12,
            gated: false,
        },
        RowPlan {
            scenario: "scale-gnp-1m",
            algorithm: AlgorithmKind::GreedyMis,
            n: if smoke { SMOKE_N } else { 1 << 20 },
            gated: true,
        },
    ];

    let mut rows: Vec<UpdateRow> = Vec::new();
    let mut failed = false;
    for plan in &plans {
        match run_row(plan) {
            Ok(row) => rows.push(row),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for row in &rows {
        if !row.byte_identical {
            eprintln!(
                "{}/{}: delta-merge not byte-identical to the from-scratch build",
                row.scenario, row.algorithm
            );
            failed = true;
        }
        if !row.witness_ok {
            eprintln!(
                "{}/{}: incremental report failed witness validation",
                row.scenario, row.algorithm
            );
            failed = true;
        }
        if !row.incremental {
            eprintln!(
                "{}/{}: measured run fell back to cold — not an incremental measurement",
                row.scenario, row.algorithm
            );
            failed = true;
        }
        if !row.verify_cold_ok {
            eprintln!(
                "{}/{}: verify_cold cross-check failed",
                row.scenario, row.algorithm
            );
            failed = true;
        }
        if row.gated && row.speedup < MIN_SPEEDUP {
            eprintln!(
                "{}/{}: warm re-run is only {:.2}x faster than cold (gate: {MIN_SPEEDUP}x)",
                row.scenario, row.algorithm, row.speedup
            );
            failed = true;
        }
    }

    let mut table = Table::new(
        if smoke {
            "incremental re-runs after <=0.1% churn (smoke, scale row at n = 2^17)"
        } else {
            "incremental re-runs after <=0.1% churn"
        },
        &[
            "scenario",
            "algorithm",
            "n",
            "edges",
            "churn_ops",
            "cold_ms",
            "update_ms",
            "incr_ms",
            "speedup",
            "byte_identical",
            "witness_ok",
            "verify_cold_ok",
            "gated",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.scenario.to_string(),
            r.algorithm.to_string(),
            r.n.to_string(),
            r.edges.to_string(),
            r.churn_ops.to_string(),
            format!("{:.1}", r.cold_ms),
            format!("{:.2}", r.update_ms),
            format!("{:.2}", r.incr_ms),
            format!("{:.1}", r.speedup),
            r.byte_identical.to_string(),
            r.witness_ok.to_string(),
            r.verify_cold_ok.to_string(),
            r.gated.to_string(),
        ]);
    }
    table.print();

    let doc = Json::obj(vec![
        ("schema", Json::Str("mmvc-bench-update/v1".to_string())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("min_speedup", Json::Float(MIN_SPEEDUP)),
        (
            "host_parallelism",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|p| p.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scenario", Json::Str(r.scenario.to_string())),
                            ("algorithm", Json::Str(r.algorithm.to_string())),
                            ("n", Json::Int(r.n as i64)),
                            ("edges", Json::Int(r.edges as i64)),
                            ("churn_ops", Json::Int(r.churn_ops as i64)),
                            ("cold_ms", Json::Float(r.cold_ms)),
                            ("update_ms", Json::Float(r.update_ms)),
                            ("incr_ms", Json::Float(r.incr_ms)),
                            ("warm_ms", Json::Float(r.warm_ms())),
                            ("speedup", Json::Float(r.speedup)),
                            ("byte_identical", Json::Bool(r.byte_identical)),
                            ("witness_ok", Json::Bool(r.witness_ok)),
                            ("incremental", Json::Bool(r.incremental)),
                            ("verify_cold_ok", Json::Bool(r.verify_cold_ok)),
                            ("gated", Json::Bool(r.gated)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());

    if failed {
        eprintln!("error: incremental-engine gates failed (see above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
