//! E3 — Lemma 4.1: `Central` terminates in `O(log n / ε)` iterations and
//! yields a `(2+5ε)` fractional matching and vertex cover.
//!
//! Part 1 sweeps `n` (iterations should grow like `log n`); part 2 sweeps
//! `ε` (iterations like `1/ε·log n`, ratios tightening as `ε` shrinks).
//! Ratios are measured against the exact blossom optimum `|M*|`:
//! `matching_ratio = |M*| / W(x)` (claimed `≤ 2+5ε`) and
//! `cover_vs_lb = |C| / |M*|` (claimed `≤ 2(2+5ε)` via `VC* ≤ 2|M*|`;
//! typically far smaller). Declared over the run driver with the fixed
//! (Lemma 4.1) threshold rule; the iteration bound column is the driver's
//! claimed-rounds curve.

use mmvc_bench::{approx_ratio, finish_experiment, Table};
use mmvc_core::matching::ThresholdMode;
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn run_row(table: &mut Table, n: usize, p: f64, eps: f64, seed: u64) {
    let g = generators::gnp(n, p, seed).expect("valid p");
    let mut spec = RunSpec::new(AlgorithmKind::Central, "gnp");
    spec.eps = Epsilon::new(eps).expect("valid eps");
    spec.seed = seed;
    spec.overrides.threshold_mode = Some(ThresholdMode::Fixed);
    let report = run_on(&g, "gnp", &spec).expect("central is total");
    assert!(report.ok(), "cover must cover");
    let opt = matching::blossom(&g).len() as f64;
    let frac_weight = report.metric_f64("frac_weight").expect("emitted");
    table.push(vec![
        n.to_string(),
        report.num_edges.to_string(),
        format!("{eps}"),
        report.substrate.rounds.to_string(),
        format!("{:.0}", report.substrate.claimed_rounds),
        format!("{:.3}", approx_ratio(opt, frac_weight)),
        format!("{:.1}", 2.0 + 5.0 * eps),
        format!("{:.3}", report.witnesses[0].size as f64 / opt.max(1.0)),
    ]);
}

const COLUMNS: [&str; 8] = [
    "n",
    "edges",
    "eps",
    "iterations",
    "iter_bound",
    "matching_ratio",
    "claimed",
    "cover_vs_lb",
];

fn main() {
    println!("# E3: Lemma 4.1 — Central iterations and approximation");
    let mut by_n = Table::new("sweep n (eps = 0.1, G(n, 16/n))", &COLUMNS);
    for k in 7..=12 {
        let n = 1usize << k;
        run_row(&mut by_n, n, 16.0 / n as f64, 0.1, k as u64);
    }
    let mut by_eps = Table::new("sweep eps (n = 1024, G(n, 16/n))", &COLUMNS);
    for (i, eps) in [0.1, 0.05, 0.02, 0.01].into_iter().enumerate() {
        run_row(&mut by_eps, 1024, 16.0 / 1024.0, eps, 200 + i as u64);
    }
    finish_experiment("exp_e3", &[by_n, by_eps]);
}
