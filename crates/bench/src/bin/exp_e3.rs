//! E3 — Lemma 4.1: `Central` terminates in `O(log n / ε)` iterations and
//! yields a `(2+5ε)` fractional matching and vertex cover.
//!
//! Part 1 sweeps `n` (iterations should grow like `log n`); part 2 sweeps
//! `ε` (iterations like `1/ε·log n`, ratios tightening as `ε` shrinks).
//! Ratios are measured against the exact blossom optimum `|M*|`:
//! `matching_ratio = |M*| / W(x)` (claimed `≤ 2+5ε`) and
//! `cover_vs_lb = |C| / |M*|` (claimed `≤ 2(2+5ε)` via `VC* ≤ 2|M*|`;
//! typically far smaller).

use mmvc_bench::{approx_ratio, header, row};
use mmvc_core::matching::central;
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn run(n: usize, p: f64, eps: f64, seed: u64) {
    let g = generators::gnp(n, p, seed).expect("valid p");
    let e = Epsilon::new(eps).expect("valid eps");
    let out = central(&g, e);
    let opt = matching::blossom(&g).len() as f64;
    let bound = ((1.0 / (n as f64)).ln().abs() / (1.0 / (1.0 - eps)).ln()).ceil();
    row(&[
        n.to_string(),
        g.num_edges().to_string(),
        format!("{eps}"),
        out.iterations.to_string(),
        format!("{bound:.0}"),
        format!("{:.3}", approx_ratio(opt, out.fractional.weight())),
        format!("{:.1}", 2.0 + 5.0 * eps),
        format!("{:.3}", out.cover.len() as f64 / opt.max(1.0)),
    ]);
}

fn main() {
    println!("# E3: Lemma 4.1 — Central iterations and approximation");
    println!("## sweep n (eps = 0.1, G(n, 16/n))");
    header(&[
        "n",
        "edges",
        "eps",
        "iterations",
        "iter_bound",
        "matching_ratio",
        "claimed",
        "cover_vs_lb",
    ]);
    for k in 7..=12 {
        let n = 1usize << k;
        run(n, 16.0 / n as f64, 0.1, k as u64);
    }
    println!();
    println!("## sweep eps (n = 1024, G(n, 16/n))");
    header(&[
        "n",
        "edges",
        "eps",
        "iterations",
        "iter_bound",
        "matching_ratio",
        "claimed",
        "cover_vs_lb",
    ]);
    for (i, eps) in [0.1, 0.05, 0.02, 0.01].into_iter().enumerate() {
        run(1024, 16.0 / 1024.0, eps, 200 + i as u64);
    }
}
