//! E13 — §1.3 remark: matching/vertex cover with `O(n/polylog n)` memory
//! per machine.
//!
//! The paper presents its algorithms at `Õ(n)` memory and notes they "can
//! be adjusted to still run in O(log log n) MPC rounds even when the
//! memory per machine is O(n/polylog n)". The adjustment: `√reduction`
//! more machines per phase so the induced subgraphs shrink with the
//! budget. This experiment sweeps the reduction factor and reports
//! rounds, measured per-machine load, and quality — rounds must stay
//! flat while memory shrinks.

use mmvc_bench::{approx_ratio, executor_from_env, header, row, SubstrateReport};
use mmvc_core::matching::{mpc_simulation, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn main() {
    println!("# E13: sublinear memory regime (n = 4096, G(n, 0.125))");
    let mut cols = vec!["reduction", "budget_words", "phases"];
    cols.extend(SubstrateReport::COLUMNS);
    cols.extend(["frac_weight", "matching_ratio", "removed"]);
    header(&cols);
    let eps = Epsilon::new(0.1).expect("valid eps");
    let n = 4096;
    let g = generators::gnp(n, 0.125, 13).expect("valid p");
    let opt = matching::blossom(&g).len() as f64;
    let executor = executor_from_env();
    for reduction in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut cfg = MpcMatchingConfig::sublinear(eps, 13, reduction);
        cfg.executor = executor;
        let out = mpc_simulation(&g, &cfg).expect("fits budget");
        let removed = out.removed.iter().filter(|&&r| r).count();
        let report = SubstrateReport::measure(&out.trace, mmvc_bench::log_log2(n));
        let mut cells = vec![
            format!("{reduction}"),
            ((8.0 / reduction * n as f64).ceil() as usize).to_string(),
            out.phases.to_string(),
        ];
        cells.extend(report.cells());
        cells.extend([
            format!("{:.1}", out.fractional.weight()),
            format!("{:.3}", approx_ratio(opt, out.fractional.weight())),
            removed.to_string(),
        ]);
        row(&cells);
    }
}
