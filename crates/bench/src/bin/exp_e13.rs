//! E13 — §1.3 remark: matching/vertex cover with `O(n/polylog n)` memory
//! per machine.
//!
//! The paper presents its algorithms at `Õ(n)` memory and notes they "can
//! be adjusted to still run in O(log log n) MPC rounds even when the
//! memory per machine is O(n/polylog n)". The adjustment: `√reduction`
//! more machines per phase so the induced subgraphs shrink with the
//! budget. This experiment sweeps the `memory_reduction` override and
//! reports rounds, measured per-machine load, and quality — rounds must
//! stay flat while memory shrinks.

use mmvc_bench::{approx_ratio, executor_from_env, finish_experiment, substrate_cells, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::{matching, scenarios};

fn main() {
    println!("# E13: sublinear memory regime (n = 4096, G(n, 0.125))");
    let mut table = Table::with_substrate(
        "memory reduction sweep on gnp-dense",
        &["reduction", "budget_words", "phases"],
        &["frac_weight", "matching_ratio", "removed"],
    );
    let n = 4096;
    let g = scenarios::get("gnp-dense")
        .expect("registered")
        .build_with(n, 13)
        .expect("valid scenario");
    let opt = matching::blossom(&g).len() as f64;
    let executor = executor_from_env();
    for reduction in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp-dense");
        spec.seed = 13;
        spec.executor = executor.clone();
        spec.overrides.memory_reduction = Some(reduction);
        let report = run_on(&g, "gnp-dense", &spec).expect("fits budget");
        assert!(report.ok(), "cover must cover");
        let frac_weight = report.metric_f64("frac_weight").expect("emitted");
        let mut cells = vec![
            format!("{reduction}"),
            ((8.0 / reduction * n as f64).ceil() as usize).to_string(),
            report.metric("phases").expect("emitted").to_string(),
        ];
        cells.extend(substrate_cells(&report.substrate));
        cells.extend([
            format!("{frac_weight:.1}"),
            format!("{:.3}", approx_ratio(opt, frac_weight)),
            report.metric("removed").expect("emitted").to_string(),
        ]);
        table.push(cells);
    }
    finish_experiment("exp_e13", &[table]);
}
