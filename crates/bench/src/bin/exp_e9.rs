//! E9 — Corollary 1.4: `(2+ε)`-approximate maximum weighted matching.
//!
//! Part 1 verifies the ratio against the exact optimum on tiny graphs
//! (exhaustive search); part 2 reports, at realistic sizes, the weight
//! against the heaviest-first greedy reference and the class/round
//! profile as the weight range widens. Driver runs; the weighted
//! instance comes back in the run artifacts so the references score the
//! exact same weights.

use mmvc_bench::{max as fmax, mean, Table};
use mmvc_core::run::{run_detailed, AlgorithmKind, RunArtifacts, RunSpec};
use mmvc_graph::weighted::WeightedGraph;
use mmvc_graph::{generators, matching, Graph};

fn weighted_run(
    g: &Graph,
    seed: u64,
    w_max: f64,
) -> (
    mmvc_core::run::RunReport,
    mmvc_core::matching::WeightedMatchingOutcome,
    WeightedGraph,
) {
    let mut spec = RunSpec::new(AlgorithmKind::WeightedMatching, "gnp");
    spec.seed = seed;
    spec.overrides.weight_range = (1.0, w_max);
    let (report, artifacts) = run_detailed(g, "gnp", &spec).expect("runs");
    assert!(report.ok(), "matching must validate");
    let RunArtifacts::WeightedMatching(out, wg) = artifacts else {
        panic!("driver returned wrong artifacts");
    };
    (report, out, wg)
}

fn main() {
    // The ε every weighted_run actually uses (the spec default), so the
    // printed claimed bound stays coupled to the bound the runs were
    // held to.
    let eps = RunSpec::new(AlgorithmKind::WeightedMatching, "gnp").eps;
    println!("# E9a: ratio vs exact optimum on tiny graphs (60 instances)");
    let mut ratios = Vec::new();
    for seed in 0..60u64 {
        let g = generators::gnp(8, 0.5, seed).expect("valid p");
        if g.num_edges() == 0 || g.num_edges() > 20 {
            continue;
        }
        let (_, out, wg) = weighted_run(&g, seed, 100.0);
        let opt = wg.brute_force_max_weight_matching();
        if out.total_weight > 0.0 {
            ratios.push(opt / out.total_weight);
        }
    }
    let mut tiny = Table::new(
        "tiny-instance ratios",
        &["instances", "mean_ratio", "worst_ratio", "claimed"],
    );
    tiny.push(vec![
        ratios.len().to_string(),
        format!("{:.3}", mean(&ratios)),
        format!("{:.3}", fmax(&ratios)),
        format!("{:.1}", 2.0 * (1.0 + eps.get())),
    ]);
    tiny.print();
    println!();

    println!("# E9b: weight range sweep at n = 2048 (vs heaviest-first greedy)");
    let mut sweep = Table::new(
        "weight range sweep",
        &[
            "w_max",
            "classes",
            "class_rounds",
            "our_weight",
            "greedy_weight",
            "our/greedy",
        ],
    );
    for (i, w_max) in [2.0, 10.0, 100.0, 10_000.0].into_iter().enumerate() {
        let seed = 90 + i as u64;
        let g = generators::gnp(2048, 12.0 / 2048.0, seed).expect("valid p");
        let (report, out, wg) = weighted_run(&g, seed, w_max);
        let greedy = {
            let mut order: Vec<usize> = (0..wg.graph().num_edges()).collect();
            order.sort_by(|&a, &b| wg.weight(b).total_cmp(&wg.weight(a)));
            let m = matching::greedy_maximal_matching_ordered(wg.graph(), &order);
            wg.matching_weight(&m)
        };
        sweep.push(vec![
            format!("{w_max}"),
            report.metric("classes").expect("emitted").to_string(),
            report.substrate.rounds.to_string(),
            format!("{:.1}", out.total_weight),
            format!("{greedy:.1}"),
            format!("{:.3}", out.total_weight / greedy.max(1e-9)),
        ]);
    }
    sweep.print();
    if let Some(path) = mmvc_bench::report::write_experiment_sidecar("exp_e9", &[tiny, sweep])
        .expect("sidecar write failed")
    {
        eprintln!("wrote {}", path.display());
    }
}
