//! E9 — Corollary 1.4: `(2+ε)`-approximate maximum weighted matching.
//!
//! Part 1 verifies the ratio against the exact optimum on tiny graphs
//! (exhaustive search); part 2 reports, at realistic sizes, the weight
//! against the heaviest-first greedy reference and the class/round
//! profile as the weight range widens.

use mmvc_bench::{header, max as fmax, mean, row};
use mmvc_core::matching::{weighted_matching, WeightedMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::weighted::WeightedGraph;
use mmvc_graph::{generators, matching};

fn main() {
    let eps = Epsilon::new(0.1).expect("valid eps");

    println!("# E9a: ratio vs exact optimum on tiny graphs (60 instances)");
    let mut ratios = Vec::new();
    for seed in 0..60u64 {
        let g = generators::gnp(8, 0.5, seed).expect("valid p");
        if g.num_edges() == 0 || g.num_edges() > 20 {
            continue;
        }
        let wg = WeightedGraph::with_random_weights(g, 1.0, 100.0, seed).expect("valid range");
        let out = weighted_matching(&wg, &WeightedMatchingConfig::new(eps, seed)).expect("runs");
        let opt = wg.brute_force_max_weight_matching();
        if out.total_weight > 0.0 {
            ratios.push(opt / out.total_weight);
        }
    }
    header(&["instances", "mean_ratio", "worst_ratio", "claimed"]);
    row(&[
        ratios.len().to_string(),
        format!("{:.3}", mean(&ratios)),
        format!("{:.3}", fmax(&ratios)),
        format!("{:.1}", 2.0 * (1.0 + eps.get())),
    ]);

    println!();
    println!("# E9b: weight range sweep at n = 2048 (vs heaviest-first greedy)");
    header(&[
        "w_max",
        "classes",
        "class_rounds",
        "our_weight",
        "greedy_weight",
        "our/greedy",
    ]);
    for (i, w_max) in [2.0, 10.0, 100.0, 10_000.0].into_iter().enumerate() {
        let seed = 90 + i as u64;
        let g = generators::gnp(2048, 12.0 / 2048.0, seed).expect("valid p");
        let wg =
            WeightedGraph::with_random_weights(g, 1.0, w_max, seed ^ 0x9).expect("valid range");
        let out = weighted_matching(&wg, &WeightedMatchingConfig::new(eps, seed)).expect("runs");
        let greedy = {
            let mut order: Vec<usize> = (0..wg.graph().num_edges()).collect();
            order.sort_by(|&a, &b| wg.weight(b).total_cmp(&wg.weight(a)));
            let m = matching::greedy_maximal_matching_ordered(wg.graph(), &order);
            wg.matching_weight(&m)
        };
        row(&[
            format!("{w_max}"),
            out.classes.to_string(),
            out.total_rounds.to_string(),
            format!("{:.1}", out.total_weight),
            format!("{greedy:.1}"),
            format!("{:.3}", out.total_weight / greedy.max(1e-9)),
        ]);
    }
}
