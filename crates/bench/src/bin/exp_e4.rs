//! E4 — Theorem 1.2 / Lemma 4.2: `MPC-Simulation` runs in `O(log log n)`
//! rounds and yields `(2+50ε)`-approximate fractional matching and cover.
//!
//! Sweeps the registry's dense family (`gnp-dense`, degree `~n/8`, so the
//! phase loop genuinely runs) and reports phases, communicating rounds,
//! covered iterations, and the measured approximation ratios (against
//! blossom up to n = 4096, against the greedy-matching lower bound above
//! that). A declaration over the run driver.

use mmvc_bench::{approx_ratio, executor_from_env, finish_experiment, substrate_cells, Table};
use mmvc_core::run::{run_on, AlgorithmKind, RunSpec};
use mmvc_graph::{matching, scenarios};

fn main() {
    println!("# E4: Lemma 4.2 — MPC-Simulation rounds and quality (eps = 0.1, G(n, n/8 degree))");
    let mut table = Table::with_substrate(
        "sweep n on gnp-dense",
        &["n", "edges", "phases"],
        &[
            "tail_rounds",
            "iterations",
            "frac_weight",
            "opt_lb",
            "matching_ratio",
            "cover",
            "cover_vs_lb",
            "removed",
        ],
    );
    let scenario = scenarios::get("gnp-dense").expect("registered");
    let executor = executor_from_env();
    for k in 9..=14 {
        let n = 1usize << k;
        let g = scenario.build_with(n, k as u64).expect("valid scenario");
        let mut spec = RunSpec::new(AlgorithmKind::MpcMatching, "gnp-dense");
        spec.seed = k as u64;
        spec.executor = executor.clone();
        let report = run_on(&g, "gnp-dense", &spec).expect("simulation fits budget");
        assert!(report.ok(), "cover must cover");
        // Exact optimum is affordable up to 4096 vertices; beyond that use
        // the maximal-matching lower bound (within 2x of optimum).
        let (opt, exact) = if n <= 4096 {
            (matching::blossom(&g).len() as f64, true)
        } else {
            (matching::greedy_maximal_matching(&g).len() as f64, false)
        };
        let frac_weight = report.metric_f64("frac_weight").expect("emitted");
        let cover = report.witnesses[0].size;
        let mut cells = vec![
            n.to_string(),
            report.num_edges.to_string(),
            report.metric("phases").expect("emitted").to_string(),
        ];
        cells.extend(substrate_cells(&report.substrate));
        cells.extend([
            report
                .metric("tail_iterations")
                .expect("emitted")
                .to_string(),
            report.metric("iterations").expect("emitted").to_string(),
            format!("{frac_weight:.1}"),
            format!("{}{}", if exact { "" } else { ">=" }, opt),
            format!("{:.3}", approx_ratio(opt, frac_weight)),
            cover.to_string(),
            format!("{:.3}", cover as f64 / opt.max(1.0)),
            report.metric("removed").expect("emitted").to_string(),
        ]);
        table.push(cells);
    }
    finish_experiment("exp_e4", &[table]);
}
