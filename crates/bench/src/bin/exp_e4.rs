//! E4 — Theorem 1.2 / Lemma 4.2: `MPC-Simulation` runs in `O(log log n)`
//! rounds and yields `(2+50ε)`-approximate fractional matching and cover.
//!
//! Sweeps `n` at edge probability giving degree `~n/8` (so the phase loop
//! genuinely runs) and reports phases, communicating rounds, covered
//! iterations, and the measured approximation ratios (against blossom up
//! to n = 4096, against the greedy-matching lower bound above that).

use mmvc_bench::{approx_ratio, executor_from_env, header, log_log2, row, SubstrateReport};
use mmvc_core::matching::{mpc_simulation, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn main() {
    println!("# E4: Lemma 4.2 — MPC-Simulation rounds and quality (eps = 0.1, G(n, n/8 degree))");
    let mut cols = vec!["n", "edges", "phases"];
    cols.extend(SubstrateReport::COLUMNS);
    cols.extend([
        "tail_rounds",
        "iterations",
        "frac_weight",
        "opt_lb",
        "matching_ratio",
        "cover",
        "cover_vs_lb",
        "removed",
    ]);
    header(&cols);
    let eps = Epsilon::new(0.1).expect("valid eps");
    let executor = executor_from_env();
    for k in 9..=14 {
        let n = 1usize << k;
        let g = generators::gnp(n, 0.125, k as u64).expect("valid p");
        let mut cfg = MpcMatchingConfig::new(eps, k as u64);
        cfg.executor = executor;
        let out = mpc_simulation(&g, &cfg).expect("simulation fits budget");
        assert!(out.cover.covers(&g));
        // Exact optimum is affordable up to 4096 vertices; beyond that use
        // the maximal-matching lower bound (within 2x of optimum).
        let (opt, exact) = if n <= 4096 {
            (matching::blossom(&g).len() as f64, true)
        } else {
            (matching::greedy_maximal_matching(&g).len() as f64, false)
        };
        let removed = out.removed.iter().filter(|&&r| r).count();
        let report = SubstrateReport::measure(&out.trace, log_log2(n));
        let mut cells = vec![
            n.to_string(),
            g.num_edges().to_string(),
            out.phases.to_string(),
        ];
        cells.extend(report.cells());
        cells.extend([
            out.tail_iterations.to_string(),
            out.iterations.to_string(),
            format!("{:.1}", out.fractional.weight()),
            format!("{}{}", if exact { "" } else { ">=" }, opt),
            format!("{:.3}", approx_ratio(opt, out.fractional.weight())),
            out.cover.len().to_string(),
            format!("{:.3}", out.cover.len() as f64 / opt.max(1.0)),
            removed.to_string(),
        ]);
        row(&cells);
    }
}
