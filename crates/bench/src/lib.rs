//! Shared helpers for the experiment binaries (`src/bin/exp_*.rs`) and
//! criterion benches of the `mmvc` workspace.
//!
//! Each experiment binary regenerates one table of `EXPERIMENTS.md`; run
//! them as `cargo run --release -p mmvc-bench --bin exp_e1` (etc.). The
//! experiment index lives in `DESIGN.md` §5.
//!
//! Substrate-derived columns (measured rounds, claimed rounds, their
//! ratio, peak load) go through [`SubstrateReport`], which consumes any
//! [`mmvc_substrate::Substrate`] — a live `Cluster`, a live
//! `CliqueNetwork`, or the `ExecutionTrace` an algorithm outcome carries —
//! so every experiment reports claimed-vs-measured numbers through one
//! code path.

use mmvc_substrate::{ExecutorConfig, Substrate};

/// Resolves the executor the experiment binaries thread into algorithm
/// configs, from the `MMVC_EXECUTOR` environment variable:
///
/// * unset or `auto` — [`ExecutorConfig::threaded`] (the default);
/// * `seq` — [`ExecutorConfig::sequential`];
/// * a number `k` — [`ExecutorConfig::with_threads`]`(k)`.
///
/// Executors never change results (the round engine's determinism
/// contract), only wall-time, so every `EXPERIMENTS.md` table is
/// reproducible regardless of this setting.
///
/// # Panics
///
/// Panics on an unrecognised value — a misconfigured benchmark run should
/// fail loudly, not silently fall back.
pub fn executor_from_env() -> ExecutorConfig {
    match std::env::var("MMVC_EXECUTOR") {
        Err(_) => ExecutorConfig::threaded(),
        Ok(v) if v == "auto" => ExecutorConfig::threaded(),
        Ok(v) if v == "seq" => ExecutorConfig::sequential(),
        Ok(v) => match v.parse::<usize>() {
            Ok(k) => ExecutorConfig::with_threads(k),
            Err(_) => panic!("MMVC_EXECUTOR must be `seq`, `auto`, or a thread count, got `{v}`"),
        },
    }
}

/// The substrate-derived portion of an experiment row: measured
/// quantities next to the paper's claimed round bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateReport {
    /// Which substrate was measured (`"mpc"`, `"congested-clique"`, or
    /// `"trace"` for a stored [`mmvc_substrate::ExecutionTrace`]).
    pub substrate: &'static str,
    /// Measured rounds.
    pub rounds: usize,
    /// Measured peak per-machine / per-player load in words.
    pub max_load_words: usize,
    /// Measured total communication in words.
    pub total_words: usize,
    /// The claimed round bound being tested (e.g. `log₂ log₂ Δ`).
    pub claimed_rounds: f64,
}

impl SubstrateReport {
    /// Header labels matching [`SubstrateReport::cells`].
    pub const COLUMNS: [&'static str; 4] =
        ["rounds", "claimed_rounds", "round_ratio", "max_load_words"];

    /// Measures `substrate` against a claimed round bound.
    pub fn measure(substrate: &dyn Substrate, claimed_rounds: f64) -> Self {
        SubstrateReport {
            substrate: substrate.substrate_name(),
            rounds: substrate.rounds(),
            max_load_words: substrate.max_load_words(),
            total_words: substrate.total_words(),
            claimed_rounds,
        }
    }

    /// `measured / claimed` — the figure of merit for the paper's round
    /// bounds (`inf` when the claim is zero but rounds were used; 1 when
    /// both are zero).
    pub fn round_ratio(&self) -> f64 {
        if self.claimed_rounds > 0.0 {
            self.rounds as f64 / self.claimed_rounds
        } else if self.rounds == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    }

    /// The TSV cells for this report, in [`SubstrateReport::COLUMNS`]
    /// order.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.rounds.to_string(),
            format!("{:.2}", self.claimed_rounds),
            format!("{:.2}", self.round_ratio()),
            self.max_load_words.to_string(),
        ]
    }
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a TSV data row.
pub fn row(cols: &[String]) {
    println!("{}", cols.join("\t"));
}

/// `log₂ log₂ n`, the reference curve for the paper's round bounds.
pub fn log_log2(n: usize) -> f64 {
    (n.max(4) as f64).log2().log2()
}

/// Ratio `opt / got`, reported as the achieved approximation factor
/// (`inf` when `got` is zero but `opt` is not, 1 when both are zero).
pub fn approx_ratio(opt: f64, got: f64) -> f64 {
    if got > 0.0 {
        opt / got
    } else if opt == 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Minimum of a slice (`inf` for empty input).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice (`-inf` for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Renders an ASCII line chart of one or more named series over shared
/// x-labels — the "figures" of `EXPERIMENTS.md`.
///
/// Each series is drawn with its own glyph; points are plotted on a
/// `height`-row grid scaled to the global value range (y-axis annotated
/// left, x-labels below).
///
/// # Panics
///
/// Panics if series lengths disagree with `x_labels`, or `height < 2`.
///
/// # Examples
///
/// ```
/// use mmvc_bench::ascii_chart;
/// let chart = ascii_chart(
///     &["2^10".into(), "2^12".into(), "2^14".into()],
///     &[("ours", vec![10.0, 10.0, 11.0]), ("luby", vec![5.0, 6.0, 7.0])],
///     8,
/// );
/// assert!(chart.contains("ours"));
/// ```
pub fn ascii_chart(x_labels: &[String], series: &[(&str, Vec<f64>)], height: usize) -> String {
    assert!(height >= 2, "chart needs at least 2 rows");
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            x_labels.len(),
            "series `{name}` length must match x_labels"
        );
    }
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let (lo, hi) = (min(&all), max(&all));
    let span = (hi - lo).max(1e-12);
    let cols = x_labels.len();
    let col_width = 6usize;

    // Grid of rows (top = max).
    let mut grid = vec![vec![' '; cols * col_width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (ci, &y) in ys.iter().enumerate() {
            let row = ((hi - y) / span * (height - 1) as f64).round() as usize;
            let col = ci * col_width + col_width / 2;
            let cell = &mut grid[row.min(height - 1)][col];
            // Collisions between series show the later glyph.
            *cell = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>8.1} |")
        } else if i == height - 1 {
            format!("{lo:>8.1} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(cols * col_width)));
    out.push_str(&format!("{:>8}  ", ""));
    for l in x_labels {
        out.push_str(&format!("{l:^col_width$}"));
    }
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("{:>8}  legend: {}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmvc_substrate::{ExecutionTrace, RoundSummary};

    #[test]
    fn substrate_report_measures_any_substrate() {
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 7,
            total_words: 20,
        });
        t.record(RoundSummary {
            round: 2,
            max_load_words: 3,
            total_words: 4,
        });
        let r = SubstrateReport::measure(&t, 4.0);
        assert_eq!(r.substrate, "trace");
        assert_eq!(r.rounds, 2);
        assert_eq!(r.max_load_words, 7);
        assert_eq!(r.total_words, 24);
        assert!((r.round_ratio() - 0.5).abs() < 1e-12);
        let cells = r.cells();
        assert_eq!(cells.len(), SubstrateReport::COLUMNS.len());
        assert_eq!(cells[0], "2");
        assert_eq!(cells[2], "0.50");
    }

    #[test]
    fn executor_env_parsing() {
        // Only this test touches the variable, so set/remove is safe.
        std::env::remove_var("MMVC_EXECUTOR");
        assert_eq!(
            executor_from_env(),
            ExecutorConfig::threaded(),
            "unset variable must mean the threaded default"
        );
        std::env::set_var("MMVC_EXECUTOR", "seq");
        assert!(executor_from_env().is_sequential());
        std::env::set_var("MMVC_EXECUTOR", "4");
        assert_eq!(executor_from_env().threads(), 4);
        std::env::set_var("MMVC_EXECUTOR", "auto");
        assert!(executor_from_env().threads() >= 1);
        std::env::remove_var("MMVC_EXECUTOR");
    }

    #[test]
    fn round_ratio_edge_cases() {
        let empty = SubstrateReport::measure(&ExecutionTrace::new(), 0.0);
        assert_eq!(empty.round_ratio(), 1.0);
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 0,
            total_words: 0,
        });
        let r = SubstrateReport::measure(&t, 0.0);
        assert_eq!(r.round_ratio(), f64::INFINITY);
    }

    #[test]
    fn log_log_values() {
        assert!((log_log2(16) - 2.0).abs() < 1e-12);
        assert!((log_log2(65536) - 4.0).abs() < 1e-12);
        assert!(log_log2(0) > 0.0, "clamped to n=4");
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(approx_ratio(10.0, 5.0), 2.0);
        assert_eq!(approx_ratio(0.0, 0.0), 1.0);
        assert_eq!(approx_ratio(3.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(min(&[2.0, 1.0, 3.0]), 1.0);
        assert_eq!(max(&[2.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn chart_renders_all_parts() {
        let labels = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let chart = ascii_chart(
            &labels,
            &[("up", vec![1.0, 2.0, 3.0]), ("flat", vec![2.0, 2.0, 2.0])],
            6,
        );
        assert!(chart.contains("* up"));
        assert!(chart.contains("o flat"));
        assert!(chart.contains('a') && chart.contains('c'));
        assert!(chart.contains("3.0") && chart.contains("1.0"));
        assert_eq!(
            chart.lines().count(),
            6 + 3,
            "rows + axis + labels + legend"
        );
    }

    #[test]
    fn chart_constant_series_no_panic() {
        let labels = vec!["x".to_string()];
        let chart = ascii_chart(&labels, &[("c", vec![5.0])], 4);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn chart_length_mismatch_panics() {
        ascii_chart(&["a".to_string()], &[("s", vec![1.0, 2.0])], 4);
    }
}
