//! Shared helpers for the experiment binaries (`src/bin/exp_*.rs`), the
//! `bench_report` sweep, and the criterion benches of the `mmvc`
//! workspace.
//!
//! Each experiment binary regenerates one table of `EXPERIMENTS.md` by
//! declaring [`mmvc_core::run::RunSpec`]s and rendering the resulting
//! [`mmvc_core::run::RunReport`]s through the [`report`] layer — run
//! them as `cargo run --release -p mmvc-bench --bin exp_e1` (etc.), with
//! `MMVC_JSON_DIR=<dir>` to also capture JSON sidecars. The experiment
//! index lives in `DESIGN.md` §5.
//!
//! The [`json`] module is the hand-rolled (no-serde) document model
//! behind every machine-readable artifact: `BENCH_run.json`, the
//! per-experiment sidecars, and `mmvc run --json`.

pub mod json;
pub mod report;
pub mod tracefmt;

pub use json::Json;
pub use report::{
    bench_sweep, execute_sweep, finish_experiment, report_json, substrate_cells, sweep_json,
    SweepSummary, Table, SUBSTRATE_COLUMNS,
};

use mmvc_substrate::ExecutorConfig;

/// Resolves the executor the experiment binaries thread into algorithm
/// configs, from the `MMVC_EXECUTOR` environment variable:
///
/// * unset or `auto` — [`ExecutorConfig::threaded`] (the default);
/// * `seq` — [`ExecutorConfig::sequential`];
/// * a number `k` — [`ExecutorConfig::with_threads`]`(k)`.
///
/// Executors never change results (the round engine's determinism
/// contract), only wall-time, so every `EXPERIMENTS.md` table is
/// reproducible regardless of this setting.
///
/// # Panics
///
/// Panics on an unrecognised value — a misconfigured benchmark run should
/// fail loudly, not silently fall back.
pub fn executor_from_env() -> ExecutorConfig {
    match std::env::var("MMVC_EXECUTOR") {
        Err(_) => ExecutorConfig::threaded(),
        Ok(v) if v == "auto" => ExecutorConfig::threaded(),
        Ok(v) if v == "seq" => ExecutorConfig::sequential(),
        Ok(v) => match v.parse::<usize>() {
            Ok(k) => ExecutorConfig::with_threads(k),
            Err(_) => panic!("MMVC_EXECUTOR must be `seq`, `auto`, or a thread count, got `{v}`"),
        },
    }
}

/// Ratio `opt / got`, reported as the achieved approximation factor
/// (`inf` when `got` is zero but `opt` is not, 1 when both are zero).
pub fn approx_ratio(opt: f64, got: f64) -> f64 {
    if got > 0.0 {
        opt / got
    } else if opt == 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Minimum of a slice (`inf` for empty input).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice (`-inf` for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Renders an ASCII line chart of one or more named series over shared
/// x-labels — the "figures" of `EXPERIMENTS.md`.
///
/// Each series is drawn with its own glyph; points are plotted on a
/// `height`-row grid scaled to the global value range (y-axis annotated
/// left, x-labels below).
///
/// # Panics
///
/// Panics if series lengths disagree with `x_labels`, or `height < 2`.
///
/// # Examples
///
/// ```
/// use mmvc_bench::ascii_chart;
/// let chart = ascii_chart(
///     &["2^10".into(), "2^12".into(), "2^14".into()],
///     &[("ours", vec![10.0, 10.0, 11.0]), ("luby", vec![5.0, 6.0, 7.0])],
///     8,
/// );
/// assert!(chart.contains("ours"));
/// ```
pub fn ascii_chart(x_labels: &[String], series: &[(&str, Vec<f64>)], height: usize) -> String {
    assert!(height >= 2, "chart needs at least 2 rows");
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            x_labels.len(),
            "series `{name}` length must match x_labels"
        );
    }
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let (lo, hi) = (min(&all), max(&all));
    let span = (hi - lo).max(1e-12);
    let cols = x_labels.len();
    let col_width = 6usize;

    // Grid of rows (top = max).
    let mut grid = vec![vec![' '; cols * col_width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (ci, &y) in ys.iter().enumerate() {
            let row = ((hi - y) / span * (height - 1) as f64).round() as usize;
            let col = ci * col_width + col_width / 2;
            let cell = &mut grid[row.min(height - 1)][col];
            // Collisions between series show the later glyph.
            *cell = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>8.1} |")
        } else if i == height - 1 {
            format!("{lo:>8.1} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(cols * col_width)));
    out.push_str(&format!("{:>8}  ", ""));
    for l in x_labels {
        out.push_str(&format!("{l:^col_width$}"));
    }
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("{:>8}  legend: {}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_env_parsing() {
        // Only this test touches the variable, so set/remove is safe.
        std::env::remove_var("MMVC_EXECUTOR");
        assert_eq!(
            executor_from_env(),
            ExecutorConfig::threaded(),
            "unset variable must mean the threaded default"
        );
        std::env::set_var("MMVC_EXECUTOR", "seq");
        assert!(executor_from_env().is_sequential());
        std::env::set_var("MMVC_EXECUTOR", "4");
        assert_eq!(executor_from_env().threads(), 4);
        std::env::set_var("MMVC_EXECUTOR", "auto");
        assert!(executor_from_env().threads() >= 1);
        std::env::remove_var("MMVC_EXECUTOR");
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(approx_ratio(10.0, 5.0), 2.0);
        assert_eq!(approx_ratio(0.0, 0.0), 1.0);
        assert_eq!(approx_ratio(3.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(min(&[2.0, 1.0, 3.0]), 1.0);
        assert_eq!(max(&[2.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn chart_renders_all_parts() {
        let labels = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let chart = ascii_chart(
            &labels,
            &[("up", vec![1.0, 2.0, 3.0]), ("flat", vec![2.0, 2.0, 2.0])],
            6,
        );
        assert!(chart.contains("* up"));
        assert!(chart.contains("o flat"));
        assert!(chart.contains('a') && chart.contains('c'));
        assert!(chart.contains("3.0") && chart.contains("1.0"));
        assert_eq!(
            chart.lines().count(),
            6 + 3,
            "rows + axis + labels + legend"
        );
    }

    #[test]
    fn chart_constant_series_no_panic() {
        let labels = vec!["x".to_string()];
        let chart = ascii_chart(&labels, &[("c", vec![5.0])], 4);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn chart_length_mismatch_panics() {
        ascii_chart(&["a".to_string()], &[("s", vec![1.0, 2.0])], 4);
    }
}
