//! Wall-time scaling of the matching pipeline (experiment families
//! E3/E4/E6/E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmvc_core::matching::{
    central, central_rand, integral_matching, mpc_simulation, one_plus_eps_matching,
    weighted_matching, AugmentConfig, IntegralMatchingConfig, MpcMatchingConfig,
    WeightedMatchingConfig,
};
use mmvc_core::Epsilon;
use mmvc_graph::generators;
use mmvc_graph::weighted::WeightedGraph;

fn bench_matching(c: &mut Criterion) {
    let eps = Epsilon::new(0.1).expect("valid eps");

    let mut group = c.benchmark_group("fractional");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [10usize, 12] {
        let n = 1 << k;
        let g = generators::gnp(n, 32.0 / n as f64, k as u64).expect("valid p");
        group.bench_with_input(BenchmarkId::new("central", n), &g, |b, g| {
            b.iter(|| central(g, eps))
        });
        group.bench_with_input(BenchmarkId::new("central_rand", n), &g, |b, g| {
            b.iter(|| central_rand(g, eps, 1))
        });
        group.bench_with_input(BenchmarkId::new("mpc_simulation", n), &g, |b, g| {
            b.iter(|| mpc_simulation(g, &MpcMatchingConfig::new(eps, 1)).expect("fits"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("integral");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [10usize, 11] {
        let n = 1 << k;
        let g = generators::gnp(n, 16.0 / n as f64, k as u64).expect("valid p");
        group.bench_with_input(BenchmarkId::new("theorem_1_2", n), &g, |b, g| {
            b.iter(|| integral_matching(g, &IntegralMatchingConfig::new(eps, 1)).expect("fits"))
        });
        group.bench_with_input(BenchmarkId::new("corollary_1_3", n), &g, |b, g| {
            b.iter(|| one_plus_eps_matching(g, &AugmentConfig::new(eps, 1)).expect("fits"))
        });
        let wg = WeightedGraph::with_random_weights(g.clone(), 1.0, 100.0, 1).expect("valid range");
        group.bench_with_input(BenchmarkId::new("corollary_1_4", n), &wg, |b, wg| {
            b.iter(|| weighted_matching(wg, &WeightedMatchingConfig::new(eps, 1)).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
