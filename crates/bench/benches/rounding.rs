//! Wall-time of the Lemma 5.1 rounding and the exact reference solvers
//! (experiment family E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmvc_core::matching::{mpc_simulation, round_fractional, MpcMatchingConfig};
use mmvc_core::Epsilon;
use mmvc_graph::{generators, matching};

fn bench_rounding(c: &mut Criterion) {
    let eps = Epsilon::new(0.1).expect("valid eps");

    let mut group = c.benchmark_group("rounding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [11usize, 13] {
        let n = 1 << k;
        let g = generators::gnp(n, 32.0 / n as f64, k as u64).expect("valid p");
        let out = mpc_simulation(&g, &MpcMatchingConfig::new(eps, 1)).expect("fits");
        let candidates = out.heavy_certificate.clone();
        group.bench_with_input(
            BenchmarkId::new("lemma_5_1", n),
            &(&g, &out.fractional, &candidates),
            |b, (g, x, cands)| b.iter(|| round_fractional(g, x, cands, 7).expect("valid")),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("exact_reference");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [256usize, 1024] {
        let g = generators::gnp(n, 16.0 / n as f64, 3).expect("valid p");
        group.bench_with_input(BenchmarkId::new("blossom", n), &g, |b, g| {
            b.iter(|| matching::blossom(g))
        });
        let bip = generators::bipartite_gnp(n, n, 16.0 / n as f64, 3).expect("valid p");
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &bip, |b, g| {
            b.iter(|| matching::hopcroft_karp(g).expect("bipartite"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounding);
criterion_main!(benches);
