//! Wall-time scaling of the MIS algorithms (experiment families E1/E7/E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmvc_core::baselines::luby_mis;
use mmvc_core::mis::{clique_mis, greedy_mpc_mis, CliqueMisConfig, GreedyMisConfig};
use mmvc_graph::{generators, mis};

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [10usize, 12] {
        let n = 1 << k;
        let g = generators::gnp(n, 64.0 / n as f64, k as u64).expect("valid p");
        group.bench_with_input(BenchmarkId::new("greedy_mpc", n), &g, |b, g| {
            b.iter(|| greedy_mpc_mis(g, &GreedyMisConfig::new(1)).expect("fits"))
        });
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            b.iter(|| luby_mis(g, 1))
        });
        group.bench_with_input(BenchmarkId::new("sequential_greedy", n), &g, |b, g| {
            b.iter(|| mis::randomized_greedy_mis(g, 1))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mis_clique");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [9usize, 11] {
        let n = 1 << k;
        let g = generators::gnp(n, 64.0 / n as f64, k as u64).expect("valid p");
        group.bench_with_input(BenchmarkId::new("clique", n), &g, |b, g| {
            b.iter(|| clique_mis(g, &CliqueMisConfig::new(1)).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
