//! Wall-time of the substrate primitives: graph generation, vertex
//! partitioning, MPC round metering, and clique routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmvc_clique::CliqueNetwork;
use mmvc_graph::generators;
use mmvc_mpc::{random_vertex_partition, Cluster, MpcConfig};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [12usize, 14] {
        let n = 1 << k;
        group.bench_with_input(BenchmarkId::new("gnp_deg64", n), &n, |b, &n| {
            b.iter(|| generators::gnp(n, 64.0 / n as f64, 1).expect("valid p"))
        });
        group.bench_with_input(BenchmarkId::new("power_law", n), &n, |b, &n| {
            b.iter(|| generators::power_law(n, 2.5, 16.0, 1).expect("valid params"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mpc_substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let vertices: Vec<u32> = (0..1u32 << 16).collect();
    group.bench_function("partition_64k_into_256", |b| {
        b.iter(|| random_vertex_partition(&vertices, 256, 7))
    });
    group.bench_function("cluster_1000_rounds", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(MpcConfig::new(64, 1 << 20).expect("valid"));
            for _ in 0..1000 {
                cl.round(|r| r.broadcast(100)).expect("within budget");
            }
            cl.trace().rounds()
        })
    });
    group.bench_function("mpc_sort_100k", |b| {
        let items: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B9))
            .collect();
        b.iter(|| {
            let mut cl = Cluster::new(MpcConfig::new(32, 1 << 20).expect("valid"));
            mmvc_mpc::mpc_sort(&mut cl, &items).expect("fits")
        })
    });
    group.finish();

    let mut group = c.benchmark_group("clique_substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("lenzen_route_4096_msgs", |b| {
        let msgs: Vec<(usize, usize, usize)> =
            (0..4096).map(|i| (i % 512, (i * 7 + 1) % 512, 1)).collect();
        b.iter(|| {
            let mut net = CliqueNetwork::new(512).expect("valid");
            net.lenzen_route(&msgs).expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
