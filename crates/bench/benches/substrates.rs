//! Wall-time of the substrate primitives: graph generation, vertex
//! partitioning, MPC round metering, clique routing, and the round
//! engine's sequential-vs-threaded executors on both substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmvc_clique::CliqueNetwork;
use mmvc_core::mis::{clique_mis, greedy_mpc_mis, CliqueMisConfig, GreedyMisConfig};
use mmvc_graph::generators;
use mmvc_mpc::{random_vertex_partition, Cluster, MpcConfig};
use mmvc_substrate::{ExecutorConfig, Substrate};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [12usize, 14] {
        let n = 1 << k;
        group.bench_with_input(BenchmarkId::new("gnp_deg64", n), &n, |b, &n| {
            b.iter(|| generators::gnp(n, 64.0 / n as f64, 1).expect("valid p"))
        });
        group.bench_with_input(BenchmarkId::new("power_law", n), &n, |b, &n| {
            b.iter(|| generators::power_law(n, 2.5, 16.0, 1).expect("valid params"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mpc_substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let vertices: Vec<u32> = (0..1u32 << 16).collect();
    group.bench_function("partition_64k_into_256", |b| {
        b.iter(|| random_vertex_partition(&vertices, 256, 7))
    });
    group.bench_function("cluster_1000_rounds", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(MpcConfig::new(64, 1 << 20).expect("valid"));
            for _ in 0..1000 {
                cl.round(|r| r.broadcast(100)).expect("within budget");
            }
            cl.rounds()
        })
    });
    group.bench_function("mpc_sort_100k", |b| {
        let items: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B9))
            .collect();
        b.iter(|| {
            let mut cl = Cluster::new(MpcConfig::new(32, 1 << 20).expect("valid"));
            mmvc_mpc::mpc_sort(&mut cl, &items).expect("fits")
        })
    });
    group.finish();

    let mut group = c.benchmark_group("clique_substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("lenzen_route_4096_msgs", |b| {
        let msgs: Vec<(usize, usize, usize)> =
            (0..4096).map(|i| (i % 512, (i * 7 + 1) % 512, 1)).collect();
        b.iter(|| {
            let mut net = CliqueNetwork::new(512).expect("valid");
            net.lenzen_route(&msgs).expect("feasible")
        })
    });
    group.finish();

    // The round engine: the same seeded MIS run under the sequential and
    // the threaded executor, on both substrates. Outcomes are identical by
    // construction (the engine's determinism contract); only wall-time may
    // differ.
    let mut group = c.benchmark_group("round_engine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    // Dense enough (Δ ≈ 410 > log² n) that the prefix-phase loop — the
    // executor-parallel per-machine work — genuinely runs.
    let n = 1usize << 13;
    let g = generators::gnp(n, 0.05, 1).expect("valid p");
    for (name, exec) in [
        ("sequential", ExecutorConfig::sequential()),
        ("threaded", ExecutorConfig::threaded()),
    ] {
        group.bench_with_input(BenchmarkId::new("mpc_mis_8k", name), &exec, |b, exec| {
            b.iter(|| {
                let mut cfg = GreedyMisConfig::new(1);
                cfg.executor = exec.clone();
                greedy_mpc_mis(&g, &cfg).expect("fits budget").mis.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("clique_mis_8k", name), &exec, |b, exec| {
            b.iter(|| {
                let mut cfg = CliqueMisConfig::new(1);
                cfg.executor = exec.clone();
                clique_mis(&g, &cfg).expect("feasible routing").mis.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
