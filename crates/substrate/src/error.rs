//! The substrate-agnostic error type.
//!
//! Both simulated substrates (`mmvc-mpc`, `mmvc-clique`) keep their own
//! model-specific error enums — a memory-budget violation names a machine,
//! a bandwidth violation names a link — but every variant converts into
//! [`SubstrateError`] (each substrate crate provides the `From` impl), so
//! harness code can handle "the substrate rejected this execution"
//! uniformly without matching on which substrate ran.

use std::error::Error;
use std::fmt;

/// A substrate-agnostic view of a simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubstrateError {
    /// A per-round capacity (machine memory, link bandwidth, routing
    /// precondition…) was exceeded.
    LoadExceeded {
        /// Which substrate rejected the execution (e.g. `"mpc"`).
        substrate: &'static str,
        /// What overflowed, e.g. `"machine 3"` or `"link 0->1"`.
        location: String,
        /// The round of the violation (1-based), if attributable.
        round: Option<usize>,
        /// Words that would have been held/sent.
        attempted_words: usize,
        /// The configured capacity in words.
        budget_words: usize,
    },
    /// An operation referenced a machine/player id out of range.
    InvalidAddress {
        /// Which substrate rejected the operation.
        substrate: &'static str,
        /// The offending id.
        address: usize,
        /// Number of machines/players available.
        limit: usize,
    },
    /// An operation requiring an open round was invoked outside one, or a
    /// round was opened twice.
    RoundProtocol {
        /// Which substrate rejected the operation.
        substrate: &'static str,
        /// Description of the misuse.
        message: &'static str,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Which substrate rejected the configuration.
        substrate: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// A wire frame could not be decoded (bad magic, unsupported
    /// version, oversized payload, checksum mismatch…). The byte stream
    /// can no longer be trusted to frame a next message, so transport
    /// code closes the connection after reporting it.
    Frame {
        /// Description of the framing violation.
        message: String,
    },
    /// A networked party misbehaved or became unreachable during a
    /// distributed round. Always names the offending party and the round
    /// in which the failure was detected (`round` is 1-based; 0 means the
    /// failure happened during the connection handshake, before any
    /// round opened).
    Net {
        /// The 0-based id of the offending party.
        party: usize,
        /// The round in which the failure surfaced (0 = handshake).
        round: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateError::LoadExceeded {
                substrate,
                location,
                round,
                attempted_words,
                budget_words,
            } => {
                write!(f, "[{substrate}] {location} exceeded its capacity")?;
                if let Some(round) = round {
                    write!(f, " in round {round}")?;
                }
                write!(f, ": {attempted_words} words > budget {budget_words}")
            }
            SubstrateError::InvalidAddress {
                substrate,
                address,
                limit,
            } => write!(
                f,
                "[{substrate}] id {address} does not exist (substrate has {limit})"
            ),
            SubstrateError::RoundProtocol { substrate, message } => {
                write!(f, "[{substrate}] round protocol violation: {message}")
            }
            SubstrateError::InvalidConfig { substrate, message } => {
                write!(f, "[{substrate}] invalid configuration: {message}")
            }
            SubstrateError::Frame { message } => {
                write!(f, "[net] frame error: {message}")
            }
            SubstrateError::Net {
                party,
                round,
                message,
            } => {
                if *round == 0 {
                    write!(f, "[net] party {party} failed during handshake: {message}")
                } else {
                    write!(f, "[net] party {party} failed in round {round}: {message}")
                }
            }
        }
    }
}

impl Error for SubstrateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = SubstrateError::LoadExceeded {
            substrate: "mpc",
            location: "machine 3".into(),
            round: Some(7),
            attempted_words: 1000,
            budget_words: 100,
        };
        let s = e.to_string();
        assert!(s.contains("[mpc]") && s.contains("machine 3"));
        assert!(s.contains("round 7") && s.contains("1000"));

        let e = SubstrateError::LoadExceeded {
            substrate: "congested-clique",
            location: "player 2 as sender".into(),
            round: None,
            attempted_words: 9,
            budget_words: 4,
        };
        assert!(!e.to_string().contains("round"));

        assert!(SubstrateError::InvalidAddress {
            substrate: "mpc",
            address: 9,
            limit: 4
        }
        .to_string()
        .contains("id 9"));

        assert!(SubstrateError::RoundProtocol {
            substrate: "mpc",
            message: "round already open"
        }
        .to_string()
        .contains("already open"));

        assert!(SubstrateError::InvalidConfig {
            substrate: "congested-clique",
            message: "need at least one player".into()
        }
        .to_string()
        .contains("one player"));

        assert!(SubstrateError::Frame {
            message: "checksum mismatch".into()
        }
        .to_string()
        .contains("checksum"));

        let e = SubstrateError::Net {
            party: 2,
            round: 3,
            message: "connection reset".into(),
        };
        let s = e.to_string();
        assert!(s.contains("party 2") && s.contains("round 3"));
        let e = SubstrateError::Net {
            party: 1,
            round: 0,
            message: "no hello".into(),
        };
        assert!(e.to_string().contains("handshake"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(SubstrateError::RoundProtocol {
            substrate: "mpc",
            message: "x",
        });
        assert!(e.to_string().contains("x"));
    }
}
