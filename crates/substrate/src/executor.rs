//! Deterministic parallel execution of per-machine / per-player work.
//!
//! Both substrates simulate "every machine computes locally" steps. This
//! module runs those closures on real OS threads while keeping results
//! **byte-identical to sequential execution**, so the regression pins and
//! the paper's seeded reproducibility survive any thread count:
//!
//! * the caller fixes the task decomposition (one task per machine, or
//!   fixed-size index chunks via [`ExecutorConfig::run_chunked`]) —
//!   task boundaries never depend on the thread count;
//! * each task writes its result into its own indexed slot, and results
//!   are returned in task order;
//! * tasks must be pure functions of their index and captured shared
//!   state (the paper's algorithms already split their randomness per
//!   vertex/machine up front via stateless hashing, so there is no
//!   cross-task RNG to race on).
//!
//! Under those rules, `Sequential` and `Threaded` with *any* thread count
//! produce the same output vector, and any order-independent reduction
//! (integer sums/counts, `min`/`max`, concatenation in task order) of
//! that vector is schedule-independent too. Floating-point *sums* are the
//! one reduction that is order-sensitive; callers keep those in a fixed
//! order (the algorithms accumulate `f64` totals sequentially over the
//! returned per-task values).
//!
//! The thread count is resolved **once**, when the config is built —
//! never per round — and tiny rounds degrade to the sequential path
//! instead of spawning threads.
//!
//! ```
//! use mmvc_substrate::ExecutorConfig;
//!
//! let exec = ExecutorConfig::threaded(); // resolved thread count
//! let squares = exec.run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Identical results on the sequential path.
//! assert_eq!(ExecutorConfig::sequential().run(8, |i| i * i), squares);
//! ```

use crate::{ChargeLog, ScratchPool, Telemetry};

/// Task counts below this run sequentially by default — spawning a thread
/// costs more than a trivial round saves.
const DEFAULT_SEQUENTIAL_BELOW: usize = 2;

/// How per-machine / per-player closures execute within a round: on the
/// calling thread, or fanned out over a fixed pool of scoped OS threads.
///
/// Results are deterministic and schedule-independent by construction —
/// see the module-level docs for the rules that guarantee it. The config
/// is `Clone` and cheap to pass around (cloning shares the attached
/// scratch arena, it never copies buffers); build it once at the top of
/// a run (it resolves [`std::thread::available_parallelism`] at
/// construction, not per round) and thread it through algorithm configs.
///
/// An optional [`ScratchPool`] rides along
/// ([`with_scratch`](Self::with_scratch)): the builder, generators and
/// per-round scans draw their working buffers from it via
/// [`take_u32`](Self::take_u32) / [`take_u64`](Self::take_u64), so
/// repeated builds stop re-allocating. Configs without a pool fall back
/// to plain allocation — behaviour, and therefore every byte of output,
/// is identical either way. A [`Telemetry`] sink rides along the same
/// way ([`with_telemetry`](Self::with_telemetry)): chunked/slab rounds
/// emit batch spans when it is enabled, and a disabled sink costs one
/// load per round. Equality ignores both the pool and the sink: two
/// configs are equal iff they execute identically.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    threads: usize,
    sequential_below: usize,
    scratch: Option<ScratchPool>,
    telemetry: Telemetry,
    charge_log: Option<ChargeLog>,
}

impl PartialEq for ExecutorConfig {
    /// Pool- and telemetry-blind: equality compares the execution
    /// parameters only — observers never change what a config computes.
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads && self.sequential_below == other.sequential_below
    }
}

impl Eq for ExecutorConfig {}

impl ExecutorConfig {
    /// Runs every task on the calling thread.
    pub fn sequential() -> Self {
        ExecutorConfig {
            threads: 1,
            sequential_below: DEFAULT_SEQUENTIAL_BELOW,
            scratch: None,
            telemetry: Telemetry::disabled(),
            charge_log: None,
        }
    }

    /// Threaded execution with the machine's available parallelism,
    /// resolved now (once), not per round.
    pub fn threaded() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// Threaded execution with an explicit thread count (clamped to at
    /// least 1; `with_threads(1)` is equivalent to
    /// [`sequential`](Self::sequential)).
    pub fn with_threads(threads: usize) -> Self {
        ExecutorConfig {
            threads: threads.max(1),
            sequential_below: DEFAULT_SEQUENTIAL_BELOW,
            scratch: None,
            telemetry: Telemetry::disabled(),
            charge_log: None,
        }
    }

    /// Attaches a telemetry sink; chunked/slab rounds threaded over
    /// this config emit batch spans into it when it is enabled. The
    /// sink is an observer only — outputs are byte-identical with any
    /// sink attached or none.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The attached telemetry sink (the default is a disabled,
    /// sinkless handle).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a [`ChargeLog`]: round ledgers driven through this
    /// config record every completed round's per-slot loads into it —
    /// the replay channel of the distributed transport layer. Like the
    /// telemetry sink, the log is a pure observer: metered numbers are
    /// byte-identical with or without it.
    #[must_use]
    pub fn with_charge_log(mut self, log: &ChargeLog) -> Self {
        self.charge_log = Some(log.clone());
        self
    }

    /// The attached charge log, if any.
    pub fn charge_log(&self) -> Option<&ChargeLog> {
        self.charge_log.as_ref()
    }

    /// Attaches a scratch arena; buffer-hungry passes threaded over this
    /// config will draw from (and recycle into) `pool`.
    #[must_use]
    pub fn with_scratch(mut self, pool: &ScratchPool) -> Self {
        self.scratch = Some(pool.clone());
        self
    }

    /// Ensures a scratch arena is attached, creating a fresh one if
    /// needed. The run driver calls this once per run so every round
    /// shares one arena.
    #[must_use]
    pub fn ensure_scratch(mut self) -> Self {
        if self.scratch.is_none() {
            self.scratch = Some(ScratchPool::new());
        }
        self
    }

    /// The attached scratch arena, if any.
    pub fn scratch(&self) -> Option<&ScratchPool> {
        self.scratch.as_ref()
    }

    /// Takes an empty `Vec<u32>` with at least `min_cap` capacity from
    /// the attached arena, or allocates fresh when no pool is attached.
    pub fn take_u32(&self, min_cap: usize) -> Vec<u32> {
        match &self.scratch {
            Some(p) => p.take_u32(min_cap),
            None => Vec::with_capacity(min_cap),
        }
    }

    /// Returns a `u32` buffer to the attached arena (dropped when no
    /// pool is attached).
    pub fn recycle_u32(&self, buf: Vec<u32>) {
        if let Some(p) = &self.scratch {
            p.recycle_u32(buf);
        }
    }

    /// Takes an empty `Vec<u64>` with at least `min_cap` capacity from
    /// the attached arena, or allocates fresh when no pool is attached.
    pub fn take_u64(&self, min_cap: usize) -> Vec<u64> {
        match &self.scratch {
            Some(p) => p.take_u64(min_cap),
            None => Vec::with_capacity(min_cap),
        }
    }

    /// Returns a `u64` buffer to the attached arena (dropped when no
    /// pool is attached).
    pub fn recycle_u64(&self, buf: Vec<u64>) {
        if let Some(p) = &self.scratch {
            p.recycle_u64(buf);
        }
    }

    /// Sets the task count below which a round short-circuits to the
    /// sequential path (default: 2, i.e. single-task rounds never spawn).
    #[must_use]
    pub fn sequential_below(mut self, tasks: usize) -> Self {
        self.sequential_below = tasks;
        self
    }

    /// The resolved thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this config always takes the sequential path.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Runs `tasks` closure invocations (task index `0..tasks`) and
    /// returns their results in task order.
    ///
    /// Tasks run concurrently when the config is threaded and the round
    /// is large enough; the output is identical either way. Each task's
    /// result is written to its own indexed slot — no locks, no
    /// reordering.
    pub fn run<T, F>(&self, tasks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(tasks);
        if threads <= 1 || tasks < self.sequential_below {
            return (0..tasks).map(work).collect();
        }
        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let chunk = tasks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let work = &work;
                scope.spawn(move || {
                    let base = ci * chunk;
                    for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(work(base + offset));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every task slot filled"))
            .collect()
    }

    /// Splits `0..items` into fixed-size chunks of `chunk_size` indices,
    /// runs `work` on each chunk range, and returns the per-chunk results
    /// in chunk order.
    ///
    /// Chunk boundaries depend only on `items` and `chunk_size` — never
    /// on the thread count — so reducing the returned vector in order is
    /// schedule-independent. This is the workhorse for "scan all
    /// vertices/edges in parallel" steps.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn run_chunked<T, F>(&self, items: usize, chunk_size: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let tasks = items.div_ceil(chunk_size);
        let _span = self
            .telemetry
            .span("exec.run_chunked")
            .with_arg("items", items as u64)
            .with_arg("tasks", tasks as u64)
            .with_arg("threads", self.threads.min(tasks.max(1)) as u64);
        self.run(tasks, |t| {
            let start = t * chunk_size;
            work(start..(start + chunk_size).min(items))
        })
    }

    /// Splits `data` at the caller-fixed `bounds` (ascending offsets,
    /// `bounds[0] == 0`, `bounds[last] == data.len()`) into one disjoint
    /// mutable slab per task and runs `work(task_index, slab)` on each,
    /// returning the per-task results in task order.
    ///
    /// This is the primitive that lets the counting-sort graph builder
    /// scatter into a **single** flat (pooled) buffer from many tasks at
    /// once without locks or unsafe: the borrow is split up front, the
    /// slab boundaries depend only on the input, and each task owns its
    /// slab exclusively — so the buffer contents are byte-identical for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ascending cover of `data`.
    pub fn run_slabs<T, R, F>(&self, data: &mut [T], bounds: &[usize], work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        assert!(
            !bounds.is_empty() && bounds[0] == 0 && bounds[bounds.len() - 1] == data.len(),
            "bounds must cover data exactly"
        );
        let tasks = bounds.len() - 1;
        if tasks == 0 {
            return Vec::new();
        }
        let _span = self
            .telemetry
            .span("exec.run_slabs")
            .with_arg("tasks", tasks as u64)
            .with_arg("len", data.len() as u64);
        // Split the single borrow into per-task slabs up front.
        let mut slabs: Vec<&mut [T]> = Vec::with_capacity(tasks);
        let mut rest = data;
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "bounds must be ascending");
            let (slab, tail) = rest.split_at_mut(w[1] - w[0]);
            slabs.push(slab);
            rest = tail;
        }
        let threads = self.threads.min(tasks);
        if threads <= 1 || tasks < self.sequential_below {
            return slabs
                .iter_mut()
                .enumerate()
                .map(|(i, slab)| work(i, slab))
                .collect();
        }
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        let chunk = tasks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, (slab_chunk, slot_chunk)) in slabs
                .chunks_mut(chunk)
                .zip(slots.chunks_mut(chunk))
                .enumerate()
            {
                let work = &work;
                scope.spawn(move || {
                    let base = ci * chunk;
                    for (off, (slab, slot)) in
                        slab_chunk.iter_mut().zip(slot_chunk.iter_mut()).enumerate()
                    {
                        *slot = Some(work(base + off, slab));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every slab slot filled"))
            .collect()
    }
}

impl Default for ExecutorConfig {
    /// The default is [`threaded`](ExecutorConfig::threaded): every
    /// algorithm is multicore by construction, and determinism is
    /// guaranteed by the execution rules rather than by staying
    /// single-threaded.
    fn default() -> Self {
        Self::threaded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_and_threaded_agree() {
        let work = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        let expect: Vec<usize> = (0..1000).map(work).collect();
        for exec in [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(1),
            ExecutorConfig::with_threads(2),
            ExecutorConfig::with_threads(3),
            ExecutorConfig::with_threads(8),
            ExecutorConfig::threaded(),
        ] {
            assert_eq!(exec.run(1000, work), expect);
        }
    }

    #[test]
    fn zero_and_one_task() {
        let exec = ExecutorConfig::with_threads(4);
        assert!(exec.run(0, |i| i).is_empty());
        assert_eq!(exec.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let exec = ExecutorConfig::with_threads(4).sequential_below(0);
        let out = exec.run(37, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 37);
        assert_eq!(out, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_rounds_degrade_to_sequential() {
        // With the threshold above the task count the work runs on the
        // calling thread; observable via thread id equality.
        let exec = ExecutorConfig::with_threads(8).sequential_below(100);
        let main_id = std::thread::current().id();
        let ids = exec.run(10, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn run_chunked_covers_every_index_once() {
        let exec = ExecutorConfig::with_threads(3);
        for items in [0usize, 1, 9, 10, 11, 100] {
            let chunks = exec.run_chunked(items, 10, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..items).collect::<Vec<_>>(), "items={items}");
        }
    }

    #[test]
    fn chunk_boundaries_independent_of_threads() {
        // The per-chunk results must be identical across thread counts —
        // the property every deterministic reduction relies on.
        let sums =
            |exec: ExecutorConfig| exec.run_chunked(1000, 64, |r| r.map(|i| i * i).sum::<usize>());
        let base = sums(ExecutorConfig::sequential());
        for t in [2, 3, 8, 16] {
            assert_eq!(sums(ExecutorConfig::with_threads(t)), base);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn zero_chunk_size_panics() {
        ExecutorConfig::sequential().run_chunked(10, 0, |_| ());
    }

    #[test]
    fn run_slabs_writes_disjoint_slabs_identically_across_threads() {
        let bounds = [0usize, 3, 3, 10, 16];
        let expect: Vec<u32> = {
            let mut d = vec![0u32; 16];
            let mut b = ExecutorConfig::sequential();
            b = b.sequential_below(0);
            let lens = b.run_slabs(&mut d, &bounds, |i, slab| {
                for (k, x) in slab.iter_mut().enumerate() {
                    *x = (i as u32) * 100 + k as u32;
                }
                slab.len()
            });
            assert_eq!(lens, vec![3, 0, 7, 6]);
            d
        };
        for t in [2, 3, 8] {
            let mut d = vec![0u32; 16];
            let lens = ExecutorConfig::with_threads(t)
                .sequential_below(0)
                .run_slabs(&mut d, &bounds, |i, slab| {
                    for (k, x) in slab.iter_mut().enumerate() {
                        *x = (i as u32) * 100 + k as u32;
                    }
                    slab.len()
                });
            assert_eq!(lens, vec![3, 0, 7, 6], "{t} threads");
            assert_eq!(d, expect, "{t} threads");
        }
    }

    #[test]
    #[should_panic(expected = "cover data exactly")]
    fn run_slabs_rejects_partial_cover() {
        let mut d = vec![0u32; 4];
        ExecutorConfig::sequential().run_slabs(&mut d, &[0, 2], |_, _| ());
    }

    #[test]
    fn scratch_helpers_fall_back_without_a_pool() {
        let exec = ExecutorConfig::sequential();
        assert!(exec.scratch().is_none());
        let b = exec.take_u32(10);
        assert!(b.capacity() >= 10);
        exec.recycle_u32(b); // dropped, no pool

        let pooled = exec.clone().ensure_scratch();
        assert!(pooled.scratch().is_some());
        pooled.recycle_u64(Vec::with_capacity(8));
        let b = pooled.take_u64(4);
        assert_eq!(pooled.scratch().unwrap().stats().reuses, 1);
        pooled.recycle_u64(b);
        // ensure_scratch is idempotent: the arena is preserved.
        let again = pooled.clone().ensure_scratch();
        assert_eq!(again.scratch().unwrap().stats().reuses, 1);
    }

    #[test]
    fn equality_is_pool_blind() {
        let a = ExecutorConfig::with_threads(4);
        let b = ExecutorConfig::with_threads(4).ensure_scratch();
        assert_eq!(a, b);
        assert_ne!(a, ExecutorConfig::with_threads(2));
    }

    #[test]
    fn telemetry_is_an_observer() {
        let tel = Telemetry::recording();
        let plain = ExecutorConfig::with_threads(3);
        let traced = ExecutorConfig::with_threads(3).with_telemetry(&tel);
        assert_eq!(plain, traced, "equality is telemetry-blind");
        let work = |r: std::ops::Range<usize>| r.sum::<usize>();
        assert_eq!(
            traced.run_chunked(100, 8, work),
            plain.run_chunked(100, 8, work),
            "outputs identical with a sink attached"
        );
        let events = tel.drain();
        let batch = events
            .iter()
            .find(|e| e.name == "exec.run_chunked")
            .expect("chunked rounds emit a batch span");
        assert!(batch.args.contains(&("items", 100)));
        assert!(batch.args.contains(&("tasks", 13)));
        assert!(!plain.telemetry().is_enabled());
    }

    #[test]
    fn accessors() {
        assert!(ExecutorConfig::sequential().is_sequential());
        assert_eq!(ExecutorConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecutorConfig::with_threads(5).threads(), 5);
        assert!(!ExecutorConfig::with_threads(5).is_sequential());
        assert!(ExecutorConfig::default().threads() >= 1);
    }
}
