//! A fixed-size pool of long-lived worker threads for *streams* of jobs.
//!
//! [`ExecutorConfig`](crate::ExecutorConfig) covers the batch case: a
//! round of `n` tasks known up front, fanned out over scoped threads and
//! joined before the round ends. A server cannot use that shape — jobs
//! (connections, requests) arrive over time and must not block the
//! producer. [`WorkerPool`] is the streaming counterpart: `workers`
//! threads started once, consuming submitted closures from a shared
//! queue until the pool is dropped.
//!
//! The determinism discipline is the same one the round engine enforces,
//! restated for streams:
//!
//! * the pool guarantees **every submitted job runs exactly once**, but
//!   makes **no ordering or placement promises** — which worker runs a
//!   job, and in what interleaving, is scheduling noise;
//! * therefore a job's *output* must be a pure function of its *input*
//!   (for `mmvc-serve`: the response body is a function of the request
//!   bytes alone, never of worker identity, queue position, or shared
//!   mutable state beyond commutative counters);
//! * under that rule, any observer that keys results by job identity
//!   sees identical outcomes for every worker count — the serving analog
//!   of "`Sequential` and `Threaded{k}` are byte-identical".
//!
//! ## Request-shaped jobs and [`Completions`]
//!
//! The pool's original consumer submitted *connection*-shaped jobs: one
//! closure owned a socket end to end, so a slow peer pinned its worker
//! for the connection's whole lifetime. The serving reactor submits
//! *request*-shaped jobs instead — a job is one parsed request, its
//! output one response — and the socket never enters the pool. That
//! shape needs a return path from workers to a consumer that must not
//! block on a channel: [`Completions<T>`] is that mailbox, a
//! lock-protected outbox workers `push` into and a polling consumer
//! `drain`s in its own loop. Ordering restoration (responses on a
//! pipelined connection must leave in request order, whichever worker
//! finished first) is deliberately the *consumer's* job — the pool and
//! the mailbox stay order-free, which is what keeps the exactly-once
//! contract trivial.
//!
//! ```
//! use mmvc_substrate::WorkerPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let mut pool = WorkerPool::new(4);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..100 {
//!     let hits = Arc::clone(&hits);
//!     pool.submit(move || {
//!         hits.fetch_add(1, Ordering::SeqCst);
//!     });
//! }
//! pool.join();
//! assert_eq!(hits.load(Ordering::SeqCst), 100);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job: a boxed closure run once on some worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared queue state between the submitting side and the workers.
struct PoolState {
    /// Pending jobs, FIFO. Order of *dequeue* is FIFO too, but jobs on
    /// different workers still complete in any interleaving.
    queue: VecDeque<Job>,
    /// Jobs currently executing on some worker.
    running: usize,
    /// Set once by [`WorkerPool::drop`]/[`WorkerPool::join`]; workers
    /// drain the queue and then exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers (new job / shutdown) and joiners (queue drained).
    work_cv: Condvar,
    idle_cv: Condvar,
}

/// A fixed-size pool of long-lived worker threads consuming a stream of
/// submitted jobs (see the module docs for the determinism contract).
///
/// Dropping the pool drains every queued job, then joins all workers —
/// no submitted work is lost.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Starts a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues a job for execution on some worker.
    ///
    /// # Panics
    ///
    /// Panics if called after [`join`](Self::join) — submitting to a
    /// stopped pool would silently drop the job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.shutdown {
            // Release the lock before panicking so the pool's own Drop
            // (running during unwind) does not see a poisoned mutex.
            drop(state);
            panic!("submit after WorkerPool::join");
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_cv.notify_one();
    }

    /// Jobs submitted but not yet started.
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Blocks until every submitted job has finished, then stops and
    /// joins all workers. Idempotent; also called by `Drop`.
    pub fn join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
            while !state.queue.is_empty() || state.running > 0 {
                state = self.shared.idle_cv.wait(state).expect("pool lock poisoned");
            }
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join();
    }
}

/// A completion mailbox for request-shaped [`WorkerPool`] jobs: workers
/// [`push`](Completions::push) finished results, a polling consumer
/// [`drain_into`](Completions::drain_into)s them in its own loop (see
/// the module docs). No ordering is promised — results arrive in
/// completion order, and a consumer that needs request order must
/// restore it from the identity it attached to each job.
///
/// Both sides touch the lock only long enough to move values;
/// `drain_into` swaps the whole buffer out, so a burst of completions
/// costs the consumer one lock acquisition, not one per result.
#[derive(Debug)]
pub struct Completions<T> {
    inner: Mutex<Vec<T>>,
}

impl<T> Default for Completions<T> {
    fn default() -> Self {
        Completions::new()
    }
}

impl<T> Completions<T> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Completions {
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Deposits one finished result (called from worker jobs).
    pub fn push(&self, value: T) {
        self.lock().push(value);
    }

    /// Takes every deposited result, reusing `into`'s allocation: `into`
    /// is cleared, then swapped with the internal buffer, so steady-state
    /// polling allocates nothing.
    pub fn drain_into(&self, into: &mut Vec<T>) {
        into.clear();
        std::mem::swap(&mut *self.lock(), into);
    }

    /// Whether any results are waiting (a cheap pre-check for pollers).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Recovers from poisoning: the buffer is a plain `Vec` that is
    /// internally consistent at every lock release, so an unwinding
    /// holder cannot corrupt it — and one panicking worker must not wedge
    /// the consumer forever.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Decrements `running` (and wakes joiners) even if the job panics, so
/// a panicking job can never leave [`WorkerPool::join`] waiting forever.
struct RunningGuard<'a>(&'a PoolShared);

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("pool lock poisoned");
        state.running -= 1;
        if state.queue.is_empty() && state.running == 0 {
            self.0.idle_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_cv.wait(state).expect("pool lock poisoned");
            }
        };
        let _guard = RunningGuard(shared);
        // A panicking job must not kill its worker: an unwinding thread
        // would silently shrink the pool (and, once every worker died,
        // leave queued jobs undrained and `join` waiting forever). The
        // panic is contained to the job; the worker lives on.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_job_runs_exactly_once() {
        for workers in [1, 2, 7] {
            let mut pool = WorkerPool::new(workers);
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..250 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::SeqCst), 250, "workers={workers}");
        }
    }

    #[test]
    fn results_keyed_by_job_are_worker_count_independent() {
        // The serving determinism contract: each job writes a pure
        // function of its own input into its own slot.
        let compute = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i >> 3);
        let run = |workers: usize| {
            let mut pool = WorkerPool::new(workers);
            let slots: Arc<Vec<AtomicUsize>> =
                Arc::new((0..64).map(|_| AtomicUsize::new(0)).collect());
            for i in 0..64 {
                let slots = Arc::clone(&slots);
                pool.submit(move || {
                    slots[i].store(compute(i), Ordering::SeqCst);
                });
            }
            pool.join();
            slots
                .iter()
                .map(|s| s.load(Ordering::SeqCst))
                .collect::<Vec<_>>()
        };
        let base = run(1);
        for workers in [2, 4, 9] {
            assert_eq!(run(workers), base);
        }
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..40 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropped here with jobs likely still queued.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        // Even on a single-worker pool, jobs after a panicking one still
        // run, and join() completes instead of waiting forever.
        let mut pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("job {i} exploded");
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            13,
            "non-panicking jobs all ran"
        );
    }

    #[test]
    #[should_panic(expected = "submit after")]
    fn submit_after_join_panics() {
        let mut pool = WorkerPool::new(1);
        pool.join();
        pool.submit(|| ());
    }

    #[test]
    fn completions_deliver_every_pushed_result_once() {
        let mailbox: Arc<Completions<usize>> = Arc::new(Completions::new());
        assert!(mailbox.is_empty());
        let mut pool = WorkerPool::new(3);
        for i in 0..200 {
            let mailbox = Arc::clone(&mailbox);
            pool.submit(move || mailbox.push(i));
        }
        pool.join();
        assert!(!mailbox.is_empty());
        let mut got = Vec::new();
        mailbox.drain_into(&mut got);
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
        assert!(mailbox.is_empty());
    }

    #[test]
    fn completions_drain_reuses_the_callers_buffer() {
        let mailbox = Completions::new();
        mailbox.push(1u64);
        mailbox.push(2);
        let mut buf = vec![99u64; 8]; // stale contents must be cleared
        mailbox.drain_into(&mut buf);
        assert_eq!(buf, vec![1, 2]);
        mailbox.drain_into(&mut buf);
        assert!(buf.is_empty(), "second drain finds nothing");
    }
}
