//! The shared round engine: the open-round state machine both simulated
//! substrates drive.
//!
//! Before this layer existed, `mmvc_mpc::Cluster` and
//! `mmvc_clique::CliqueNetwork` each hand-rolled the same lifecycle —
//! open a round, accumulate per-slot loads, close the round into a
//! [`RoundSummary`], reject protocol misuse — differing only in *policy*
//! (what a "slot" is and which budget a charge is checked against).
//! [`RoundLedger`] owns the mechanism; the simulators keep the policy:
//!
//! * a **slot** is a machine (MPC) or a player (CONGESTED-CLIQUE);
//! * a **charge** is words received by / addressed to that slot in the
//!   open round;
//! * closing a round records `max_load_words = max(loads)` and
//!   `total_words = Σ loads` — the two quantities the paper's theorems
//!   bound.
//!
//! Budget enforcement stays in the wrappers (a memory violation names a
//! machine, a bandwidth violation names a link); the ledger only reports
//! the substrate-agnostic failures ([`SubstrateError::RoundProtocol`],
//! [`SubstrateError::InvalidAddress`]) that were previously duplicated in
//! both simulators.
//!
//! ```
//! use mmvc_substrate::RoundLedger;
//!
//! let mut ledger = RoundLedger::new("mpc", 4);
//! ledger.begin_round()?;
//! ledger.charge(0, 10)?;
//! ledger.charge(2, 5)?;
//! let summary = ledger.end_round()?;
//! assert_eq!(summary.round, 1);
//! assert_eq!(summary.max_load_words, 10);
//! assert_eq!(summary.total_words, 15);
//! # Ok::<(), mmvc_substrate::SubstrateError>(())
//! ```

use crate::error::SubstrateError;
use crate::telemetry::Telemetry;
use crate::trace::{ExecutionTrace, RoundSummary};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded round: which substrate closed it and the exact per-slot
/// word loads it charged. Captured by a [`ChargeLog`] attached to a
/// [`RoundLedger`] — the per-slot detail the [`ExecutionTrace`] summary
/// discards, and precisely what a distributed replay needs to turn each
/// round's accounting into real per-machine wire traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundCharges {
    /// The substrate that closed the round (`"mpc"`, `"congested-clique"`).
    pub substrate: &'static str,
    /// Words charged to each slot (machine/player) in the round.
    pub loads: Vec<usize>,
}

impl RoundCharges {
    /// Synthesizes a per-slot load vector reproducing a summary-only
    /// round: the result has `max(loads) == max_load_words` and
    /// `sum(loads) == total_words` whenever the pair was feasible for
    /// `slots` slots (which it is for every round a ledger recorded).
    /// Used for block-accounted primitives ([`RoundLedger::record_completed`])
    /// and absorbed sub-traces, where the true distribution is gone.
    fn synthesize(substrate: &'static str, slots: usize, s: &RoundSummary) -> Self {
        let mut loads = vec![0usize; slots.max(1)];
        let mut rem = s.total_words;
        if s.max_load_words > 0 {
            loads[0] = s.max_load_words.min(rem);
            rem -= loads[0];
        }
        for slot in loads.iter_mut().skip(1) {
            if rem == 0 {
                break;
            }
            let take = rem.min(s.max_load_words);
            *slot = take;
            rem -= take;
        }
        // Infeasible pairs (total > slots · max) can only come from
        // hand-built summaries; keep the total exact and let slot 0 carry
        // the overflow.
        loads[0] += rem;
        RoundCharges { substrate, loads }
    }
}

/// A shared recorder of per-round per-slot charges — the "machine role
/// extraction" channel behind distributed replays.
///
/// Like [`Telemetry`], a `ChargeLog` is a pure observer riding along
/// [`crate::ExecutorConfig`]: attaching one never changes a metered
/// number, it only captures the per-slot load vectors that
/// [`RoundLedger::end_round`] would otherwise collapse into a
/// [`RoundSummary`]. Cloning shares the underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct ChargeLog {
    inner: Arc<Mutex<Vec<RoundCharges>>>,
}

impl ChargeLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rounds recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("charge log poisoned").len()
    }

    /// Whether no round has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorded rounds, leaving the log empty.
    pub fn take(&self) -> Vec<RoundCharges> {
        std::mem::take(&mut *self.inner.lock().expect("charge log poisoned"))
    }

    fn push(&self, charges: RoundCharges) {
        self.inner
            .lock()
            .expect("charge log poisoned")
            .push(charges);
    }
}

/// The open-round state machine shared by every metered substrate.
///
/// See the module-level docs for the mechanism/policy split. A ledger is
/// created once per simulator with a fixed `substrate` name (used in error
/// reports) and slot count, and drives the whole execution:
///
/// * [`begin_round`](Self::begin_round) / [`charge`](Self::charge) /
///   [`end_round`](Self::end_round) — the metered lifecycle;
/// * [`abandon_round`](Self::abandon_round) — drop a failed round without
///   recording it (the simulators' error paths);
/// * [`record_completed`](Self::record_completed) — account a block of
///   abstracted constant-round primitive rounds (e.g. Lenzen routing)
///   without opening them individually.
#[derive(Debug, Clone)]
pub struct RoundLedger {
    substrate: &'static str,
    slots: usize,
    trace: ExecutionTrace,
    open: Option<Vec<usize>>,
    telemetry: Telemetry,
    /// Wall-clock stamp of `begin_round`, kept only while the attached
    /// telemetry sink is enabled (out-of-band: never enters the trace).
    open_at: Option<Instant>,
    recorder: Option<ChargeLog>,
}

impl RoundLedger {
    /// Creates a ledger for `slots` machines/players of the named
    /// substrate.
    pub fn new(substrate: &'static str, slots: usize) -> Self {
        RoundLedger {
            substrate,
            slots,
            trace: ExecutionTrace::new(),
            open: None,
            telemetry: Telemetry::disabled(),
            open_at: None,
            recorder: None,
        }
    }

    /// Attaches a [`ChargeLog`]: every completed round (including block
    /// accounting and absorbed sub-traces) records its per-slot loads.
    /// Strictly an observer — the [`ExecutionTrace`] is identical with or
    /// without it.
    pub fn set_recorder(&mut self, log: &ChargeLog) {
        self.recorder = Some(log.clone());
    }

    /// Attaches a telemetry sink: every completed round emits a span
    /// (tagged with the substrate name, with the round number and word
    /// totals as args) when the sink is enabled. Strictly an observer —
    /// the recorded [`ExecutionTrace`] is identical with or without it.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// The substrate name this ledger reports in errors.
    pub fn substrate(&self) -> &'static str {
        self.substrate
    }

    /// Number of slots (machines or players).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The per-round record so far (completed rounds only).
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Whether a round is currently open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// The 1-based index of the round currently open or next to open.
    pub fn current_round(&self) -> usize {
        self.trace.rounds() + 1
    }

    /// Fails if a round is open — the precondition of whole-round
    /// primitives that account rounds as a block.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::RoundProtocol`] when a round is open.
    pub fn ensure_no_open_round(&self) -> Result<(), SubstrateError> {
        if self.open.is_some() {
            return Err(SubstrateError::RoundProtocol {
                substrate: self.substrate,
                message: "round already open",
            });
        }
        Ok(())
    }

    /// Fails unless a round is open — the precondition of
    /// [`charge`](Self::charge)-like operations.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::RoundProtocol`] when no round is open.
    pub fn ensure_open(&self) -> Result<(), SubstrateError> {
        if self.open.is_none() {
            return Err(SubstrateError::RoundProtocol {
                substrate: self.substrate,
                message: "operation outside an open round",
            });
        }
        Ok(())
    }

    /// Opens a new round.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::RoundProtocol`] if a round is already open.
    pub fn begin_round(&mut self) -> Result<(), SubstrateError> {
        self.ensure_no_open_round()?;
        self.open = Some(vec![0; self.slots]);
        self.open_at = if self.telemetry.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Ok(())
    }

    /// The words charged to `slot` so far in the open round.
    ///
    /// # Errors
    ///
    /// * [`SubstrateError::RoundProtocol`] if no round is open.
    /// * [`SubstrateError::InvalidAddress`] for a slot out of range.
    pub fn load(&self, slot: usize) -> Result<usize, SubstrateError> {
        self.ensure_open()?;
        let loads = self.open.as_ref().expect("checked open");
        if slot >= self.slots {
            return Err(SubstrateError::InvalidAddress {
                substrate: self.substrate,
                address: slot,
                limit: self.slots,
            });
        }
        Ok(loads[slot])
    }

    /// Charges `words` to `slot` in the open round, returning the slot's
    /// new cumulative load.
    ///
    /// The ledger enforces no budget — wrappers check their model's
    /// capacity against [`load`](Self::load) *before* charging, so their
    /// error variants keep the model vocabulary (machine memory vs link
    /// bandwidth).
    ///
    /// # Errors
    ///
    /// * [`SubstrateError::RoundProtocol`] if no round is open.
    /// * [`SubstrateError::InvalidAddress`] for a slot out of range.
    pub fn charge(&mut self, slot: usize, words: usize) -> Result<usize, SubstrateError> {
        self.ensure_open()?;
        if slot >= self.slots {
            return Err(SubstrateError::InvalidAddress {
                substrate: self.substrate,
                address: slot,
                limit: self.slots,
            });
        }
        let loads = self.open.as_mut().expect("checked open");
        loads[slot] += words;
        Ok(loads[slot])
    }

    /// Closes the open round and records its summary.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::RoundProtocol`] if no round is open.
    pub fn end_round(&mut self) -> Result<RoundSummary, SubstrateError> {
        let Some(loads) = self.open.take() else {
            return Err(SubstrateError::RoundProtocol {
                substrate: self.substrate,
                message: "end_round without begin_round",
            });
        };
        let summary = RoundSummary {
            round: self.trace.rounds() + 1,
            max_load_words: loads.iter().copied().max().unwrap_or(0),
            total_words: loads.iter().sum(),
        };
        self.trace.record(summary);
        if let Some(log) = &self.recorder {
            log.push(RoundCharges {
                substrate: self.substrate,
                loads,
            });
        }
        if let Some(opened) = self.open_at.take() {
            self.telemetry.record_span(
                "round",
                Some(self.substrate),
                opened,
                &[
                    ("round", summary.round as u64),
                    ("total_words", summary.total_words as u64),
                    ("max_load_words", summary.max_load_words as u64),
                ],
            );
            self.telemetry
                .counter("round.total_words", summary.total_words as u64);
        }
        Ok(summary)
    }

    /// Drops the open round (if any) without recording it — the error
    /// path of the simulators' scoped-round helpers.
    pub fn abandon_round(&mut self) {
        self.open = None;
        self.open_at = None;
    }

    /// Records `k` completed rounds of an abstracted constant-round
    /// primitive, attributing `total_words` and a per-slot peak of
    /// `max_load_words` to the first of them (the convention for block
    /// primitives such as Lenzen routing, whose traffic the model charges
    /// as a unit).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::RoundProtocol`] if a round is open.
    pub fn record_completed(
        &mut self,
        k: usize,
        total_words: usize,
        max_load_words: usize,
    ) -> Result<(), SubstrateError> {
        self.ensure_no_open_round()?;
        for i in 0..k {
            let (total, max_load) = if i == 0 {
                (total_words, max_load_words)
            } else {
                (0, 0)
            };
            let summary = RoundSummary {
                round: self.trace.rounds() + 1,
                max_load_words: max_load,
                total_words: total,
            };
            self.trace.record(summary);
            if let Some(log) = &self.recorder {
                log.push(RoundCharges::synthesize(
                    self.substrate,
                    self.slots,
                    &summary,
                ));
            }
        }
        Ok(())
    }

    /// Merges the trace of a nested computation (e.g. a subroutine run on
    /// its own simulator handle) into this ledger's trace, renumbering its
    /// rounds.
    pub fn absorb(&mut self, other: &ExecutionTrace) {
        if let Some(log) = &self.recorder {
            for s in other.per_round() {
                log.push(RoundCharges::synthesize(self.substrate, self.slots, s));
            }
        }
        self.trace.absorb(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_records_summary() {
        let mut l = RoundLedger::new("test", 3);
        assert_eq!(l.substrate(), "test");
        assert_eq!(l.slots(), 3);
        assert_eq!(l.current_round(), 1);
        l.begin_round().unwrap();
        assert!(l.is_open());
        assert_eq!(l.charge(0, 4).unwrap(), 4);
        assert_eq!(l.charge(0, 2).unwrap(), 6);
        assert_eq!(l.charge(2, 1).unwrap(), 1);
        assert_eq!(l.load(0).unwrap(), 6);
        let s = l.end_round().unwrap();
        assert_eq!(s.round, 1);
        assert_eq!(s.max_load_words, 6);
        assert_eq!(s.total_words, 7);
        assert_eq!(l.trace().rounds(), 1);
        assert_eq!(l.current_round(), 2);
    }

    #[test]
    fn protocol_violations() {
        let mut l = RoundLedger::new("test", 2);
        assert!(matches!(
            l.charge(0, 1),
            Err(SubstrateError::RoundProtocol { .. })
        ));
        assert!(matches!(
            l.load(0),
            Err(SubstrateError::RoundProtocol { .. })
        ));
        assert!(matches!(
            l.end_round(),
            Err(SubstrateError::RoundProtocol { .. })
        ));
        l.begin_round().unwrap();
        assert!(matches!(
            l.begin_round(),
            Err(SubstrateError::RoundProtocol { .. })
        ));
        assert!(matches!(
            l.ensure_no_open_round(),
            Err(SubstrateError::RoundProtocol { .. })
        ));
        assert!(matches!(
            l.record_completed(1, 0, 0),
            Err(SubstrateError::RoundProtocol { .. })
        ));
    }

    #[test]
    fn invalid_slot() {
        let mut l = RoundLedger::new("test", 2);
        l.begin_round().unwrap();
        assert!(matches!(
            l.charge(2, 1),
            Err(SubstrateError::InvalidAddress {
                address: 2,
                limit: 2,
                ..
            })
        ));
        assert!(matches!(
            l.load(5),
            Err(SubstrateError::InvalidAddress { .. })
        ));
    }

    #[test]
    fn abandon_discards_round() {
        let mut l = RoundLedger::new("test", 1);
        l.begin_round().unwrap();
        l.charge(0, 100).unwrap();
        l.abandon_round();
        assert!(!l.is_open());
        assert_eq!(l.trace().rounds(), 0);
        // Reusable afterwards.
        l.begin_round().unwrap();
        l.end_round().unwrap();
        assert_eq!(l.trace().rounds(), 1);
    }

    #[test]
    fn record_completed_first_round_attribution() {
        let mut l = RoundLedger::new("test", 4);
        l.record_completed(3, 12, 5).unwrap();
        assert_eq!(l.trace().rounds(), 3);
        assert_eq!(l.trace().per_round()[0].total_words, 12);
        assert_eq!(l.trace().per_round()[0].max_load_words, 5);
        assert_eq!(l.trace().per_round()[1].total_words, 0);
        assert_eq!(l.trace().total_words(), 12);
        assert_eq!(l.trace().max_load_words(), 5);
    }

    #[test]
    fn rounds_emit_spans_when_telemetry_is_enabled() {
        let tel = Telemetry::recording();
        let mut l = RoundLedger::new("mpc", 2);
        l.set_telemetry(&tel);
        l.begin_round().unwrap();
        l.charge(0, 7).unwrap();
        l.charge(1, 3).unwrap();
        l.end_round().unwrap();
        // Abandoned rounds record nothing.
        l.begin_round().unwrap();
        l.abandon_round();
        let events = tel.drain();
        let span = events.iter().find(|e| e.name == "round").unwrap();
        assert_eq!(span.tag.as_deref(), Some("mpc"));
        assert!(span.args.contains(&("round", 1)));
        assert!(span.args.contains(&("total_words", 10)));
        assert!(span.args.contains(&("max_load_words", 7)));
        assert_eq!(
            events.iter().filter(|e| e.name == "round").count(),
            1,
            "one span per completed round"
        );
        // The metered trace itself is telemetry-blind.
        let mut bare = RoundLedger::new("mpc", 2);
        bare.begin_round().unwrap();
        bare.charge(0, 7).unwrap();
        bare.charge(1, 3).unwrap();
        bare.end_round().unwrap();
        assert_eq!(l.trace().per_round(), bare.trace().per_round());
    }

    #[test]
    fn recorder_captures_per_slot_loads() {
        let log = ChargeLog::new();
        let mut l = RoundLedger::new("mpc", 3);
        l.set_recorder(&log);
        l.begin_round().unwrap();
        l.charge(0, 4).unwrap();
        l.charge(2, 9).unwrap();
        l.end_round().unwrap();
        // Abandoned rounds record nothing.
        l.begin_round().unwrap();
        l.charge(1, 100).unwrap();
        l.abandon_round();
        l.begin_round().unwrap();
        l.end_round().unwrap();
        let rounds = log.take();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].substrate, "mpc");
        assert_eq!(rounds[0].loads, vec![4, 0, 9]);
        assert_eq!(rounds[1].loads, vec![0, 0, 0]);
        assert!(log.is_empty(), "take drains the log");
        // The metered trace itself is recorder-blind.
        let mut bare = RoundLedger::new("mpc", 3);
        bare.begin_round().unwrap();
        bare.charge(0, 4).unwrap();
        bare.charge(2, 9).unwrap();
        bare.end_round().unwrap();
        bare.begin_round().unwrap();
        bare.end_round().unwrap();
        assert_eq!(l.trace().per_round(), bare.trace().per_round());
    }

    #[test]
    fn recorder_synthesizes_block_and_absorbed_rounds() {
        let log = ChargeLog::new();
        let mut l = RoundLedger::new("test", 4);
        l.set_recorder(&log);
        l.record_completed(2, 10, 4).unwrap();
        let mut sub = ExecutionTrace::new();
        sub.record(RoundSummary {
            round: 1,
            max_load_words: 7,
            total_words: 7,
        });
        l.absorb(&sub);
        let rounds = log.take();
        assert_eq!(rounds.len(), 3);
        for (charges, summary) in rounds.iter().zip(l.trace().per_round()) {
            assert_eq!(
                charges.loads.iter().copied().max().unwrap_or(0),
                summary.max_load_words,
                "synthesized max must reproduce the summary"
            );
            assert_eq!(
                charges.loads.iter().sum::<usize>(),
                summary.total_words,
                "synthesized total must reproduce the summary"
            );
        }
    }

    #[test]
    fn absorb_merges_subtrace() {
        let mut l = RoundLedger::new("test", 1);
        l.record_completed(1, 3, 3).unwrap();
        let mut sub = ExecutionTrace::new();
        sub.record(RoundSummary {
            round: 1,
            max_load_words: 7,
            total_words: 7,
        });
        l.absorb(&sub);
        assert_eq!(l.trace().rounds(), 2);
        assert_eq!(l.trace().per_round()[1].round, 2);
    }
}
