//! A flat, word-packed bitset for the hot membership scans.
//!
//! The MIS and matching loops track per-vertex flags (`alive`, `in_mis`,
//! `covered`, …) that used to live in `Vec<bool>` — one byte per vertex,
//! 8× the cache traffic of the information content. [`Bitset`] packs the
//! same flags into a single `Vec<u64>` word array with branchless
//! test-and-set, which is what the per-round scans at the 2²⁴ tier
//! actually stream through.
//!
//! The crate-level `#![forbid(unsafe_code)]` applies here: every access
//! is a checked slice index, with `debug_assert!` bounds audits on the
//! bit index itself (`cargo test` runs with debug assertions on, so the
//! audit is exercised by CI; release builds keep only the slice check).
//!
//! The word buffer can be drawn from and returned to a
//! [`ScratchPool`](crate::ScratchPool) so per-round masks stop churning
//! the allocator.
//!
//! ```
//! use mmvc_substrate::Bitset;
//!
//! let mut b = Bitset::new(100);
//! assert!(!b.get(63));
//! assert!(!b.test_and_set(63), "was clear");
//! assert!(b.test_and_set(63), "now set");
//! assert_eq!(b.count_ones(), 1);
//! ```

use crate::ScratchPool;

/// A fixed-length bitset over indices `0..len`, packed 64 per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitset {
    /// An all-clear bitset over `0..len`.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// An all-set bitset over `0..len` (trailing bits of the last word
    /// stay clear so [`count_ones`](Self::count_ones) is exact).
    pub fn filled(len: usize) -> Self {
        let mut b = Bitset {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        b.mask_tail();
        b
    }

    /// An all-clear bitset whose word buffer is drawn from `pool`.
    /// Return it with [`recycle`](Self::recycle) to keep the capacity.
    pub fn new_in(pool: &ScratchPool, len: usize) -> Self {
        let n = words_for(len);
        let mut words = pool.take_u64(n);
        words.resize(n, 0);
        Bitset { words, len }
    }

    /// Returns the word buffer to `pool`, consuming the bitset.
    pub fn recycle(self, pool: &ScratchPool) {
        pool.recycle_u64(self.words);
    }

    /// Zeroes the bits past `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of indexable bits.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Debug builds assert `i < len()`; release builds panic only if the
    /// word index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range ({})", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Sets bit `i` and returns its *previous* value — branchless: one
    /// load, shift/mask arithmetic, one store, no data-dependent jumps.
    #[inline]
    pub fn test_and_set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range ({})", self.len);
        let w = &mut self.words[i >> 6];
        let bit = (i & 63) as u32;
        let prev = (*w >> bit) & 1;
        *w |= 1u64 << bit;
        prev != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit (capacity and length unchanged).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit in `0..len`.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitset::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
        assert_eq!(
            b.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 63, 65, 127, 128, 129]
        );
    }

    #[test]
    fn test_and_set_reports_previous_value() {
        let mut b = Bitset::new(70);
        assert!(!b.test_and_set(69));
        assert!(b.test_and_set(69));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn filled_and_tail_masking() {
        let b = Bitset::filled(67);
        assert_eq!(b.count_ones(), 67);
        assert!(b.get(66));
        let mut c = Bitset::new(67);
        c.set_all();
        assert_eq!(c, b);
        c.clear_all();
        assert_eq!(c.count_ones(), 0);
        assert_eq!(Bitset::filled(0).count_ones(), 0);
        assert_eq!(Bitset::filled(64).count_ones(), 64);
    }

    #[test]
    fn pooled_words_are_recycled() {
        let pool = ScratchPool::new();
        let b = Bitset::new_in(&pool, 1000);
        assert_eq!(b.count_ones(), 0, "pooled bitset starts clear");
        b.recycle(&pool);
        let c = Bitset::new_in(&pool, 500);
        assert_eq!(pool.stats().reuses, 1, "second bitset reuses the words");
        assert_eq!(c.count_ones(), 0);
        c.recycle(&pool);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_is_audited() {
        Bitset::new(10).get(10);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_is_audited() {
        Bitset::new(0).set(0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn test_and_set_out_of_range_is_audited() {
        Bitset::new(64).test_and_set(64);
    }
}
