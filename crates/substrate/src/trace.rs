//! Execution traces: the measured quantities every experiment reports.
//!
//! Moved here from `mmvc-mpc` so that both simulated substrates (MPC and
//! CONGESTED-CLIQUE) record their executions in one format and the
//! harness can report claimed-vs-measured numbers through one code path.

/// Summary of one completed substrate round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// 1-based round index.
    pub round: usize,
    /// Maximum words received/held by any machine or player this round.
    pub max_load_words: usize,
    /// Total words communicated across the substrate this round.
    pub total_words: usize,
}

/// The complete record of a simulated execution.
///
/// This is the primary *output* of a substrate from the experiments' point
/// of view: the paper's theorems bound [`rounds`](ExecutionTrace::rounds)
/// and [`max_load_words`](ExecutionTrace::max_load_words), and the harness
/// reports these measured values against the claims.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    rounds: Vec<RoundSummary>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completed round.
    ///
    /// Substrate implementations call this from their `end_round` path;
    /// the summary's `round` field should be the 1-based index of the
    /// completed round.
    pub fn record(&mut self, summary: RoundSummary) {
        self.rounds.push(summary);
    }

    /// Number of rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Per-round summaries, in order.
    pub fn per_round(&self) -> &[RoundSummary] {
        &self.rounds
    }

    /// The largest per-machine/per-player load observed in any round
    /// (words).
    pub fn max_load_words(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_load_words)
            .max()
            .unwrap_or(0)
    }

    /// Total words communicated over the whole execution.
    pub fn total_words(&self) -> usize {
        self.rounds.iter().map(|r| r.total_words).sum()
    }

    /// Merges another trace (e.g. a sub-phase) into this one, renumbering
    /// its rounds to follow the current last round.
    pub fn absorb(&mut self, other: &ExecutionTrace) {
        let base = self.rounds.len();
        for (i, r) in other.rounds.iter().enumerate() {
            self.rounds.push(RoundSummary {
                round: base + i + 1,
                ..*r
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let t = ExecutionTrace::new();
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.max_load_words(), 0);
        assert_eq!(t.total_words(), 0);
    }

    #[test]
    fn accumulates() {
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 10,
            total_words: 30,
        });
        t.record(RoundSummary {
            round: 2,
            max_load_words: 25,
            total_words: 25,
        });
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.max_load_words(), 25);
        assert_eq!(t.total_words(), 55);
    }

    #[test]
    fn absorb_renumbers() {
        let mut a = ExecutionTrace::new();
        a.record(RoundSummary {
            round: 1,
            max_load_words: 1,
            total_words: 1,
        });
        let mut b = ExecutionTrace::new();
        b.record(RoundSummary {
            round: 1,
            max_load_words: 2,
            total_words: 2,
        });
        b.record(RoundSummary {
            round: 2,
            max_load_words: 3,
            total_words: 3,
        });
        a.absorb(&b);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.per_round()[1].round, 2);
        assert_eq!(a.per_round()[2].round, 3);
        assert_eq!(a.max_load_words(), 3);
    }
}
