//! A reusable scratch-buffer arena shared across graph builds and
//! algorithm rounds.
//!
//! The scale tier spends most of its time in counting-sort passes and
//! per-round vertex scans whose working buffers (`Vec<u32>` counters,
//! cursors and degree arrays; `Vec<u64>` packed-pair staging) have the
//! same sizes build after build and round after round. Allocating them
//! fresh each time is pure overhead — and on the 1-core CI host the
//! allocator churn is what made threaded builds *slower* than sequential
//! (BENCH_scale.json, scale-gnp-1m before PR 6).
//!
//! [`ScratchPool`] is the fix: a typed pool of recycled buffers behind an
//! `Arc<Mutex<..>>` handle, threaded through
//! [`ExecutorConfig`](crate::ExecutorConfig) so every layer (builder,
//! generators, per-round scans) draws from the same arena. The pool
//! retains every recycled buffer — it grows to the peak working set of
//! the largest build it has seen and holds it, which is exactly the
//! arena bargain: after the first (cold) build, repeated builds allocate
//! ~0 fresh buffer bytes. Call [`ScratchPool::trim`] to release the
//! retained memory explicitly.
//!
//! Determinism: the pool hands out *capacity*, never contents — every
//! `take_*` returns an empty (`len == 0`) buffer, and callers fill it
//! from scratch. Which physical allocation a task receives can vary with
//! scheduling, but the bytes computed never do, so the executor
//! byte-identity contract is untouched.
//!
//! ```
//! use mmvc_substrate::ScratchPool;
//!
//! let pool = ScratchPool::new();
//! let mut buf = pool.take_u32(1024);
//! assert!(buf.capacity() >= 1024 && buf.is_empty());
//! buf.extend(0..10u32);
//! pool.recycle_u32(buf);
//!
//! // The second take reuses the first buffer: no fresh allocation.
//! let again = pool.take_u32(1024);
//! assert_eq!(pool.stats().reuses, 1);
//! assert_eq!(pool.stats().allocations, 1);
//! pool.recycle_u32(again);
//! ```

use std::sync::{Arc, Mutex};

/// Allocation counters of a [`ScratchPool`], cumulative since creation or
/// the last [`reset_stats`](ScratchPool::reset_stats).
///
/// `allocations` / `allocated_bytes` count fresh memory the pool had to
/// request from the allocator (including growing a too-small recycled
/// buffer — only the grown-by bytes are charged). `reuses` /
/// `reused_bytes` count requests served entirely from retained capacity.
/// These are the numbers `bench_scale` reports as the arena columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Requests that needed fresh allocator memory.
    pub allocations: u64,
    /// Fresh bytes requested from the allocator.
    pub allocated_bytes: u64,
    /// Requests served from retained capacity alone.
    pub reuses: u64,
    /// Bytes of retained capacity handed back out.
    pub reused_bytes: u64,
}

impl ScratchStats {
    /// Total `take_*` calls observed.
    pub fn takes(&self) -> u64 {
        self.allocations + self.reuses
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    stats: ScratchStats,
}

/// Best-fit take from one shelf: prefer the smallest retained buffer with
/// `capacity >= min_cap`; otherwise grow the largest retained buffer;
/// otherwise allocate fresh. Returns an empty buffer with
/// `capacity >= min_cap`.
fn take_from<T>(shelf: &mut Vec<Vec<T>>, stats: &mut ScratchStats, min_cap: usize) -> Vec<T> {
    let word = std::mem::size_of::<T>();
    let mut best: Option<(usize, usize)> = None; // (index, capacity), best fit
    let mut largest: Option<(usize, usize)> = None;
    for (i, b) in shelf.iter().enumerate() {
        let c = b.capacity();
        if c >= min_cap && best.is_none_or(|(_, bc)| c < bc) {
            best = Some((i, c));
        }
        if largest.is_none_or(|(_, lc)| c > lc) {
            largest = Some((i, c));
        }
    }
    if let Some((i, _)) = best {
        stats.reuses += 1;
        stats.reused_bytes += (min_cap * word) as u64;
        let mut b = shelf.swap_remove(i);
        b.clear();
        return b;
    }
    stats.allocations += 1;
    if let Some((i, cap)) = largest {
        // Grow the largest retained buffer; charge only the delta.
        stats.allocated_bytes += ((min_cap - cap) * word) as u64;
        let mut b = shelf.swap_remove(i);
        b.clear();
        b.reserve(min_cap);
        b
    } else {
        stats.allocated_bytes += (min_cap * word) as u64;
        Vec::with_capacity(min_cap)
    }
}

/// A shared, thread-safe arena of recycled scratch buffers.
///
/// Cloning the pool clones the *handle* — all clones share one arena, so
/// a pool attached to an [`ExecutorConfig`](crate::ExecutorConfig) at the
/// top of a run is visible to every layer the config is threaded
/// through. See the module docs for the retention and determinism rules.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty `Vec<u32>` with at least `min_cap` capacity,
    /// reusing retained buffers when possible.
    pub fn take_u32(&self, min_cap: usize) -> Vec<u32> {
        let mut inner = self.inner.lock().expect("scratch pool poisoned");
        let PoolInner { u32s, stats, .. } = &mut *inner;
        take_from(u32s, stats, min_cap)
    }

    /// Returns a `u32` buffer to the pool. Contents are discarded; the
    /// capacity is retained for future [`take_u32`](Self::take_u32) calls.
    pub fn recycle_u32(&self, mut buf: Vec<u32>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut inner = self.inner.lock().expect("scratch pool poisoned");
        inner.u32s.push(buf);
    }

    /// Takes an empty `Vec<u64>` with at least `min_cap` capacity,
    /// reusing retained buffers when possible.
    pub fn take_u64(&self, min_cap: usize) -> Vec<u64> {
        let mut inner = self.inner.lock().expect("scratch pool poisoned");
        let PoolInner { u64s, stats, .. } = &mut *inner;
        take_from(u64s, stats, min_cap)
    }

    /// Returns a `u64` buffer to the pool. Contents are discarded; the
    /// capacity is retained for future [`take_u64`](Self::take_u64) calls.
    pub fn recycle_u64(&self, mut buf: Vec<u64>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut inner = self.inner.lock().expect("scratch pool poisoned");
        inner.u64s.push(buf);
    }

    /// Snapshot of the cumulative allocation counters.
    pub fn stats(&self) -> ScratchStats {
        self.inner.lock().expect("scratch pool poisoned").stats
    }

    /// Resets the counters (retained buffers are kept). `bench_scale`
    /// calls this between the cold and warm measurement windows.
    pub fn reset_stats(&self) {
        self.inner.lock().expect("scratch pool poisoned").stats = ScratchStats::default();
    }

    /// Bytes of capacity currently retained (idle in the pool).
    pub fn retained_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("scratch pool poisoned");
        inner.u32s.iter().map(|b| b.capacity() * 4).sum::<usize>()
            + inner.u64s.iter().map(|b| b.capacity() * 8).sum::<usize>()
    }

    /// Releases all retained buffers (counters are kept).
    pub fn trim(&self) {
        let mut inner = self.inner.lock().expect("scratch pool poisoned");
        inner.u32s.clear();
        inner.u64s.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_take_allocates_warm_take_reuses() {
        let pool = ScratchPool::new();
        let b = pool.take_u64(100);
        assert!(b.capacity() >= 100 && b.is_empty());
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().allocated_bytes, 800);
        pool.recycle_u64(b);

        let b = pool.take_u64(50); // smaller request: served from retained
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.stats().allocations, 1, "no fresh allocation");
        pool.recycle_u64(b);
    }

    #[test]
    fn growing_a_retained_buffer_charges_only_the_delta() {
        let pool = ScratchPool::new();
        pool.recycle_u32({
            let mut v = Vec::with_capacity(10);
            v.push(7u32); // contents must be discarded on recycle
            v
        });
        let b = pool.take_u32(100);
        assert!(b.is_empty(), "recycled contents discarded");
        assert!(b.capacity() >= 100);
        let s = pool.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.allocated_bytes, (100 - 10) * 4);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let pool = ScratchPool::new();
        pool.recycle_u32(Vec::with_capacity(1000));
        pool.recycle_u32(Vec::with_capacity(64));
        let b = pool.take_u32(50);
        assert!(b.capacity() < 1000, "best fit picks the 64-cap buffer");
        pool.recycle_u32(b);
    }

    #[test]
    fn clones_share_the_arena() {
        let pool = ScratchPool::new();
        let other = pool.clone();
        other.recycle_u64(Vec::with_capacity(32));
        let b = pool.take_u64(16);
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(other.stats(), pool.stats());
        pool.recycle_u64(b);
    }

    #[test]
    fn trim_and_reset() {
        let pool = ScratchPool::new();
        pool.recycle_u32(Vec::with_capacity(100));
        assert_eq!(pool.retained_bytes(), 400);
        pool.trim();
        assert_eq!(pool.retained_bytes(), 0);
        let _ = pool.take_u32(8);
        assert!(pool.stats().takes() > 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), ScratchStats::default());
    }

    #[test]
    fn zero_capacity_recycle_is_dropped() {
        let pool = ScratchPool::new();
        pool.recycle_u32(Vec::new());
        assert_eq!(pool.retained_bytes(), 0);
    }
}
