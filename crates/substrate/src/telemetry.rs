//! Out-of-band span tracing and counters for the whole workspace.
//!
//! Every perf-sensitive layer of the system — the round engine, the
//! executor, the graph builder, the serving reactor — shares one
//! instrumentation vocabulary:
//!
//! * a **span** is a named interval (`start_ns`..`start_ns + dur_ns`)
//!   on one thread, with an id, the id of the span it nests inside on
//!   that thread, an optional free-form tag (e.g. the `x-cache` tier)
//!   and integer args (words, items, rounds);
//! * a **counter** is a named point sample (scratch-arena bytes,
//!   round words).
//!
//! Both are [`TraceEvent`]s deposited into a [`Telemetry`] sink — a
//! cheap cloneable handle (an `Arc` internally) threaded through the
//! same configs that already carry [`ExecutorConfig`](crate::ExecutorConfig).
//! A consumer [`drain`](Telemetry::drain)s the events and renders them
//! (the `mmvc-bench` crate ships Chrome-trace and JSONL exporters; the
//! serving daemon rotates per-epoch trace files).
//!
//! ## The out-of-band contract
//!
//! Telemetry observes; it never participates. Nothing an algorithm
//! computes may depend on the sink: timestamps, span ids and drained
//! buffers stay outside every `RunReport`, cache key and witness byte,
//! exactly like `wall_ms`. The pins in `tests/telemetry.rs` hold the
//! system to this: canonical report bytes are identical with telemetry
//! on, off, and across `Sequential`/`Threaded{k}`.
//!
//! ## Overhead budget
//!
//! The default handle ([`Telemetry::disabled`]) carries **no sink at
//! all** — every instrumentation site costs one branch. A live sink
//! that has been switched off ([`set_enabled`](Telemetry::set_enabled))
//! costs one relaxed atomic load per site. Only the *enabled* path pays
//! for timestamps and a short [`Completions`] lock per event — the same
//! swap-buffer mailbox the serving reactor already drains worker
//! completions through, so a burst of events costs the drainer one lock
//! acquisition, not one per event.
//!
//! ```
//! use mmvc_substrate::Telemetry;
//!
//! let tel = Telemetry::recording();
//! {
//!     let _outer = tel.span("build");
//!     let _inner = tel.span("scatter");
//! } // spans record on drop
//! tel.counter("bytes", 4096);
//! let events = tel.drain();
//! assert_eq!(events.len(), 3);
//! let scatter = events.iter().find(|e| e.name == "scatter").unwrap();
//! let build = events.iter().find(|e| e.name == "build").unwrap();
//! assert_eq!(scatter.parent, build.id, "nesting is tracked per thread");
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::Completions;

/// Which kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named interval on one thread (see [`Telemetry::span`]).
    Span,
    /// A named point sample (see [`Telemetry::counter`]).
    Counter,
}

/// One drained telemetry record.
///
/// Timestamps are nanoseconds since the sink's creation instant (its
/// *epoch*), so events from every thread share one clock. Small
/// sequential `tid`s are assigned per OS thread on first use — stable
/// for the life of the process, suitable as Chrome-trace thread ids.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span or counter.
    pub kind: EventKind,
    /// Static event name, e.g. `"round"` or `"csr.build"`.
    pub name: &'static str,
    /// Free-form qualifier (scenario name, `x-cache` tier), if any.
    pub tag: Option<String>,
    /// Start of the interval (spans) or sample instant (counters), in
    /// nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// Interval length in nanoseconds; `0` for counters.
    pub dur_ns: u64,
    /// Counter value; `0` for spans.
    pub value: u64,
    /// Small per-thread id (first-use order, process-wide).
    pub tid: u64,
    /// Span id (`≥ 1`); `0` for counters.
    pub id: u64,
    /// Id of the span this one nests inside on the same thread, or `0`
    /// for a root span. Always `0` for counters and for spans recorded
    /// via [`Telemetry::record_span`] (whose interval may cross
    /// threads).
    pub parent: u64,
    /// Integer arguments (words, items, round numbers, ...).
    pub args: Vec<(&'static str, u64)>,
}

/// The shared state behind every clone of one [`Telemetry`] handle.
#[derive(Debug)]
struct Sink {
    enabled: AtomicBool,
    epoch: Instant,
    events: Completions<TraceEvent>,
    next_id: AtomicU64,
}

/// Process-wide allocator of small per-thread ids (`tid` in events).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's assigned small id (`0` = not yet assigned).
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Id of the innermost [`Span`] currently open on this thread
    /// (`0` = none) — how child spans find their parent without a
    /// lock.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// This thread's small id, assigned on first use.
fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// A cloneable handle on a telemetry sink (see the module docs).
///
/// The default handle is [`disabled`](Telemetry::disabled): it has no
/// sink, records nothing, and costs one branch per instrumentation
/// site. [`recording`](Telemetry::recording) builds a live sink; all
/// clones share it, and any clone may [`drain`](Telemetry::drain) it.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Sink>>,
}

impl Telemetry {
    /// A handle with no sink: nothing is ever recorded, clones are
    /// free, and every instrumentation site reduces to one branch.
    pub fn disabled() -> Self {
        Telemetry { sink: None }
    }

    /// A live sink, enabled from the start. Its epoch (timestamp zero)
    /// is the moment of this call.
    pub fn recording() -> Self {
        Telemetry {
            sink: Some(Arc::new(Sink {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
                events: Completions::new(),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// Whether events are currently recorded: a branch (no sink) plus
    /// at most one relaxed atomic load (live sink) — the whole cost of
    /// an instrumentation site on the disabled path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.sink {
            Some(sink) => sink.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Switches a live sink on or off (no-op on a sinkless handle).
    /// Spans already open keep recording when they close.
    pub fn set_enabled(&self, on: bool) {
        if let Some(sink) = &self.sink {
            sink.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Opens a span; the interval records when the guard drops. On the
    /// disabled path this creates an inert guard and costs only the
    /// [`is_enabled`](Self::is_enabled) check.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_inner(name, None)
    }

    /// [`span`](Self::span) with a free-form tag. The tag string is
    /// only materialized when the sink is enabled.
    #[inline]
    pub fn span_tagged(&self, name: &'static str, tag: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        self.span_inner(name, Some(tag.to_string()))
    }

    fn span_inner(&self, name: &'static str, tag: Option<String>) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        let sink = self.sink.as_ref().expect("enabled implies a sink");
        let id = sink.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SPAN.with(|c| c.replace(id));
        Span {
            active: Some(ActiveSpan {
                sink,
                name,
                tag,
                start: Instant::now(),
                id,
                parent,
                args: Vec::new(),
            }),
        }
    }

    /// Records a point sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let sink = self.sink.as_ref().expect("enabled implies a sink");
        sink.events.push(TraceEvent {
            kind: EventKind::Counter,
            name,
            tag: None,
            start_ns: sink.ns_of(Instant::now()),
            dur_ns: 0,
            value,
            tid: current_tid(),
            id: 0,
            parent: 0,
            args: Vec::new(),
        });
    }

    /// Records a span whose endpoints the caller measured itself,
    /// closing it *now* — the shape for intervals that cross threads
    /// (a request parsed on the reactor, computed on a worker, and
    /// finished back on the reactor at last-byte-written). No parent is
    /// attached: the interval does not belong to any one thread's span
    /// stack.
    pub fn record_span(
        &self,
        name: &'static str,
        tag: Option<&str>,
        start: Instant,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let sink = self.sink.as_ref().expect("enabled implies a sink");
        let start_ns = sink.ns_of(start);
        let end_ns = sink.ns_of(Instant::now());
        sink.events.push(TraceEvent {
            kind: EventKind::Span,
            name,
            tag: tag.map(str::to_string),
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            value: 0,
            tid: current_tid(),
            id: sink.next_id.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            args: args.to_vec(),
        });
    }

    /// Takes every recorded event (one buffer swap; see
    /// [`Completions::drain_into`]). Events arrive in completion order;
    /// exporters sort by `(tid, start_ns)`.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        if let Some(sink) = &self.sink {
            sink.events.drain_into(&mut out);
        }
        out
    }

    /// Whether any events are waiting to be drained.
    pub fn has_events(&self) -> bool {
        match &self.sink {
            Some(sink) => !sink.events.is_empty(),
            None => false,
        }
    }
}

impl Sink {
    /// Nanoseconds between the sink's epoch and `t` (0 if `t` precedes
    /// the epoch — cross-thread `Instant`s are monotone but not always
    /// totally ordered at nanosecond grain).
    fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }
}

/// An open span: created by [`Telemetry::span`], recorded on drop. An
/// inert guard (disabled sink) does nothing at all.
#[derive(Debug)]
#[must_use = "a span records its interval when dropped"]
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

#[derive(Debug)]
struct ActiveSpan<'a> {
    sink: &'a Sink,
    name: &'static str,
    tag: Option<String>,
    start: Instant,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, u64)>,
}

impl Span<'_> {
    /// Attaches an integer argument (no-op on an inert guard).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.active {
            active.args.push((key, value));
        }
    }

    /// Builder-style [`arg`](Self::arg).
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.arg(key, value);
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        // Restore the enclosing span as this thread's innermost.
        CURRENT_SPAN.with(|c| c.set(active.parent));
        let start_ns = active.sink.ns_of(active.start);
        let end_ns = active.sink.ns_of(Instant::now());
        active.sink.events.push(TraceEvent {
            kind: EventKind::Span,
            name: active.name,
            tag: active.tag,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            value: 0,
            tid: current_tid(),
            id: active.id,
            parent: active.parent,
            args: active.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        {
            let mut s = tel.span("noop");
            s.arg("k", 1);
        }
        tel.counter("c", 7);
        tel.record_span("r", Some("t"), Instant::now(), &[]);
        assert!(!tel.has_events());
        assert!(tel.drain().is_empty());
        // Defaults to disabled.
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let tel = Telemetry::recording();
        {
            let _outer = tel.span("outer");
            {
                let _inner = tel.span_tagged("inner", "leaf").with_arg("n", 42);
            }
            let _sibling = tel.span("sibling");
        }
        let mut events = tel.drain();
        events.sort_by_key(|e| e.id);
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let sibling = events.iter().find(|e| e.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert_eq!(inner.tag.as_deref(), Some("leaf"));
        assert_eq!(inner.args, vec![("n", 42)]);
        // Children sit inside the parent interval.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        // Drain empties the sink.
        assert!(!tel.has_events());
    }

    #[test]
    fn counters_and_explicit_spans() {
        let tel = Telemetry::recording();
        tel.counter("bytes", 4096);
        let start = Instant::now();
        tel.record_span("request", Some("hit"), start, &[("status", 200)]);
        let events = tel.drain();
        let c = events
            .iter()
            .find(|e| e.kind == EventKind::Counter)
            .unwrap();
        assert_eq!((c.name, c.value, c.id), ("bytes", 4096, 0));
        let s = events.iter().find(|e| e.kind == EventKind::Span).unwrap();
        assert_eq!(s.tag.as_deref(), Some("hit"));
        assert_eq!(s.args, vec![("status", 200)]);
        assert!(s.id >= 1);
    }

    #[test]
    fn set_enabled_gates_recording() {
        let tel = Telemetry::recording();
        tel.set_enabled(false);
        assert!(!tel.is_enabled());
        tel.counter("dropped", 1);
        let _ = tel.span("dropped");
        assert!(tel.drain().is_empty());
        tel.set_enabled(true);
        tel.counter("kept", 1);
        assert_eq!(tel.drain().len(), 1);
        // Sinkless handles ignore set_enabled.
        let off = Telemetry::disabled();
        off.set_enabled(true);
        assert!(!off.is_enabled());
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::recording();
        let clone = tel.clone();
        clone.counter("from-clone", 1);
        assert!(tel.has_events());
        assert_eq!(tel.drain().len(), 1);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let tel = Telemetry::recording();
        let t2 = tel.clone();
        std::thread::spawn(move || t2.counter("other", 1))
            .join()
            .unwrap();
        tel.counter("main", 1);
        let events = tel.drain();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }
}
