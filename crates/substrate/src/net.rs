//! The optional TCP transport layer: real networked parties under the
//! same accounting the simulators meter in-process.
//!
//! The paper's MPC model is simulated everywhere else in this workspace —
//! `mmvc_mpc::Cluster` meters rounds and per-machine loads inside one
//! process. This module promotes a run to *measured wire traffic*:
//!
//! 1. an in-process run records every completed round's per-slot loads
//!    into a [`ChargeLog`](crate::ChargeLog) (a pure observer on the [`RoundLedger`]);
//! 2. a [`Coordinator`] binds a local listener (always port 0 — the OS
//!    assigns a free port, so concurrent harnesses never collide),
//!    accepts one connection per party, and replays each recorded round
//!    as framed TCP traffic: one `Data` frame per loaded machine, with a
//!    payload of exactly `words` bytes (1 word ≡ 1 wire byte);
//! 3. each [`PartyRunner`] — a thread or a separate `mmvc party`
//!    process — plays the machines assigned to it (`machine % parties`),
//!    counts the payload bytes it actually received, and acknowledges
//!    every round through the barrier protocol below;
//! 4. the coordinator charges a **fresh** wire-side [`RoundLedger`] from
//!    the parties' acknowledgements — not from what it sent — so the
//!    resulting trace is a measurement of the wire, independently
//!    re-metered, and byte-identical report parity with the simulator is
//!    a real end-to-end validation of the accounting.
//!
//! # Frame format
//!
//! Every message is one length-prefixed frame with a fixed
//! [`HEADER_LEN`]-byte header (little-endian):
//!
//! | offset | size | field                                   |
//! |--------|------|-----------------------------------------|
//! | 0      | 4    | magic `b"MMVN"`                         |
//! | 4      | 1    | protocol version (= [`VERSION`])        |
//! | 5      | 1    | [`FrameKind`]                           |
//! | 6      | 4    | round (`u32`, 1-based; 0 = handshake)   |
//! | 10     | 4    | sender id (`u32`)                       |
//! | 14     | 4    | receiver id (`u32`)                     |
//! | 18     | 4    | payload length (`u32`, ≤ [`MAX_PAYLOAD`]) |
//! | 22     | 4    | FNV-1a/32 checksum of the payload       |
//!
//! [`FrameDecoder`] reassembles frames incrementally from arbitrary read
//! boundaries with the same `Ok(None)` = "need more bytes" contract as
//! the serve crate's HTTP head parser.
//!
//! # Barrier protocol
//!
//! * handshake — each party sends `Hello` (`sender` = party id, payload =
//!   the party count it was told, as a `u32`); the coordinator rejects
//!   duplicates, out-of-range ids and count mismatches.
//! * per round `r` — coordinator sends the round's `Data` frames, then
//!   `RoundEnd` to **every** party (payload = how many `Data` frames that
//!   party was sent, as a `u32`); each party replies `Ack` whose payload
//!   lists `(machine: u32, words: u64)` for every frame it received, in
//!   ascending machine order. The coordinator verifies the ack against
//!   what it sent, then charges the wire ledger from the ack.
//! * shutdown — `Finish` (payload = the party's cumulative words as a
//!   `u64`) / `FinishAck` echoing the total.
//!
//! # Failure semantics
//!
//! All sockets are nonblocking; every read/write/accept loop carries a
//! hard deadline, so a dead party, a truncated frame or a corrupted
//! checksum surfaces as an [`SubstrateError::Net`] naming the offending
//! party and the round in which it was detected (round 0 = handshake) —
//! the coordinator never hangs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::{RoundCharges, RoundLedger, SubstrateError, Telemetry};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"MMVN";

/// Wire protocol version; bumped on any incompatible header change.
pub const VERSION: u8 = 1;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 26;

/// Upper bound on a single frame's payload (64 MiB). A length field
/// above this is treated as a framing error rather than an allocation
/// request — corrupt streams must not OOM the decoder.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Default deadline for accepting all party connections, in ms.
pub const DEFAULT_ACCEPT_TIMEOUT_MS: u64 = 10_000;

/// Default deadline for any single blocking step (read one frame, flush
/// one write), in ms.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 10_000;

/// How long a nonblocking loop sleeps between polls.
const POLL_SLEEP: Duration = Duration::from_millis(1);

/// The message kinds of the barrier protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Party → coordinator handshake (`sender` = party id, payload =
    /// party count as `u32`).
    Hello = 1,
    /// Coordinator → party: one machine's round load (`sender` =
    /// machine id, payload = exactly `words` bytes).
    Data = 2,
    /// Coordinator → party: the round's traffic is complete (payload =
    /// number of `Data` frames sent to this party, as `u32`).
    RoundEnd = 3,
    /// Party → coordinator: per-machine receipt list for the round
    /// (payload = `(machine: u32, words: u64)` entries, ascending).
    Ack = 4,
    /// Coordinator → party: run over (payload = party's cumulative
    /// words as `u64`).
    Finish = 5,
    /// Party → coordinator: echoes the cumulative total back.
    FinishAck = 6,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::RoundEnd),
            4 => Some(FrameKind::Ack),
            5 => Some(FrameKind::Finish),
            6 => Some(FrameKind::FinishAck),
            _ => None,
        }
    }
}

/// One decoded wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Round the message belongs to (1-based; 0 = handshake/shutdown).
    pub round: u32,
    /// Sender id — a machine id for `Data`, a party id otherwise.
    pub sender: u32,
    /// Receiver id — a party id for coordinator→party frames, 0 for
    /// party→coordinator frames.
    pub receiver: u32,
    /// Message payload; its checksum travels in the header.
    pub payload: Vec<u8>,
}

/// FNV-1a 32-bit hash — the frame checksum. Not cryptographic; it
/// exists to catch truncation and corruption, mirroring what the tests
/// inject.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes a frame into its wire bytes (header + payload).
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`] — encoders control
/// their payloads, so an oversized one is a logic error, not an I/O
/// condition.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    assert!(
        frame.payload.len() <= MAX_PAYLOAD,
        "frame payload exceeds MAX_PAYLOAD"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.round.to_le_bytes());
    out.extend_from_slice(&frame.sender.to_le_bytes());
    out.extend_from_slice(&frame.receiver.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a32(&frame.payload).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    out
}

/// Incremental frame reassembler.
///
/// Bytes arrive in arbitrary chunks via [`push`](Self::push);
/// [`next_frame`](Self::next_frame) yields `Ok(Some(frame))` once a
/// whole frame is buffered, `Ok(None)` when more bytes are needed (the
/// serve head parser's contract), and `Err` on a malformed stream —
/// after which the stream cannot be re-framed and must be closed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly read bytes to the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete frame from the buffer.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, SubstrateError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0..4] != MAGIC {
            return Err(frame_err(format!(
                "bad magic {:02x?} (expected {:02x?})",
                &self.buf[0..4],
                MAGIC
            )));
        }
        if self.buf[4] != VERSION {
            return Err(frame_err(format!(
                "unsupported protocol version {} (expected {VERSION})",
                self.buf[4]
            )));
        }
        let kind = FrameKind::from_u8(self.buf[5])
            .ok_or_else(|| frame_err(format!("unknown frame kind {}", self.buf[5])))?;
        let round = u32::from_le_bytes(self.buf[6..10].try_into().unwrap());
        let sender = u32::from_le_bytes(self.buf[10..14].try_into().unwrap());
        let receiver = u32::from_le_bytes(self.buf[14..18].try_into().unwrap());
        let payload_len = u32::from_le_bytes(self.buf[18..22].try_into().unwrap()) as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(frame_err(format!(
                "payload length {payload_len} exceeds cap {MAX_PAYLOAD}"
            )));
        }
        let checksum = u32::from_le_bytes(self.buf[22..26].try_into().unwrap());
        if self.buf.len() < HEADER_LEN + payload_len {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + payload_len].to_vec();
        let actual = fnv1a32(&payload);
        if actual != checksum {
            return Err(frame_err(format!(
                "checksum mismatch on {kind:?} frame (round {round}): header says {checksum:#010x}, payload hashes to {actual:#010x}"
            )));
        }
        self.buf.drain(..HEADER_LEN + payload_len);
        Ok(Some(Frame {
            kind,
            round,
            sender,
            receiver,
            payload,
        }))
    }
}

fn frame_err(message: String) -> SubstrateError {
    SubstrateError::Frame { message }
}

fn net_err(party: usize, round: usize, message: impl Into<String>) -> SubstrateError {
    SubstrateError::Net {
        party,
        round,
        message: message.into(),
    }
}

/// The payload byte a `Data` frame for `machine` in `round` is filled
/// with — deterministic filler, so both ends can describe corruption
/// precisely in diagnostics.
fn data_fill(round: u32, machine: u32) -> u8 {
    (round.wrapping_mul(31).wrapping_add(machine) & 0xff) as u8
}

// ---------------------------------------------------------------------------
// Deadline-bounded nonblocking I/O helpers (the serve readiness-loop
// pattern: poll, WouldBlock → sleep, hard deadline → error).
// ---------------------------------------------------------------------------

fn write_all_deadline(
    stream: &mut TcpStream,
    mut bytes: &[u8],
    deadline: Instant,
    party: usize,
    round: usize,
) -> Result<(), SubstrateError> {
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return Err(net_err(party, round, "connection closed during write")),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(net_err(party, round, "write deadline exceeded"));
                }
                std::thread::sleep(POLL_SLEEP);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(net_err(party, round, format!("write failed: {e}"))),
        }
    }
    Ok(())
}

/// Reads until the decoder yields one frame, the peer closes, the stream
/// is malformed, or the deadline passes. `Frame` errors from the decoder
/// are re-attributed to `(party, round)` so diagnostics always name the
/// offender.
fn read_frame_deadline(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    deadline: Instant,
    party: usize,
    round: usize,
) -> Result<Frame, SubstrateError> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => return Ok(frame),
            Ok(None) => {}
            Err(SubstrateError::Frame { message }) => return Err(net_err(party, round, message)),
            Err(e) => return Err(e),
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                let detail = if decoder.buffered() > 0 {
                    format!(
                        "connection closed mid-frame ({} stray bytes buffered)",
                        decoder.buffered()
                    )
                } else {
                    "connection closed before a frame arrived".to_string()
                };
                return Err(net_err(party, round, detail));
            }
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(net_err(party, round, "read deadline exceeded"));
                }
                std::thread::sleep(POLL_SLEEP);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(net_err(party, round, format!("read failed: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Party side
// ---------------------------------------------------------------------------

/// An injectable misbehaviour for fault testing (threaded through
/// `mmvc party --fault …`). All faults trigger when the named round's
/// `RoundEnd` barrier is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartyFault {
    /// Drop the connection without acking — simulates a crash mid-round.
    DieAtRound(u32),
    /// Send the round's `Ack` with a deliberately wrong checksum.
    CorruptChecksumAtRound(u32),
    /// Send only the first half of the `Ack` frame's bytes, then close —
    /// a truncated frame.
    TruncateAckAtRound(u32),
}

impl PartyFault {
    /// Parses the CLI spelling: `die:R`, `corrupt:R`, `truncate:R`.
    pub fn parse(s: &str) -> Option<PartyFault> {
        let (kind, round) = s.split_once(':')?;
        let round: u32 = round.parse().ok()?;
        match kind {
            "die" => Some(PartyFault::DieAtRound(round)),
            "corrupt" => Some(PartyFault::CorruptChecksumAtRound(round)),
            "truncate" => Some(PartyFault::TruncateAckAtRound(round)),
            _ => None,
        }
    }

    fn round(&self) -> u32 {
        match *self {
            PartyFault::DieAtRound(r)
            | PartyFault::CorruptChecksumAtRound(r)
            | PartyFault::TruncateAckAtRound(r) => r,
        }
    }
}

/// What a party measured over its run; the process-mode CLI prints
/// these so the harness can cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartyStats {
    /// Barrier rounds the party acknowledged.
    pub rounds: usize,
    /// `Data` frames received.
    pub data_frames: usize,
    /// Total payload bytes received in `Data` frames — the party-side
    /// word count (1 word ≡ 1 byte).
    pub words_received: usize,
}

/// Executes one party's role: connect, handshake, receive each round's
/// machine loads, acknowledge through the barrier, echo the final total.
#[derive(Debug, Clone)]
pub struct PartyRunner {
    /// This party's 0-based id.
    pub party: usize,
    /// Total number of parties in the run.
    pub parties: usize,
    /// The coordinator's listen address.
    pub addr: SocketAddr,
    /// Deadline for any single read/write step, in ms.
    pub io_timeout_ms: u64,
    /// Optional injected misbehaviour (fault tests only).
    pub fault: Option<PartyFault>,
}

impl PartyRunner {
    /// A runner with default timeouts and no fault.
    pub fn new(party: usize, parties: usize, addr: SocketAddr) -> Self {
        PartyRunner {
            party,
            parties,
            addr,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
            fault: None,
        }
    }

    fn deadline(&self) -> Instant {
        Instant::now() + Duration::from_millis(self.io_timeout_ms)
    }

    /// Runs the party to completion (or to its injected fault, which
    /// also returns an error so process-mode parties exit nonzero).
    pub fn run(&self) -> Result<PartyStats, SubstrateError> {
        let mut stream = self.connect()?;
        let mut decoder = FrameDecoder::new();

        let hello = Frame {
            kind: FrameKind::Hello,
            round: 0,
            sender: self.party as u32,
            receiver: 0,
            payload: (self.parties as u32).to_le_bytes().to_vec(),
        };
        write_all_deadline(
            &mut stream,
            &encode_frame(&hello),
            self.deadline(),
            self.party,
            0,
        )?;

        let mut stats = PartyStats::default();
        let mut entries: Vec<(u32, u64)> = Vec::new();
        loop {
            let frame =
                read_frame_deadline(&mut stream, &mut decoder, self.deadline(), self.party, 0)?;
            match frame.kind {
                FrameKind::Data => {
                    if frame.receiver as usize != self.party {
                        return Err(net_err(
                            self.party,
                            frame.round as usize,
                            format!(
                                "misrouted data frame for party {} (machine {})",
                                frame.receiver, frame.sender
                            ),
                        ));
                    }
                    stats.data_frames += 1;
                    stats.words_received += frame.payload.len();
                    entries.push((frame.sender, frame.payload.len() as u64));
                }
                FrameKind::RoundEnd => {
                    let round = frame.round;
                    let expect = frame
                        .payload
                        .get(0..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                        .ok_or_else(|| {
                            net_err(self.party, round as usize, "malformed RoundEnd payload")
                        })?;
                    if entries.len() != expect as usize {
                        return Err(net_err(
                            self.party,
                            round as usize,
                            format!(
                                "round barrier mismatch: coordinator announced {expect} data frames, received {}",
                                entries.len()
                            ),
                        ));
                    }
                    entries.sort_unstable();
                    if let Some(fault) = self.fault {
                        if fault.round() == round {
                            return self.inject_fault(fault, &mut stream, &entries, round);
                        }
                    }
                    let ack = ack_frame(self.party, round, &entries);
                    write_all_deadline(
                        &mut stream,
                        &encode_frame(&ack),
                        self.deadline(),
                        self.party,
                        round as usize,
                    )?;
                    entries.clear();
                    stats.rounds += 1;
                }
                FrameKind::Finish => {
                    let told = frame
                        .payload
                        .get(0..8)
                        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                        .ok_or_else(|| net_err(self.party, 0, "malformed Finish payload"))?;
                    if told != stats.words_received as u64 {
                        return Err(net_err(
                            self.party,
                            0,
                            format!(
                                "final total mismatch: coordinator claims {told} words, party measured {}",
                                stats.words_received
                            ),
                        ));
                    }
                    let fin = Frame {
                        kind: FrameKind::FinishAck,
                        round: 0,
                        sender: self.party as u32,
                        receiver: 0,
                        payload: told.to_le_bytes().to_vec(),
                    };
                    write_all_deadline(
                        &mut stream,
                        &encode_frame(&fin),
                        self.deadline(),
                        self.party,
                        0,
                    )?;
                    return Ok(stats);
                }
                other => {
                    return Err(net_err(
                        self.party,
                        frame.round as usize,
                        format!("unexpected {other:?} frame from coordinator"),
                    ));
                }
            }
        }
    }

    /// Connects to the coordinator, retrying refused attempts until the
    /// deadline (the harness may launch parties before the accept loop
    /// spins up), then switches the stream to nonblocking.
    fn connect(&self) -> Result<TcpStream, SubstrateError> {
        let deadline = self.deadline();
        loop {
            match TcpStream::connect_timeout(&self.addr, Duration::from_millis(250)) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_nonblocking(true).map_err(|e| {
                        net_err(self.party, 0, format!("set_nonblocking failed: {e}"))
                    })?;
                    return Ok(stream);
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(net_err(
                            self.party,
                            0,
                            format!("could not connect to coordinator at {}: {e}", self.addr),
                        ));
                    }
                    std::thread::sleep(POLL_SLEEP);
                }
            }
        }
    }

    fn inject_fault(
        &self,
        fault: PartyFault,
        stream: &mut TcpStream,
        entries: &[(u32, u64)],
        round: u32,
    ) -> Result<PartyStats, SubstrateError> {
        match fault {
            PartyFault::DieAtRound(_) => {
                drop(stream.shutdown(std::net::Shutdown::Both));
            }
            PartyFault::CorruptChecksumAtRound(_) => {
                let mut bytes = encode_frame(&ack_frame(self.party, round, entries));
                bytes[22] ^= 0xff; // flip a checksum byte
                write_all_deadline(stream, &bytes, self.deadline(), self.party, round as usize)?;
            }
            PartyFault::TruncateAckAtRound(_) => {
                let bytes = encode_frame(&ack_frame(self.party, round, entries));
                let half = &bytes[..bytes.len() / 2];
                write_all_deadline(stream, half, self.deadline(), self.party, round as usize)?;
                drop(stream.shutdown(std::net::Shutdown::Write));
            }
        }
        Err(net_err(
            self.party,
            round as usize,
            format!("injected fault {fault:?}"),
        ))
    }
}

fn ack_frame(party: usize, round: u32, entries: &[(u32, u64)]) -> Frame {
    let mut payload = Vec::with_capacity(entries.len() * 12);
    for &(machine, words) in entries {
        payload.extend_from_slice(&machine.to_le_bytes());
        payload.extend_from_slice(&words.to_le_bytes());
    }
    Frame {
        kind: FrameKind::Ack,
        round,
        sender: party as u32,
        receiver: 0,
        payload,
    }
}

fn parse_ack_entries(payload: &[u8]) -> Option<Vec<(u32, u64)>> {
    if !payload.len().is_multiple_of(12) {
        return None;
    }
    let mut out = Vec::with_capacity(payload.len() / 12);
    for chunk in payload.chunks_exact(12) {
        let machine = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let words = u64::from_le_bytes(chunk[4..12].try_into().unwrap());
        out.push((machine, words));
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Coordinator-side knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of parties the run is sharded over (≥ 1).
    pub parties: usize,
    /// Deadline for all parties to connect and handshake, in ms.
    pub accept_timeout_ms: u64,
    /// Deadline for any single read/write step after the handshake, in ms.
    pub io_timeout_ms: u64,
}

impl NetConfig {
    /// A config for `parties` parties with default timeouts.
    pub fn new(parties: usize) -> Self {
        NetConfig {
            parties,
            accept_timeout_ms: DEFAULT_ACCEPT_TIMEOUT_MS,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
        }
    }
}

/// What the coordinator measured on the wire. `data_payload_bytes` is
/// the quantity the parity tests pin against the ledger's
/// `total_words` (1 word ≡ 1 payload byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Barrier rounds completed.
    pub rounds: usize,
    /// `Data` frames framed onto the wire.
    pub data_frames: usize,
    /// Sum of `Data` payload bytes actually sent.
    pub data_payload_bytes: usize,
    /// Every byte written by the coordinator, headers included.
    pub bytes_sent: usize,
    /// Every byte of party frames consumed by the coordinator.
    pub bytes_received: usize,
}

struct PartyConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    words_total: u64,
}

/// The round-barrier coordinator: binds a listener on an OS-assigned
/// port, accepts one connection per party, replays a [`ChargeLog`](crate::ChargeLog)
/// script as framed traffic, and re-meters the run from party
/// acknowledgements into a fresh wire-side [`RoundLedger`].
pub struct Coordinator {
    listener: TcpListener,
    cfg: NetConfig,
    local_addr: SocketAddr,
}

impl Coordinator {
    /// Binds `127.0.0.1:0` — the OS picks a free port, which is the
    /// whole port-collision story: concurrent harnesses each get their
    /// own listener and pass the assigned address to their parties.
    pub fn bind(cfg: NetConfig) -> Result<Self, SubstrateError> {
        if cfg.parties == 0 {
            return Err(SubstrateError::InvalidConfig {
                substrate: "net",
                message: "need at least one party".into(),
            });
        }
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| net_err(0, 0, format!("bind failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err(0, 0, format!("set_nonblocking failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| net_err(0, 0, format!("local_addr failed: {e}")))?;
        Ok(Coordinator {
            listener,
            cfg,
            local_addr,
        })
    }

    /// The OS-assigned listen address to hand to parties.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn io_deadline(&self) -> Instant {
        Instant::now() + Duration::from_millis(self.cfg.io_timeout_ms)
    }

    /// Accepts and handshakes all parties, replays the recorded round
    /// charges as wire traffic, and returns the wire-side ledger (its
    /// trace is the distributed run's measured accounting) plus raw
    /// wire statistics. Every round emits a `net.round` telemetry span
    /// tagged with the bytes sent and received.
    pub fn run(
        &self,
        substrate: &'static str,
        slots: usize,
        charges: &[RoundCharges],
        telemetry: &Telemetry,
    ) -> Result<(RoundLedger, WireStats), SubstrateError> {
        let mut conns = self.accept_parties()?;
        let mut ledger = RoundLedger::new(substrate, slots.max(1));
        let mut stats = WireStats::default();

        for (idx, rc) in charges.iter().enumerate() {
            let round = (idx + 1) as u32;
            let mut span = telemetry.span("net.round");
            span.arg("round", u64::from(round));
            let before_sent = stats.bytes_sent;
            let before_recv = stats.bytes_received;

            // Scatter: one Data frame per loaded machine, routed to the
            // party owning that machine (machine % parties).
            let mut expected: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.cfg.parties];
            for (machine, &words) in rc.loads.iter().enumerate() {
                if words == 0 {
                    continue;
                }
                let party = machine % self.cfg.parties;
                let frame = Frame {
                    kind: FrameKind::Data,
                    round,
                    sender: machine as u32,
                    receiver: party as u32,
                    payload: vec![data_fill(round, machine as u32); words],
                };
                let bytes = encode_frame(&frame);
                write_all_deadline(
                    &mut conns[party].stream,
                    &bytes,
                    self.io_deadline(),
                    party,
                    round as usize,
                )?;
                stats.data_frames += 1;
                stats.data_payload_bytes += words;
                stats.bytes_sent += bytes.len();
                expected[party].push((machine as u32, words as u64));
            }

            // Barrier: RoundEnd to every party, even idle ones.
            for (party, conn) in conns.iter_mut().enumerate() {
                let frame = Frame {
                    kind: FrameKind::RoundEnd,
                    round,
                    sender: 0,
                    receiver: party as u32,
                    payload: (expected[party].len() as u32).to_le_bytes().to_vec(),
                };
                let bytes = encode_frame(&frame);
                write_all_deadline(
                    &mut conn.stream,
                    &bytes,
                    self.io_deadline(),
                    party,
                    round as usize,
                )?;
                stats.bytes_sent += bytes.len();
            }

            // Gather: each party's ack is the authoritative receipt —
            // the wire ledger is charged from acks, not from sends.
            ledger.begin_round()?;
            for (party, conn) in conns.iter_mut().enumerate() {
                let ack = read_frame_deadline(
                    &mut conn.stream,
                    &mut conn.decoder,
                    self.io_deadline(),
                    party,
                    round as usize,
                )?;
                stats.bytes_received += HEADER_LEN + ack.payload.len();
                if ack.kind != FrameKind::Ack || ack.round != round {
                    ledger.abandon_round();
                    return Err(net_err(
                        party,
                        round as usize,
                        format!(
                            "expected Ack for round {round}, got {:?} for round {}",
                            ack.kind, ack.round
                        ),
                    ));
                }
                let entries = parse_ack_entries(&ack.payload).ok_or_else(|| {
                    net_err(party, round as usize, "malformed Ack payload length")
                })?;
                if entries != expected[party] {
                    ledger.abandon_round();
                    return Err(net_err(
                        party,
                        round as usize,
                        format!(
                            "ack does not match sent traffic: sent {:?}, acknowledged {:?}",
                            expected[party], entries
                        ),
                    ));
                }
                for &(machine, words) in &entries {
                    ledger.charge(machine as usize, words as usize)?;
                    conn.words_total += words;
                }
            }
            ledger.end_round()?;
            stats.rounds += 1;
            span.arg("bytes_sent", (stats.bytes_sent - before_sent) as u64);
            span.arg("bytes_recv", (stats.bytes_received - before_recv) as u64);
            drop(span);
        }

        // Shutdown: every party must confirm the same cumulative total.
        for (party, conn) in conns.iter_mut().enumerate() {
            let frame = Frame {
                kind: FrameKind::Finish,
                round: 0,
                sender: 0,
                receiver: party as u32,
                payload: conn.words_total.to_le_bytes().to_vec(),
            };
            let bytes = encode_frame(&frame);
            write_all_deadline(&mut conn.stream, &bytes, self.io_deadline(), party, 0)?;
            stats.bytes_sent += bytes.len();
        }
        for (party, conn) in conns.iter_mut().enumerate() {
            let fin = read_frame_deadline(
                &mut conn.stream,
                &mut conn.decoder,
                self.io_deadline(),
                party,
                0,
            )?;
            stats.bytes_received += HEADER_LEN + fin.payload.len();
            let echoed = (fin.kind == FrameKind::FinishAck)
                .then(|| fin.payload.get(0..8))
                .flatten()
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()));
            if echoed != Some(conn.words_total) {
                return Err(net_err(
                    party,
                    0,
                    format!(
                        "final ack mismatch: expected echo of {} words, got {:?}",
                        conn.words_total, fin
                    ),
                ));
            }
        }
        Ok((ledger, stats))
    }

    /// Accepts connections until one `Hello` per party id has arrived
    /// (in any order), or the accept deadline passes.
    fn accept_parties(&self) -> Result<Vec<PartyConn>, SubstrateError> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.accept_timeout_ms);
        let mut slots: Vec<Option<PartyConn>> = Vec::new();
        slots.resize_with(self.cfg.parties, || None);
        let mut connected = 0usize;
        while connected < self.cfg.parties {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| net_err(0, 0, format!("set_nonblocking failed: {e}")))?;
                    let mut conn = PartyConn {
                        stream,
                        decoder: FrameDecoder::new(),
                        words_total: 0,
                    };
                    let hello = read_frame_deadline(
                        &mut conn.stream,
                        &mut conn.decoder,
                        deadline.min(self.io_deadline()),
                        usize::MAX,
                        0,
                    )
                    .map_err(|e| match e {
                        SubstrateError::Net { round, message, .. } => net_err(
                            connected,
                            round,
                            format!("handshake read failed: {message}"),
                        ),
                        other => other,
                    })?;
                    let party = hello.sender as usize;
                    if hello.kind != FrameKind::Hello {
                        return Err(net_err(
                            party,
                            0,
                            format!("expected Hello, got {:?}", hello.kind),
                        ));
                    }
                    if party >= self.cfg.parties {
                        return Err(net_err(
                            party,
                            0,
                            format!("party id out of range (run has {})", self.cfg.parties),
                        ));
                    }
                    let told = hello
                        .payload
                        .get(0..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()));
                    if told != Some(self.cfg.parties as u32) {
                        return Err(net_err(
                            party,
                            0,
                            format!(
                                "party count mismatch: party was launched for {told:?} parties, coordinator runs {}",
                                self.cfg.parties
                            ),
                        ));
                    }
                    if slots[party].is_some() {
                        return Err(net_err(party, 0, "duplicate Hello for this party id"));
                    }
                    slots[party] = Some(conn);
                    connected += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let missing: Vec<usize> = slots
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.is_none())
                            .map(|(i, _)| i)
                            .collect();
                        return Err(net_err(
                            missing.first().copied().unwrap_or(0),
                            0,
                            format!(
                                "accept deadline exceeded; parties {missing:?} never connected"
                            ),
                        ));
                    }
                    std::thread::sleep(POLL_SLEEP);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(net_err(0, 0, format!("accept failed: {e}"))),
            }
        }
        Ok(slots.into_iter().map(|s| s.unwrap()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame {
            kind: FrameKind::Data,
            round: 7,
            sender: 3,
            receiver: 1,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn fnv1a32_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let frame = sample_frame();
        let bytes = encode_frame(&frame);
        assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_needs_more_bytes_until_complete() {
        let bytes = encode_frame(&sample_frame());
        let mut dec = FrameDecoder::new();
        for &b in &bytes[..bytes.len() - 1] {
            dec.push(&[b]);
            assert_eq!(dec.next_frame().unwrap(), None, "premature frame");
        }
        dec.push(&bytes[bytes.len() - 1..]);
        assert_eq!(dec.next_frame().unwrap(), Some(sample_frame()));
    }

    #[test]
    fn decoder_rejects_bad_magic_version_kind_checksum() {
        let good = encode_frame(&sample_frame());

        let mut bad = good.clone();
        bad[0] = b'X';
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec.next_frame().unwrap_err().to_string().contains("magic"));

        let mut bad = good.clone();
        bad[4] = 99;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec
            .next_frame()
            .unwrap_err()
            .to_string()
            .contains("version"));

        let mut bad = good.clone();
        bad[5] = 200;
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec.next_frame().unwrap_err().to_string().contains("kind"));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xff; // corrupt payload vs checksum
        let mut dec = FrameDecoder::new();
        dec.push(&bad);
        assert!(dec
            .next_frame()
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }

    #[test]
    fn decoder_rejects_oversized_payload_without_allocating() {
        let mut bytes = encode_frame(&sample_frame());
        bytes[18..22].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(dec.next_frame().unwrap_err().to_string().contains("cap"));
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let a = sample_frame();
        let b = Frame {
            kind: FrameKind::Ack,
            round: 8,
            sender: 0,
            receiver: 0,
            payload: vec![],
        };
        let mut stream = encode_frame(&a);
        stream.extend_from_slice(&encode_frame(&b));
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert_eq!(dec.next_frame().unwrap(), Some(a));
        assert_eq!(dec.next_frame().unwrap(), Some(b));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn split_at_every_boundary_reassembles() {
        // The satellite pin: a two-frame stream fed in two chunks split
        // at EVERY byte offset decodes identically, with Ok(None) while
        // incomplete — the serve head parser's contract.
        let frames = vec![
            sample_frame(),
            Frame {
                kind: FrameKind::RoundEnd,
                round: 7,
                sender: 0,
                receiver: 1,
                payload: 2u32.to_le_bytes().to_vec(),
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            dec.push(&stream[..split]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
            dec.push(&stream[split..]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
            assert_eq!(out, frames, "split at {split}");
            assert_eq!(dec.buffered(), 0, "split at {split}");
        }
    }

    #[test]
    fn party_fault_parses_cli_spellings() {
        assert_eq!(PartyFault::parse("die:3"), Some(PartyFault::DieAtRound(3)));
        assert_eq!(
            PartyFault::parse("corrupt:1"),
            Some(PartyFault::CorruptChecksumAtRound(1))
        );
        assert_eq!(
            PartyFault::parse("truncate:2"),
            Some(PartyFault::TruncateAckAtRound(2))
        );
        assert_eq!(PartyFault::parse("die"), None);
        assert_eq!(PartyFault::parse("explode:1"), None);
        assert_eq!(PartyFault::parse("die:x"), None);
    }

    fn run_script(parties: usize, charges: Vec<RoundCharges>) -> (RoundLedger, WireStats) {
        let coord = Coordinator::bind(NetConfig::new(parties)).unwrap();
        let addr = coord.local_addr();
        let handles: Vec<_> = (0..parties)
            .map(|p| std::thread::spawn(move || PartyRunner::new(p, parties, addr).run()))
            .collect();
        let slots = charges.iter().map(|c| c.loads.len()).max().unwrap_or(1);
        let out = coord
            .run("mpc", slots, &charges, &Telemetry::disabled())
            .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        out
    }

    #[test]
    fn coordinator_reconstructs_trace_from_acks() {
        let charges = vec![
            RoundCharges {
                substrate: "mpc",
                loads: vec![4, 0, 9, 2],
            },
            RoundCharges {
                substrate: "mpc",
                loads: vec![0, 0, 0, 0],
            },
            RoundCharges {
                substrate: "mpc",
                loads: vec![1, 1, 1, 1],
            },
        ];
        let (ledger, stats) = run_script(3, charges);
        let trace = ledger.trace();
        assert_eq!(trace.rounds(), 3);
        assert_eq!(trace.max_load_words(), 9);
        assert_eq!(trace.total_words(), 15 + 4); // rounds: 15, 0, 4
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.data_frames, 3 + 4); // rounds: 3, 0, 4
                                              // The headline cross-check: ledger words == wire payload bytes.
        assert_eq!(stats.data_payload_bytes, trace.total_words());
        assert!(stats.bytes_sent > stats.data_payload_bytes);
    }

    #[test]
    fn single_party_owns_every_machine() {
        let charges = vec![RoundCharges {
            substrate: "mpc",
            loads: vec![5, 6, 7],
        }];
        let (ledger, stats) = run_script(1, charges);
        assert_eq!(ledger.trace().total_words(), 18);
        assert_eq!(stats.data_payload_bytes, 18);
    }

    #[test]
    fn telemetry_gets_net_round_spans() {
        let tel = Telemetry::recording();
        let coord = Coordinator::bind(NetConfig::new(2)).unwrap();
        let addr = coord.local_addr();
        let handles: Vec<_> = (0..2)
            .map(|p| std::thread::spawn(move || PartyRunner::new(p, 2, addr).run()))
            .collect();
        let charges = vec![
            RoundCharges {
                substrate: "mpc",
                loads: vec![3, 2],
            },
            RoundCharges {
                substrate: "mpc",
                loads: vec![0, 8],
            },
        ];
        let (_, stats) = coord.run("mpc", 2, &charges, &tel).unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let spans: Vec<_> = tel
            .drain()
            .into_iter()
            .filter(|e| e.name == "net.round")
            .collect();
        assert_eq!(spans.len(), 2);
        let sent: u64 = spans
            .iter()
            .map(|s| s.args.iter().find(|(k, _)| *k == "bytes_sent").unwrap().1)
            .sum();
        let recv: u64 = spans
            .iter()
            .map(|s| s.args.iter().find(|(k, _)| *k == "bytes_recv").unwrap().1)
            .sum();
        assert!(sent as usize >= stats.data_payload_bytes);
        assert!(recv > 0);
    }

    #[test]
    fn coordinator_rejects_party_count_mismatch() {
        let coord = Coordinator::bind(NetConfig::new(2)).unwrap();
        let addr = coord.local_addr();
        // Party 0 thinks the run has 3 parties; party 1 is honest.
        let h0 = std::thread::spawn(move || PartyRunner::new(0, 3, addr).run());
        let h1 = std::thread::spawn(move || {
            let mut r = PartyRunner::new(1, 2, addr);
            r.io_timeout_ms = 2_000;
            r.run()
        });
        let err = coord
            .run(
                "mpc",
                2,
                &[RoundCharges {
                    substrate: "mpc",
                    loads: vec![1, 1],
                }],
                &Telemetry::disabled(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("party count mismatch"), "{err}");
        let _ = h0.join().unwrap();
        let _ = h1.join().unwrap();
    }

    #[test]
    fn accept_deadline_bounds_missing_parties() {
        let mut cfg = NetConfig::new(2);
        cfg.accept_timeout_ms = 200;
        let coord = Coordinator::bind(cfg).unwrap();
        let addr = coord.local_addr();
        // Only party 0 shows up.
        let h = std::thread::spawn(move || {
            let mut r = PartyRunner::new(0, 2, addr);
            r.io_timeout_ms = 2_000;
            r.run()
        });
        let start = Instant::now();
        let err = coord
            .run("mpc", 2, &[], &Telemetry::disabled())
            .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "hung on accept");
        let s = err.to_string();
        assert!(s.contains("party 1") && s.contains("handshake"), "{s}");
        let _ = h.join().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_frame() -> impl Strategy<Value = Frame> {
        (
            1u8..7,
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(kind, round, sender, receiver, payload)| Frame {
                kind: FrameKind::from_u8(kind).unwrap(),
                round,
                sender,
                receiver,
                payload,
            })
    }

    proptest! {
        #[test]
        fn frame_roundtrips(frame in arb_frame()) {
            let bytes = encode_frame(&frame);
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            prop_assert_eq!(dec.next_frame().unwrap(), Some(frame));
            prop_assert_eq!(dec.next_frame().unwrap(), None);
        }

        #[test]
        fn frame_stream_survives_arbitrary_chunking(
            frames in proptest::collection::vec(arb_frame(), 1..6),
            chunks in proptest::collection::vec(1usize..64, 1..64)
        ) {
            let mut stream = Vec::new();
            for f in &frames {
                stream.extend_from_slice(&encode_frame(f));
            }
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            let mut off = 0usize;
            let mut chunk_iter = chunks.into_iter().cycle();
            while off < stream.len() {
                let take = chunk_iter.next().unwrap().min(stream.len() - off);
                dec.push(&stream[off..off + take]);
                off += take;
                while let Some(f) = dec.next_frame().unwrap() {
                    out.push(f);
                }
            }
            prop_assert_eq!(out, frames);
            prop_assert_eq!(dec.buffered(), 0);
        }

        #[test]
        fn corrupting_any_payload_byte_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..128),
            idx in any::<usize>(),
            flip in 1u8..255
        ) {
            let frame = Frame {
                kind: FrameKind::Data, round: 1, sender: 0, receiver: 0, payload,
            };
            let mut bytes = encode_frame(&frame);
            let i = HEADER_LEN + idx % frame.payload.len();
            bytes[i] ^= flip;
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let err = dec.next_frame().unwrap_err().to_string();
            prop_assert!(err.contains("checksum"));
        }
    }
}
