//! # mmvc-substrate
//!
//! The shared metering layer under both simulated substrates of the `mmvc`
//! workspace — the from-scratch reproduction of *"Improved Massively
//! Parallel Computation Algorithms for MIS, Matching, and Vertex Cover"*
//! (Ghaffari, Gouleakis, Konrad, Mitrović, Rubinfeld — PODC 2018).
//!
//! The paper states its theorems against **two** models: MPC (machines ×
//! words of memory; Section 1.1.1) and CONGESTED-CLIQUE (per-link
//! bandwidth; Section 1.1.2). Both charge *rounds* and *words*, and every
//! experiment in the harness reports the same three measured quantities
//! against the paper's claims. This crate owns that common vocabulary:
//!
//! * [`Substrate`] — the trait both `mmvc_mpc::Cluster` and
//!   `mmvc_clique::CliqueNetwork` implement: `rounds()`,
//!   `max_load_words()`, `total_words()`, and access to the full
//!   [`ExecutionTrace`];
//! * [`ExecutionTrace`] / [`RoundSummary`] — the unified per-round record;
//! * [`SubstrateError`] — the substrate-agnostic failure type every
//!   model-specific error converts into.
//!
//! ```
//! use mmvc_substrate::{ExecutionTrace, RoundSummary, Substrate};
//!
//! // Anything carrying an ExecutionTrace is a read-only Substrate.
//! let mut trace = ExecutionTrace::new();
//! trace.record(RoundSummary { round: 1, max_load_words: 8, total_words: 24 });
//!
//! let s: &dyn Substrate = &trace;
//! assert_eq!(s.rounds(), 1);
//! assert_eq!(s.max_load_words(), 8);
//! assert_eq!(s.total_words(), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod trace;

pub use error::SubstrateError;
pub use trace::{ExecutionTrace, RoundSummary};

/// A metered execution substrate.
///
/// Implemented by the live simulators (`mmvc_mpc::Cluster`,
/// `mmvc_clique::CliqueNetwork`) and by [`ExecutionTrace`] itself, so the
/// harness can report rounds and loads through one code path whether it
/// holds a live substrate or a finished trace.
pub trait Substrate {
    /// Short name of the model, e.g. `"mpc"` or `"congested-clique"`.
    fn substrate_name(&self) -> &'static str;

    /// The per-round record of the execution so far.
    fn execution_trace(&self) -> &ExecutionTrace;

    /// Number of completed rounds — the complexity measure of both models.
    fn rounds(&self) -> usize {
        self.execution_trace().rounds()
    }

    /// The largest per-machine (MPC) or per-player (clique) load observed
    /// in any round, in words.
    fn max_load_words(&self) -> usize {
        self.execution_trace().max_load_words()
    }

    /// Total words communicated over the whole execution.
    fn total_words(&self) -> usize {
        self.execution_trace().total_words()
    }
}

impl Substrate for ExecutionTrace {
    fn substrate_name(&self) -> &'static str {
        "trace"
    }

    fn execution_trace(&self) -> &ExecutionTrace {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_a_substrate() {
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 5,
            total_words: 11,
        });
        t.record(RoundSummary {
            round: 2,
            max_load_words: 9,
            total_words: 2,
        });
        let s: &dyn Substrate = &t;
        assert_eq!(s.substrate_name(), "trace");
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.max_load_words(), 9);
        assert_eq!(s.total_words(), 13);
        assert_eq!(s.execution_trace().per_round().len(), 2);
    }
}
