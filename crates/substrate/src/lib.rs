//! # mmvc-substrate
//!
//! The shared metering layer under both simulated substrates of the `mmvc`
//! workspace — the from-scratch reproduction of *"Improved Massively
//! Parallel Computation Algorithms for MIS, Matching, and Vertex Cover"*
//! (Ghaffari, Gouleakis, Konrad, Mitrović, Rubinfeld — PODC 2018).
//!
//! The paper states its theorems against **two** models: MPC (machines ×
//! words of memory; Section 1.1.1) and CONGESTED-CLIQUE (per-link
//! bandwidth; Section 1.1.2). Both charge *rounds* and *words*, and every
//! experiment in the harness reports the same three measured quantities
//! against the paper's claims. This crate owns that common vocabulary:
//!
//! * [`Substrate`] — the trait both `mmvc_mpc::Cluster` and
//!   `mmvc_clique::CliqueNetwork` implement: `rounds()`,
//!   `max_load_words()`, `total_words()`, and access to the full
//!   [`ExecutionTrace`];
//! * [`ExecutionTrace`] / [`RoundSummary`] — the unified per-round record;
//! * [`RoundLedger`] — the shared open-round state machine (begin /
//!   charge / end, protocol guards) both simulators are thin policy
//!   wrappers over;
//! * [`ExecutorConfig`] — deterministic sequential/threaded execution of
//!   per-machine and per-player closures (results byte-identical for any
//!   thread count);
//! * [`WorkerPool`] — the streaming counterpart for jobs that arrive
//!   over time (the serving layer's connection pool), under the same
//!   schedule-independence discipline;
//! * [`ScratchPool`] / [`ScratchStats`] — the reusable scratch-buffer
//!   arena the builder, generators and per-round scans draw their
//!   working buffers from (threaded through [`ExecutorConfig`]), with
//!   the allocation counters `bench_scale` reports;
//! * [`Bitset`] — the word-packed membership mask the hot MIS/matching
//!   scans use instead of `Vec<bool>`;
//! * [`Telemetry`] / [`TraceEvent`] — the out-of-band span/counter sink
//!   threaded through the same configs (strictly an observer: report
//!   bytes are pinned byte-identical with telemetry on or off);
//! * [`ChargeLog`] / [`RoundCharges`] — a second observer recording the
//!   exact per-slot loads of every completed round, the replay script
//!   the transport layer turns into real wire traffic;
//! * [`net`] — the optional TCP transport: length-prefixed frame codec,
//!   [`PartyRunner`] (one networked party's role) and [`Coordinator`]
//!   (round barrier + wire-side accounting);
//! * [`SubstrateError`] — the substrate-agnostic failure type every
//!   model-specific error converts into.
//!
//! ```
//! use mmvc_substrate::{ExecutionTrace, RoundSummary, Substrate};
//!
//! // Anything carrying an ExecutionTrace is a read-only Substrate.
//! let mut trace = ExecutionTrace::new();
//! trace.record(RoundSummary { round: 1, max_load_words: 8, total_words: 24 });
//!
//! let s: &dyn Substrate = &trace;
//! assert_eq!(s.rounds(), 1);
//! assert_eq!(s.max_load_words(), 8);
//! assert_eq!(s.total_words(), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod engine;
mod error;
mod executor;
pub mod net;
mod pool;
mod scratch;
mod telemetry;
mod trace;

pub use bitset::Bitset;
pub use engine::{ChargeLog, RoundCharges, RoundLedger};
pub use error::SubstrateError;
pub use executor::ExecutorConfig;
pub use net::{Coordinator, Frame, FrameDecoder, FrameKind, NetConfig, PartyFault, PartyRunner};
pub use pool::{Completions, WorkerPool};
pub use scratch::{ScratchPool, ScratchStats};
pub use telemetry::{EventKind, Span, Telemetry, TraceEvent};
pub use trace::{ExecutionTrace, RoundSummary};

/// A metered execution substrate.
///
/// Implemented by the live simulators (`mmvc_mpc::Cluster`,
/// `mmvc_clique::CliqueNetwork`) and by [`ExecutionTrace`] itself, so the
/// harness can report rounds and loads through one code path whether it
/// holds a live substrate or a finished trace.
pub trait Substrate {
    /// Short name of the model, e.g. `"mpc"` or `"congested-clique"`.
    fn substrate_name(&self) -> &'static str;

    /// The per-round record of the execution so far.
    fn execution_trace(&self) -> &ExecutionTrace;

    /// Number of completed rounds — the complexity measure of both models.
    fn rounds(&self) -> usize {
        self.execution_trace().rounds()
    }

    /// The largest per-machine (MPC) or per-player (clique) load observed
    /// in any round, in words.
    fn max_load_words(&self) -> usize {
        self.execution_trace().max_load_words()
    }

    /// Total words communicated over the whole execution.
    fn total_words(&self) -> usize {
        self.execution_trace().total_words()
    }
}

impl Substrate for ExecutionTrace {
    fn substrate_name(&self) -> &'static str {
        "trace"
    }

    fn execution_trace(&self) -> &ExecutionTrace {
        self
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn executor_results_independent_of_thread_count(
            tasks in 0usize..200,
            threads in 1usize..12,
            salt: u64
        ) {
            let work = |i: usize| (i as u64).wrapping_mul(salt ^ 0x9E37_79B9_7F4A_7C15);
            let seq = ExecutorConfig::sequential().run(tasks, work);
            let par = ExecutorConfig::with_threads(threads).run(tasks, work);
            prop_assert_eq!(seq, par);
        }

        #[test]
        fn chunked_reductions_independent_of_thread_count(
            items in 0usize..2000,
            chunk in 1usize..300,
            threads in 1usize..12
        ) {
            // Per-chunk partials must match the sequential decomposition
            // exactly — the property every deterministic port relies on.
            let work = |r: std::ops::Range<usize>| r.map(|i| i * 3 + 1).sum::<usize>();
            let seq = ExecutorConfig::sequential().run_chunked(items, chunk, work);
            let par = ExecutorConfig::with_threads(threads).run_chunked(items, chunk, work);
            prop_assert_eq!(&seq, &par);
            prop_assert_eq!(seq.len(), items.div_ceil(chunk));
        }

        #[test]
        fn ledger_totals_match_charges(
            charges in proptest::collection::vec((0usize..4, 0usize..50), 0..40)
        ) {
            let mut l = RoundLedger::new("prop", 4);
            l.begin_round().unwrap();
            let mut expect = 0usize;
            for &(slot, words) in &charges {
                l.charge(slot, words).unwrap();
                expect += words;
            }
            let s = l.end_round().unwrap();
            prop_assert_eq!(s.total_words, expect);
            prop_assert!(s.max_load_words <= expect);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_a_substrate() {
        let mut t = ExecutionTrace::new();
        t.record(RoundSummary {
            round: 1,
            max_load_words: 5,
            total_words: 11,
        });
        t.record(RoundSummary {
            round: 2,
            max_load_words: 9,
            total_words: 2,
        });
        let s: &dyn Substrate = &t;
        assert_eq!(s.substrate_name(), "trace");
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.max_load_words(), 9);
        assert_eq!(s.total_words(), 13);
        assert_eq!(s.execution_trace().per_round().len(), 2);
    }
}
